"""MemPod: clustered, interval-based migration (Section II-B, IV-B).

MemPod partitions both memories into *pods*; within a pod any slow segment
may occupy any fast slot (fully flexible remapping, at metadata cost —
the paper grants MemPod a zero-latency inverted map, and so do we).  Each
pod runs the Majority Element Algorithm (MEA, a.k.a. Space-Saving) with 64
counters over the slow segments accessed during the current 50 us
interval; when the interval expires, the identified segments are migrated
into fast slots *all at once*, which is the swap-burst behaviour the paper
criticises.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.common.addr import CACHE_LINE_BYTES, PAGE_BYTES
from repro.common.config import SystemConfig
from repro.common.errors import FaultError
from repro.common.stats import StatsRegistry
from repro.sim.hmc_base import HmcBase, RequestKind
from repro.vm.os_model import OsModel


class MajorityElementTracker:
    """The MEA / Space-Saving heavy-hitter sketch (Karp et al. 2003)."""

    def __init__(self, counters: int):
        if counters < 1:
            raise ValueError("MEA needs at least one counter")
        self.capacity = counters
        self._counts: Dict[int, int] = {}

    def observe(self, key: int) -> None:
        """Count one occurrence of *key*."""
        if key in self._counts:
            self._counts[key] += 1
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = 1
            return
        # Replace the minimum element, inheriting its count (Space-Saving).
        min_key = min(self._counts, key=self._counts.get)
        min_count = self._counts.pop(min_key)
        self._counts[key] = min_count + 1

    def heavy_elements(self, minimum_count: int = 2) -> List[int]:
        """Keys with count >= minimum, hottest first."""
        return sorted(
            (k for k, c in self._counts.items() if c >= minimum_count),
            key=lambda k: -self._counts[k],
        )

    def count_of(self, key: int) -> int:
        return self._counts.get(key, 0)

    def reset(self) -> None:
        self._counts.clear()

    @property
    def occupancy(self) -> int:
        return len(self._counts)


class _Pod:
    """Remap state of one pod: members <-> slots, plus its MEA."""

    def __init__(self, fast_slots: List[int], mea_counters: int):
        self.fast_slots = fast_slots
        self.mea = MajorityElementTracker(mea_counters)
        self.slot_of: Dict[int, int] = {}
        self.member_in: Dict[int, int] = {}
        self._next_fast = 0

    def slot(self, member: int) -> int:
        return self.slot_of.get(member, member)

    def occupant(self, slot: int) -> int:
        return self.member_in.get(slot, slot)

    def next_fast_slot(self) -> int:
        slot = self.fast_slots[self._next_fast % len(self.fast_slots)]
        self._next_fast += 1
        return slot

    def exchange(self, member: int, fast_slot: int) -> int:
        """Move *member* into *fast_slot*; returns the displaced occupant."""
        occupant = self.occupant(fast_slot)
        member_slot = self.slot(member)
        self.slot_of[member] = fast_slot
        self.member_in[fast_slot] = member
        self.slot_of[occupant] = member_slot
        self.member_in[member_slot] = occupant
        for key in (member, occupant):
            if self.slot_of.get(key) == key:
                del self.slot_of[key]
        for key in (fast_slot, member_slot):
            if self.member_in.get(key) == key:
                del self.member_in[key]
        return occupant


class MemPodHmc(HmcBase):
    """The MemPod memory controller."""

    scheme_name = "mempod"

    #: Cap on migrations per pod per interval (the MEA identifies at most
    #: its counter population; migrating all of them each interval is the
    #: original design).
    migrations_per_interval = 32

    def __init__(self, config: SystemConfig, os_model: OsModel, stats: StatsRegistry):
        super().__init__(config, os_model, stats)
        mp = config.mempod
        self.mp = mp
        self.lines_per_segment = mp.segment_bytes // CACHE_LINE_BYTES
        self.pages_per_segment = max(1, mp.segment_bytes // PAGE_BYTES)
        dram_bytes = config.memory.dram.capacity_bytes
        nvm_bytes = config.memory.nvm.capacity_bytes
        self.fast_segments = dram_bytes // mp.segment_bytes
        self.slow_segments = nvm_bytes // mp.segment_bytes
        self.total_segments = self.fast_segments + self.slow_segments

        pods = max(1, mp.pods)
        fast_per_pod = max(1, self.fast_segments // pods)
        self._pods: List[_Pod] = []
        for index in range(pods):
            first = index * fast_per_pod
            last = self.fast_segments if index == pods - 1 else first + fast_per_pod
            self._pods.append(_Pod(list(range(first, last)), mp.mea_counters))

        self._interval_start = 0
        self._active: Dict[int, int] = {}
        self._remap_cache: "OrderedDict[int, None]" = OrderedDict()
        self._remap_capacity = max(4, mp.remap_cache_entries)
        self.migrations = 0

        remap_bytes = self.total_segments * 4
        self.reserve_metadata(max(1, math.ceil(remap_bytes / PAGE_BYTES)))

        # Hot-path invariants for the flattened request path (the config
        # dataclasses are frozen, so these cannot drift).
        self._remap_latency = mp.remap_cache_latency_cycles
        self._interval = mp.interval_cycles

    # -- geometry -----------------------------------------------------------
    def pod_of(self, segment: int) -> _Pod:
        pods = len(self._pods)
        if segment < self.fast_segments:
            index = min(segment * pods // max(1, self.fast_segments), pods - 1)
        else:
            slow_index = segment - self.fast_segments
            index = min(slow_index * pods // max(1, self.slow_segments), pods - 1)
        return self._pods[index]

    def _segment_is_protected(self, segment: int) -> bool:
        first_page = (segment * self.mp.segment_bytes) // PAGE_BYTES
        return any(
            self.os_model.is_protected_frame(first_page + index)
            for index in range(self.pages_per_segment)
        )

    # -- the request path -------------------------------------------------------
    # repro-hot
    def handle_request(
        self,
        now: int,
        line_spa: int,
        is_write: bool,
        pid: int,
        kind: RequestKind = RequestKind.DEMAND,
    ) -> int:
        """Service one LLC-miss line request; returns the finish time.

        The per-request pipeline — interval check, remap-cache probe,
        purge, slot lookup, device access, serviced-request accounting —
        is inlined over the structures' own state, the same flattening
        the PageSeer controller's request path uses (the goldens pin the
        result); the migration-burst path escapes to _maybe_migrate.
        """
        interval = self._interval
        if interval > 0 and now - self._interval_start >= interval:
            self._maybe_migrate(now)
        stats = self.stats
        counters = stats._counters
        lines_per_segment = self.lines_per_segment
        fast_segments = self.fast_segments
        segment = line_spa // lines_per_segment
        pod = self.pod_of(segment)

        t = now + self._remap_latency
        remap_cache = self._remap_cache
        if segment in remap_cache:
            remap_cache.move_to_end(segment)
            counters["mempod/remap_hits"] += 1.0
        else:
            counters["mempod/remap_misses"] += 1.0
            fill_done = self.metadata_access(t, segment)
            if fill_done > t:
                counters["hmc/remap_wait_cycles"] += fill_done - t
                counters["hmc/remap_misses"] += 1.0
            t = fill_done
            self._remap_fill(segment)

        active = self._active
        if active:
            self._purge(t)
            in_flight_end = active.get(segment)
        else:
            in_flight_end = None
        slot = pod.slot_of.get(segment, segment)
        actual_line = slot * lines_per_segment + line_spa % lines_per_segment
        bulk = kind is RequestKind.WRITEBACK
        dram = slot < fast_segments
        if self._fast_mem:
            if dram:
                finish = self._dram_dev.access_finish(
                    t, actual_line, is_write, bulk
                )
            else:
                finish = self._nvm_dev.access_finish(
                    t, actual_line - self._nvm_line_base, is_write, bulk
                )
        else:
            finish = self.mem_access_finish(t, actual_line, is_write, bulk)
        if in_flight_end is not None and in_flight_end > finish:
            finish = in_flight_end
            counters["mempod/waits_for_migration"] += 1.0

        self._total_serviced += 1
        if dram:
            self._dram_serviced += 1
            counters["hmc/serviced_dram"] += 1.0
        else:
            counters["hmc/serviced_nvm"] += 1.0
        if kind is RequestKind.DEMAND:
            counters["hmc/requests_demand"] += 1.0
        elif bulk:
            counters["hmc/requests_writeback"] += 1.0
        else:
            counters["hmc/requests_pte"] += 1.0
        if not bulk:
            # AMMAT covers processor-visible requests only.
            ammat = finish - now
            stats._sums["hmc/ammat"] += ammat
            stats._counts["hmc/ammat"] += 1
            previous = stats._maxima.get("hmc/ammat")
            if previous is None or ammat > previous:
                stats._maxima["hmc/ammat"] = ammat
        if line_spa >= self._nvm_line_base:
            if dram:
                counters["hmc/positive_accesses"] += 1.0
            else:
                counters["hmc/neutral_accesses"] += 1.0
        elif not dram:
            counters["hmc/negative_accesses"] += 1.0
        else:
            counters["hmc/neutral_accesses"] += 1.0

        if not dram:
            pod.mea.observe(segment)
        return finish

    # -- interval migrations ------------------------------------------------------
    def _maybe_migrate(self, now: int) -> None:
        interval = self.mp.interval_cycles
        if interval <= 0 or now - self._interval_start < interval:
            return
        while now - self._interval_start >= interval:
            self._interval_start += interval
        burst_time = self._interval_start
        for pod in self._pods:
            self._migrate_pod(burst_time, pod)
            pod.mea.reset()

    def _migrate_pod(self, now: int, pod: _Pod) -> None:
        migrated = 0
        for member in pod.mea.heavy_elements():
            if migrated >= self.migrations_per_interval:
                break
            if pod.slot(member) < self.fast_segments:
                continue  # already fast
            fast_slot = self._pick_fast_slot(pod)
            if fast_slot is None:
                break
            self._swap_segments(now, pod, member, fast_slot)
            migrated += 1

    def _pick_fast_slot(self, pod: _Pod) -> Optional[int]:
        for _ in range(len(pod.fast_slots)):
            slot = pod.next_fast_slot()
            if self._segment_is_protected(slot):
                continue
            if slot in self._active or pod.occupant(slot) in self._active:
                continue
            return slot
        return None

    def _swap_segments(self, now: int, pod: _Pod, member: int, fast_slot: int) -> None:
        member_slot = pod.slot(member)
        # A fault mid-migration aborts cleanly: the pod's remap maps are
        # only exchanged after all four transfers landed.
        try:
            read_fast = self.memory.transfer_segment(
                now, fast_slot * self.lines_per_segment, self.lines_per_segment, False
            )
            read_slow = self.memory.transfer_segment(
                now, member_slot * self.lines_per_segment, self.lines_per_segment, False
            )
            ready = max(read_fast, read_slow)
            write_fast = self.memory.transfer_segment(
                ready, fast_slot * self.lines_per_segment, self.lines_per_segment, True
            )
            write_slow = self.memory.transfer_segment(
                ready, member_slot * self.lines_per_segment, self.lines_per_segment, True
            )
        except FaultError:
            self.stats.add("mempod/aborted_migrations")
            return
        end = max(write_fast, write_slow)

        occupant = pod.exchange(member, fast_slot)
        self._active[member] = end
        self._active[occupant] = end
        self.migrations += 1
        self.stats.add("mempod/migrations")
        self.stats.observe("mempod/migration_duration", end - now)

    def _purge(self, now: int) -> None:
        finished = [seg for seg, end in self._active.items() if end <= now]
        for seg in finished:
            del self._active[seg]

    # -- remap cache -----------------------------------------------------------------
    def _remap_lookup(self, segment: int) -> bool:
        if segment in self._remap_cache:
            self._remap_cache.move_to_end(segment)
            self.stats.add("mempod/remap_hits")
            return True
        self.stats.add("mempod/remap_misses")
        return False

    def _remap_fill(self, segment: int) -> None:
        if segment not in self._remap_cache and len(self._remap_cache) >= self._remap_capacity:
            self._remap_cache.popitem(last=False)
        self._remap_cache[segment] = None
        self._remap_cache.move_to_end(segment)
