"""Static reference configurations: all-DRAM and all-NVM bounds.

These pair with :class:`repro.sim.hmc_base.NoSwapHmc` to bracket every
swap scheme: all-DRAM is the performance ceiling (every access fast),
all-NVM the floor.  They are used by sanity tests and the examples.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.config import SystemConfig


def all_dram_config(config: SystemConfig) -> SystemConfig:
    """Return a copy whose NVM behaves exactly like its DRAM (ceiling).

    Capacity is unchanged — only the timing is made DRAM-fast — so the
    same workloads and allocations run unmodified.
    """
    fast_nvm = replace(
        config.memory.nvm,
        t_cas=config.memory.dram.t_cas,
        t_rcd=config.memory.dram.t_rcd,
        t_ras=config.memory.dram.t_ras,
        t_rp=config.memory.dram.t_rp,
        t_wr=config.memory.dram.t_wr,
        channels=config.memory.dram.channels,
        row_bytes=config.memory.dram.row_bytes,
    )
    return replace(config, memory=replace(config.memory, nvm=fast_nvm))


def all_nvm_config(config: SystemConfig) -> SystemConfig:
    """Return a copy whose DRAM behaves exactly like its NVM (floor)."""
    slow_dram = replace(
        config.memory.dram,
        t_cas=config.memory.nvm.t_cas,
        t_rcd=config.memory.nvm.t_rcd,
        t_ras=config.memory.nvm.t_ras,
        t_rp=config.memory.nvm.t_rp,
        t_wr=config.memory.nvm.t_wr,
        channels=config.memory.nvm.channels,
        row_bytes=config.memory.nvm.row_bytes,
    )
    return replace(config, memory=replace(config.memory, dram=slow_dram))
