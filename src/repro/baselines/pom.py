"""PoM: Part-of-Memory management of the fast tier (Section II-B, IV-B).

PoM swaps 2 KB segments.  The physical space is divided into *swap
groups*: fast segment ``g`` plus the slow segments congruent to ``g``
modulo the number of fast segments (direct-mapped, the restriction the
paper calls out as PoM's weakness).  A slow segment that accumulates
``K`` LLC misses (K = 12 with our memory timing, per Section IV-B) is
*fast-swapped* with the current occupant of its group's fast slot; data
wanders within the group's slow locations, so a remap entry per member is
needed.  The SRC (a 32 KB remap cache) fronts the in-DRAM remap table;
SRC misses stall requests — the waiting time Figure 13 compares.

PoM only reacts *after* misses accumulate, and it has no swap buffers, so
requests that land mid-swap wait for the swap to complete.  Both effects
are what PageSeer's early, buffered swaps remove.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict

from repro.common.addr import CACHE_LINE_BYTES, PAGE_BYTES
from repro.common.config import SystemConfig
from repro.common.errors import FaultError
from repro.common.stats import StatsRegistry
from repro.sim.hmc_base import HmcBase, RequestKind
from repro.vm.os_model import OsModel


class PomHmc(HmcBase):
    """The PoM memory controller."""

    scheme_name = "pom"

    def __init__(self, config: SystemConfig, os_model: OsModel, stats: StatsRegistry):
        super().__init__(config, os_model, stats)
        pom = config.pom
        self.pom = pom
        self.lines_per_segment = pom.segment_bytes // CACHE_LINE_BYTES
        self.pages_per_segment = max(1, pom.segment_bytes // PAGE_BYTES)
        dram_bytes = config.memory.dram.capacity_bytes
        nvm_bytes = config.memory.nvm.capacity_bytes
        self.fast_segments = dram_bytes // pom.segment_bytes
        self.slow_segments = nvm_bytes // pom.segment_bytes
        self.total_segments = self.fast_segments + self.slow_segments

        #: member segment -> slot it currently occupies (identity if absent).
        self._slot_of: Dict[int, int] = {}
        #: slot -> member whose data occupies it (identity if absent).
        self._member_in: Dict[int, int] = {}
        #: per-slow-member saturating miss counters.
        self._counters: Dict[int, int] = {}
        self._last_decay = 0
        #: Adaptive threshold state (original PoM adapts K; Section IV-B
        #: pins it to 12, so adaptation is opt-in via PomConfig).
        self.swap_threshold = pom.swap_threshold
        #: post-swap hit counts of segments currently resident fast.
        self._post_swap_hits: Dict[int, int] = {}
        self._epoch_useful = 0
        self._epoch_wasted = 0
        #: segments participating in an in-flight swap -> completion time.
        self._active: Dict[int, int] = {}
        #: SRC: LRU cache over swap groups.
        self._src: "OrderedDict[int, None]" = OrderedDict()
        self._src_capacity = max(4, pom.src_entries // pom.src_ways)
        self.swaps = 0

        remap_bytes = self.total_segments * 4
        self.reserve_metadata(max(1, math.ceil(remap_bytes / PAGE_BYTES)))

        # Hot-path invariant for the flattened request path (the config
        # dataclasses are frozen, so this cannot drift).
        self._src_latency = pom.src_latency_cycles

    # -- geometry -------------------------------------------------------------
    def group_of(self, segment: int) -> int:
        """The swap group (== fast slot id) a segment belongs to."""
        if segment < self.fast_segments:
            return segment
        return (segment - self.fast_segments) % self.fast_segments

    def _slot(self, segment: int) -> int:
        return self._slot_of.get(segment, segment)

    def _occupant(self, slot: int) -> int:
        return self._member_in.get(slot, slot)

    def _segment_is_protected(self, segment: int) -> bool:
        first_page = (segment * self.pom.segment_bytes) // PAGE_BYTES
        return any(
            self.os_model.is_protected_frame(first_page + index)
            for index in range(self.pages_per_segment)
        )

    # -- the request path -------------------------------------------------------
    # repro-hot
    def handle_request(
        self,
        now: int,
        line_spa: int,
        is_write: bool,
        pid: int,
        kind: RequestKind = RequestKind.DEMAND,
    ) -> int:
        """Service one LLC-miss line request; returns the finish time.

        The per-request pipeline — SRC probe, purge, slot lookup, device
        access, serviced-request accounting — is inlined over the
        structures' own state, the same flattening the PageSeer
        controller's request path uses (the goldens pin the result); the
        miss/decay/swap paths escape to the owning methods.
        """
        stats = self.stats
        counters = stats._counters
        lines_per_segment = self.lines_per_segment
        fast_segments = self.fast_segments
        segment = line_spa // lines_per_segment
        group = (
            segment
            if segment < fast_segments
            else (segment - fast_segments) % fast_segments
        )

        t = now + self._src_latency
        src = self._src
        if group in src:
            src.move_to_end(group)
            counters["pom/src_hits"] += 1.0
        else:
            counters["pom/src_misses"] += 1.0
            fill_done = self.metadata_access(t, group)
            if fill_done > t:
                counters["hmc/remap_wait_cycles"] += fill_done - t
                counters["hmc/remap_misses"] += 1.0
            t = fill_done
            self._src_fill(group)

        active = self._active
        if active:
            self._purge(t)
            in_flight_end = active.get(segment)
        else:
            in_flight_end = None
        slot = self._slot_of.get(segment, segment)
        actual_line = slot * lines_per_segment + line_spa % lines_per_segment
        bulk = kind is RequestKind.WRITEBACK
        dram = slot < fast_segments
        if self._fast_mem:
            if dram:
                finish = self._dram_dev.access_finish(
                    t, actual_line, is_write, bulk
                )
            else:
                finish = self._nvm_dev.access_finish(
                    t, actual_line - self._nvm_line_base, is_write, bulk
                )
        else:
            finish = self.mem_access_finish(t, actual_line, is_write, bulk)
        if in_flight_end is not None and in_flight_end > finish:
            # No swap buffers in PoM: wait for the in-flight swap.
            finish = in_flight_end
            counters["pom/waits_for_swap"] += 1.0

        self._total_serviced += 1
        if dram:
            self._dram_serviced += 1
            counters["hmc/serviced_dram"] += 1.0
        else:
            counters["hmc/serviced_nvm"] += 1.0
        if kind is RequestKind.DEMAND:
            counters["hmc/requests_demand"] += 1.0
        elif bulk:
            counters["hmc/requests_writeback"] += 1.0
        else:
            counters["hmc/requests_pte"] += 1.0
        if not bulk:
            # AMMAT covers processor-visible requests only.
            ammat = finish - now
            stats._sums["hmc/ammat"] += ammat
            stats._counts["hmc/ammat"] += 1
            previous = stats._maxima.get("hmc/ammat")
            if previous is None or ammat > previous:
                stats._maxima["hmc/ammat"] = ammat
        if line_spa >= self._nvm_line_base:
            if dram:
                counters["hmc/positive_accesses"] += 1.0
            else:
                counters["hmc/neutral_accesses"] += 1.0
        elif not dram:
            counters["hmc/negative_accesses"] += 1.0
        else:
            counters["hmc/neutral_accesses"] += 1.0

        if not dram:
            self._count_slow_miss(t, segment)
        elif segment in self._post_swap_hits:
            self._post_swap_hits[segment] += 1
        return finish

    # -- counters and swaps ------------------------------------------------------
    def _count_slow_miss(self, now: int, segment: int) -> None:
        self._decay(now)
        count = self._counters.get(segment, 0) + 1
        self._counters[segment] = count
        if count >= self.swap_threshold:
            self._counters[segment] = 0
            self._try_swap(now, segment)

    def _decay(self, now: int) -> None:
        interval = self.pom.counter_decay_interval_cycles
        if interval <= 0 or now - self._last_decay < interval:
            return
        while now - self._last_decay >= interval:
            self._last_decay += interval
        dead = []
        for segment in self._counters:
            self._counters[segment] //= 2
            if self._counters[segment] == 0:
                dead.append(segment)
        for segment in dead:
            del self._counters[segment]
        if self.pom.adaptive_threshold:
            self._adapt_threshold()

    def _adapt_threshold(self) -> None:
        """Move the swap threshold based on how the epoch's swaps paid off.

        If most recent swaps earned fewer post-swap hits than the benefit
        bar, swaps are too cheap to trigger: raise the threshold.  If most
        earned it comfortably, lower the threshold to swap earlier.
        """
        if self._epoch_useful + self._epoch_wasted < 4:
            return
        if self._epoch_wasted > self._epoch_useful:
            self.swap_threshold = min(self.pom.threshold_max, self.swap_threshold + 2)
        elif self._epoch_useful > 2 * self._epoch_wasted:
            self.swap_threshold = max(self.pom.threshold_min, self.swap_threshold - 2)
        self._epoch_useful = 0
        self._epoch_wasted = 0
        self.stats.add("pom/threshold_adaptations")

    def _try_swap(self, now: int, segment: int) -> None:
        group = self.group_of(segment)
        fast_slot = group
        if self._segment_is_protected(fast_slot):
            self.stats.add("pom/declined_protected")
            return
        if fast_slot in self._active.values() or segment in self._active:
            self.stats.add("pom/declined_in_flight")
            return
        occupant = self._occupant(fast_slot)
        if occupant == segment:
            return
        member_slot = self._slot(segment)

        # Fast swap: 2 segment reads + 2 segment writes.  A fault mid-swap
        # aborts cleanly — no remap state was touched yet, so PoM simply
        # keeps serving the segment from its old slot.
        try:
            read_fast = self.memory.transfer_segment(
                now, fast_slot * self.lines_per_segment, self.lines_per_segment, False
            )
            read_slow = self.memory.transfer_segment(
                now, member_slot * self.lines_per_segment, self.lines_per_segment, False
            )
            ready = max(read_fast, read_slow)
            write_fast = self.memory.transfer_segment(
                ready, fast_slot * self.lines_per_segment, self.lines_per_segment, True
            )
            write_slow = self.memory.transfer_segment(
                ready, member_slot * self.lines_per_segment, self.lines_per_segment, True
            )
        except FaultError:
            self.stats.add("pom/aborted_swaps")
            return
        end = max(write_fast, write_slow)

        self._slot_of[segment] = fast_slot
        self._member_in[fast_slot] = segment
        self._slot_of[occupant] = member_slot
        self._member_in[member_slot] = occupant
        # Drop identity mappings to keep the remap dictionaries minimal.
        for member in (segment, occupant):
            if self._slot_of.get(member) == member:
                del self._slot_of[member]
        for slot in (fast_slot, member_slot):
            if self._member_in.get(slot) == slot:
                del self._member_in[slot]

        self._active[segment] = end
        self._active[occupant] = end
        if self.pom.adaptive_threshold:
            self._close_benefit(occupant)
            self._post_swap_hits[segment] = 0
        self.swaps += 1
        self.stats.add("pom/swaps")
        self.stats.observe("pom/swap_duration", end - now)

    def _close_benefit(self, displaced_segment: int) -> None:
        hits = self._post_swap_hits.pop(displaced_segment, None)
        if hits is None:
            return
        if hits >= self.pom.adaptive_benefit_hits:
            self._epoch_useful += 1
        else:
            self._epoch_wasted += 1

    def _purge(self, now: int) -> None:
        finished = [seg for seg, end in self._active.items() if end <= now]
        for seg in finished:
            del self._active[seg]

    # -- SRC ------------------------------------------------------------------------
    def _src_lookup(self, group: int) -> bool:
        if group in self._src:
            self._src.move_to_end(group)
            self.stats.add("pom/src_hits")
            return True
        self.stats.add("pom/src_misses")
        return False

    def _src_fill(self, group: int) -> None:
        if group not in self._src and len(self._src) >= self._src_capacity:
            self._src.popitem(last=False)
        self._src[group] = None
        self._src.move_to_end(group)
