"""The Hot Page Tables — Section III-C3.

Two small fully-associative tables, one for pages currently resident in
DRAM and one for pages currently resident in NVM.  Each entry is a PPN and
a saturating miss counter.  Counters are halved at a fixed interval; an
entry whose counter reaches zero is removed.

* The DRAM HPT *locks* hot pages: a page present in it must not be chosen
  as a swap victim.
* The NVM HPT triggers a *regular swap* when a page's counter reaches the
  swap threshold (6 in Table II — deliberately lower than the PCTc's 14,
  as the HPT is the safety net for pages the PCTc missed).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError


class HotPageTable:
    """One HPT (instantiate twice: DRAM-side and NVM-side)."""

    def __init__(
        self,
        entries: int,
        counter_max: int,
        decay_interval_cycles: int,
        swap_threshold: Optional[int] = None,
    ):
        if entries < 1:
            raise ConfigError("HPT needs at least one entry")
        self.capacity = entries
        self.counter_max = counter_max
        self.decay_interval_cycles = decay_interval_cycles
        self.swap_threshold = swap_threshold
        self._counters: "OrderedDict[int, int]" = OrderedDict()
        self._last_decay = 0
        self.reads = 0
        self.writes = 0
        #: Optional check-event sink (``repro.check``): called as
        #: ``on_event(kind, value)`` with ``("decay", epoch)`` after each
        #: halving pass, and ``("evict", page)`` / ``("remove", page)``
        #: when an entry leaves the table — the sanitizer needs these to
        #: tell a legitimate re-insertion from a corrupted counter.
        self.on_event: Optional[Callable[[str, int], None]] = None

    @property
    def epoch(self) -> int:
        """How many decay intervals have been applied so far.

        Counters are monotonically non-decreasing *within* one epoch
        (miss increments only; removal deletes the entry outright), which
        is exactly what the sanitizer's monotonicity checker verifies.
        """
        if self.decay_interval_cycles <= 0:
            return 0
        return self._last_decay // self.decay_interval_cycles

    def counters(self) -> Dict[int, int]:
        """A copy of the page -> counter map (checker introspection)."""
        return dict(self._counters)

    def advance_time(self, now: int) -> None:
        """Apply any counter halvings that became due by *now*."""
        if self.decay_interval_cycles <= 0:
            return
        while now - self._last_decay >= self.decay_interval_cycles:
            self._last_decay += self.decay_interval_cycles
            self._halve_all()
            if self.on_event is not None:
                self.on_event("decay", self.epoch)

    def _halve_all(self) -> None:
        dead = []
        for page in self._counters:
            self._counters[page] //= 2
            if self._counters[page] == 0:
                dead.append(page)
        for page in dead:
            del self._counters[page]

    def record_miss(self, now: int, page: int) -> bool:
        """Count one LLC miss on *page*.

        Returns True when the counter just reached the swap threshold
        (only meaningful for the NVM-side table).
        """
        self.advance_time(now)
        self.reads += 1
        self.writes += 1
        count = self._counters.get(page)
        if count is None:
            if len(self._counters) >= self.capacity:
                self._evict_coldest()
            self._counters[page] = 1
            count = 1
        else:
            count = min(self.counter_max, count + 1)
            self._counters[page] = count
            self._counters.move_to_end(page)
        return self.swap_threshold is not None and count == self.swap_threshold

    def _evict_coldest(self) -> None:
        coldest_page = None
        coldest_count = None
        for page, count in self._counters.items():
            if coldest_count is None or count < coldest_count:
                coldest_page, coldest_count = page, count
        if coldest_page is not None:
            del self._counters[coldest_page]
            if self.on_event is not None:
                self.on_event("evict", coldest_page)

    def is_hot(self, page: int) -> bool:
        """True if the page is currently tracked (DRAM HPT lock check)."""
        return page in self._counters

    def count_of(self, page: int) -> int:
        return self._counters.get(page, 0)

    def remove(self, page: int) -> None:
        """Drop a page (e.g. after its swap has been initiated)."""
        if self._counters.pop(page, None) is not None and self.on_event is not None:
            self.on_event("remove", page)

    def pages(self) -> List[int]:
        return list(self._counters)

    @property
    def occupancy(self) -> int:
        return len(self._counters)
