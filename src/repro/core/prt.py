"""The Page Remapping Table (PRT) and its cache (PRTc) — Section III-C1.

PageSeer constrains swaps so that only DRAM and NVM pages of the same
*cache colour* may be exchanged, and pages that are not currently swapped
stay at their original location.  With Table II's 4-way PRT, the colour of
a physical page is ``ppn % (dram_pages / 4)``: each colour owns exactly
four DRAM frames (the PRT set's ways) and the NVM pages congruent to it.

A PRT entry is a pair ``(nvm_ppn, dram_ppn)`` meaning "the NVM page's data
sits in that DRAM frame, and the DRAM frame's home data sits at the NVM
page's home location" — an involution, which keeps metadata minimal.

The full PRT lives in DRAM; the HMC holds the PRTc, a set-associative cache
of PRT sets.  A PRTc miss stalls the request while the set is fetched from
DRAM — the waiting time Figure 13 measures.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, SimulationError


class PageRemapTable:
    """Authoritative remap state, colour-constrained (the in-DRAM PRT)."""

    def __init__(self, dram_pages: int, total_pages: int, ways: int = 4):
        if dram_pages < ways:
            raise ConfigError("need at least `ways` DRAM pages")
        self.ways = ways
        self.dram_pages = dram_pages
        self.total_pages = total_pages
        self.num_colours = dram_pages // ways
        self._nvm_to_dram: Dict[int, int] = {}
        self._dram_to_nvm: Dict[int, int] = {}
        #: Optional check-event sink (``repro.check``): called as
        #: ``on_event(kind, nvm_ppn, dram_ppn)`` for "install"/"remove".
        #: None in normal runs, so mutation costs one branch.
        self.on_event: Optional[Callable[[str, int, int], None]] = None

    # -- geometry -----------------------------------------------------------
    def colour_of(self, ppn: int) -> int:
        """The cache colour of a physical page (its PRT set index)."""
        return ppn % self.num_colours

    def dram_frames_of_colour(self, colour: int) -> List[int]:
        """The `ways` DRAM frames an NVM page of this colour may use."""
        return [colour + way * self.num_colours for way in range(self.ways)]

    def is_dram(self, ppn: int) -> bool:
        return ppn < self.dram_pages

    # -- queries ----------------------------------------------------------------
    def dram_frame_holding(self, nvm_ppn: int) -> Optional[int]:
        """The DRAM frame holding this NVM page's data, if swapped in."""
        return self._nvm_to_dram.get(nvm_ppn)

    def nvm_page_in_frame(self, dram_ppn: int) -> Optional[int]:
        """The NVM page whose data occupies this DRAM frame, if any."""
        return self._dram_to_nvm.get(dram_ppn)

    def location_of(self, page_spa: int) -> int:
        """Where this page's data physically lives right now.

        An unswapped page lives at home.  A swapped NVM page lives in its
        partner DRAM frame; the partner DRAM page's data lives at the NVM
        page's home location (the involution).
        """
        if page_spa < self.dram_pages:
            partner = self._dram_to_nvm.get(page_spa)
            return partner if partner is not None else page_spa
        partner = self._nvm_to_dram.get(page_spa)
        return partner if partner is not None else page_spa

    def is_swapped(self, page_spa: int) -> bool:
        return self.location_of(page_spa) != page_spa

    def pairs_of_colour(self, colour: int) -> List[Tuple[int, int]]:
        """All (nvm, dram) pairs currently active in one colour set."""
        pairs = []
        for frame in self.dram_frames_of_colour(colour):
            nvm = self._dram_to_nvm.get(frame)
            if nvm is not None:
                pairs.append((nvm, frame))
        return pairs

    @property
    def active_pairs(self) -> int:
        return len(self._nvm_to_dram)

    # -- mutations --------------------------------------------------------------
    def install(self, nvm_ppn: int, dram_ppn: int) -> None:
        """Record that *nvm_ppn*'s data now occupies *dram_ppn*."""
        if not self.is_dram(dram_ppn) or self.is_dram(nvm_ppn):
            raise SimulationError("install needs an (NVM, DRAM) pair")
        if self.colour_of(nvm_ppn) != self.colour_of(dram_ppn):
            raise SimulationError(
                f"colour mismatch: nvm {nvm_ppn} vs dram {dram_ppn}"
            )
        if nvm_ppn in self._nvm_to_dram:
            raise SimulationError(f"nvm page {nvm_ppn} already swapped")
        if dram_ppn in self._dram_to_nvm:
            raise SimulationError(f"dram frame {dram_ppn} already occupied")
        self._nvm_to_dram[nvm_ppn] = dram_ppn
        self._dram_to_nvm[dram_ppn] = nvm_ppn
        if self.on_event is not None:
            self.on_event("install", nvm_ppn, dram_ppn)

    def remove(self, nvm_ppn: int) -> int:
        """Undo the swap of *nvm_ppn*; returns the freed DRAM frame."""
        frame = self._nvm_to_dram.pop(nvm_ppn, None)
        if frame is None:
            raise SimulationError(f"nvm page {nvm_ppn} is not swapped")
        del self._dram_to_nvm[frame]
        if self.on_event is not None:
            self.on_event("remove", nvm_ppn, frame)
        return frame

    def entries(self) -> List[Tuple[int, int]]:
        """All active ``(nvm_ppn, dram_ppn)`` pairs (checker introspection)."""
        return list(self._nvm_to_dram.items())

    def reverse_entries(self) -> List[Tuple[int, int]]:
        """All ``(dram_ppn, nvm_ppn)`` pairs of the reverse map."""
        return list(self._dram_to_nvm.items())

    def _corrupt_for_test(self, nvm_ppn: int, dram_ppn: int) -> None:
        """TEST-ONLY: write a forward entry without its inverse.

        Bypasses every validation and emits no check event, simulating a
        silent PRT corruption (e.g. a lost update) that only the sanitizer
        can notice.  Never call this outside tests.
        """
        self._nvm_to_dram[nvm_ppn] = dram_ppn


class PrtCache:
    """The PRTc: an LRU cache of PRT colour sets held inside the HMC.

    A hit answers the remap question (positively or negatively) in one
    cycle; a miss requires a DRAM access to fetch the set.  Capacity is
    ``prtc_entries / ways`` colour sets, matching Table II's 32 KB budget.
    """

    def __init__(self, entries: int, ways: int, latency_cycles: int):
        if entries < ways:
            raise ConfigError("PRTc needs at least one full set")
        self.capacity_sets = max(1, entries // ways)
        self.latency_cycles = latency_cycles
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.fills = 0

    def lookup(self, colour: int) -> bool:
        """Probe for a colour set; True on hit (LRU updated)."""
        if colour in self._resident:
            self._resident.move_to_end(colour)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, colour: int) -> bool:
        """Probe without counting or disturbing LRU (used by prefetch)."""
        return colour in self._resident

    def fill(self, colour: int) -> Optional[int]:
        """Install a colour set; returns the evicted colour, if any."""
        self.fills += 1
        if colour in self._resident:
            self._resident.move_to_end(colour)
            return None
        evicted = None
        if len(self._resident) >= self.capacity_sets:
            evicted, _ = self._resident.popitem(last=False)
        self._resident[colour] = None
        return evicted

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> int:
        return len(self._resident)
