"""Energy and area accounting for the PageSeer structures (Table II, bottom).

The paper reports per-structure area, leakage, and per-access read/write
energies obtained from CACTI 7.  CACTI itself has no behavioural role, so
this module takes the paper's numbers as constants and combines them with
the access counts the simulator records, producing the dynamic-energy and
leakage totals for a run — the analysis a hardware evaluation would
include.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: The simulated core clock (Table I): used to convert cycles to seconds.
CPU_HZ = 2_000_000_000


@dataclass(frozen=True)
class StructureCosts:
    """Per-structure constants, exactly as printed in Table II."""

    area_mm2: float
    leakage_mw: float
    read_pj: float
    write_pj: float


#: Table II: Area (10^-3 mm^2), Leakage (mW), Rd/Wr energy (pJ).
TABLE2_COSTS: Dict[str, StructureCosts] = {
    "prtc": StructureCosts(area_mm2=54.9e-3, leakage_mw=11.4, read_pj=14.8, write_pj=14.4),
    "pctc": StructureCosts(area_mm2=36.8e-3, leakage_mw=11.4, read_pj=14.7, write_pj=16.7),
    "hpt": StructureCosts(area_mm2=23.7e-3, leakage_mw=9.1, read_pj=1.8, write_pj=2.6),
    "filter": StructureCosts(area_mm2=7.7e-3, leakage_mw=2.3, read_pj=1.4, write_pj=2.7),
}


@dataclass(frozen=True)
class StructureEnergy:
    """Energy of one structure over a run."""

    name: str
    reads: int
    writes: int
    dynamic_pj: float
    leakage_uj: float

    @property
    def total_uj(self) -> float:
        return self.dynamic_pj / 1e6 + self.leakage_uj


@dataclass(frozen=True)
class EnergyReport:
    """Per-structure and total energy/area of the PageSeer hardware."""

    structures: Dict[str, StructureEnergy]
    elapsed_cycles: float

    @property
    def total_dynamic_pj(self) -> float:
        return sum(s.dynamic_pj for s in self.structures.values())

    @property
    def total_leakage_uj(self) -> float:
        return sum(s.leakage_uj for s in self.structures.values())

    @property
    def total_area_mm2(self) -> float:
        return sum(TABLE2_COSTS[name].area_mm2 for name in self.structures)

    def render(self) -> str:
        lines = [
            "PageSeer structure energy "
            f"(over {self.elapsed_cycles:.0f} CPU cycles)",
            f"{'structure':10s} {'reads':>10s} {'writes':>10s} "
            f"{'dynamic pJ':>12s} {'leakage uJ':>11s}",
        ]
        for name, s in self.structures.items():
            lines.append(
                f"{name:10s} {s.reads:10d} {s.writes:10d} "
                f"{s.dynamic_pj:12.1f} {s.leakage_uj:11.4f}"
            )
        lines.append(
            f"{'TOTAL':10s} {'':10s} {'':10s} "
            f"{self.total_dynamic_pj:12.1f} {self.total_leakage_uj:11.4f}"
        )
        lines.append(f"total structure area: {self.total_area_mm2 * 1000:.1f} "
                     f"x10^-3 mm^2")
        return "\n".join(lines)


def _structure_energy(
    name: str, reads: int, writes: int, elapsed_cycles: float
) -> StructureEnergy:
    costs = TABLE2_COSTS[name]
    dynamic = reads * costs.read_pj + writes * costs.write_pj
    seconds = elapsed_cycles / CPU_HZ
    leakage_uj = costs.leakage_mw * seconds * 1000.0  # mW * s = mJ -> uJ
    return StructureEnergy(name, reads, writes, dynamic, leakage_uj)


def energy_report(hmc, elapsed_cycles: float) -> EnergyReport:
    """Build the energy report for a finished :class:`PageSeerHmc` run.

    Read/write counts come from the structures' own access counters:
    PRTc lookups/fills, PCTc lookups/writes, both HPTs' read-modify-write
    updates, and the Filter's per-miss update.
    """
    structures = {
        "prtc": _structure_energy(
            "prtc", hmc.prtc.hits + hmc.prtc.misses, hmc.prtc.fills, elapsed_cycles
        ),
        "pctc": _structure_energy(
            "pctc", hmc.pctc.hits + hmc.pctc.misses, hmc.pctc.writes, elapsed_cycles
        ),
        "hpt": _structure_energy(
            "hpt",
            hmc.dram_hpt.reads + hmc.nvm_hpt.reads,
            hmc.dram_hpt.writes + hmc.nvm_hpt.writes,
            elapsed_cycles,
        ),
        "filter": _structure_energy(
            "filter", hmc.filter.reads, hmc.filter.writes, elapsed_cycles
        ),
    }
    return EnergyReport(structures=structures, elapsed_cycles=elapsed_cycles)
