"""The Swap Driver — Sections III-C1 (optimized slow swaps), III-D, V-B.

The Swap Driver initiates all page swaps, executes them through the swap
buffers in the memory modules, answers requests that target in-flight
pages from those buffers, and applies the bandwidth heuristic: when DRAM
has been serving almost all traffic, additional swaps are declined so the
NVM channels' bandwidth is not wasted (Section V-B's 95% rule).

PageSeer's remapping design forbids fast swaps (pages must return to their
home locations), so when an incoming NVM page needs a DRAM frame that is
already occupied by a *different* swapped-in NVM page, the driver performs
the paper's *optimized slow swap* (Figure 5): 3 page reads and 3 page
writes through the buffers, instead of the naive slow swap's 4+4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.config import FaultConfig, PageSeerConfig
from repro.common.errors import FaultError, UnrecoverableFaultError
from repro.common.stats import StatsRegistry
from repro.core.hpt import HotPageTable
from repro.core.prt import PageRemapTable
from repro.mem.main_memory import MainMemory
from repro.mem.swap_buffer import SwapBufferPool

#: Swap trigger labels (Figure 10's categories, plus fault rescue).
TRIGGER_MMU = "mmu"
TRIGGER_PCT = "pct"
TRIGGER_REGULAR = "regular"
TRIGGER_RESCUE = "rescue"

#: Literal stats-key tables per trigger (auditable by the RL002 lint rule).
_REQUEST_KEYS = {
    TRIGGER_MMU: "swap_driver/requests_mmu",
    TRIGGER_PCT: "swap_driver/requests_pct",
    TRIGGER_REGULAR: "swap_driver/requests_regular",
    TRIGGER_RESCUE: "swap_driver/requests_rescue",
}
_SWAP_KEYS = {
    TRIGGER_MMU: "swap_driver/swaps_mmu",
    TRIGGER_PCT: "swap_driver/swaps_pct",
    TRIGGER_REGULAR: "swap_driver/swaps_regular",
    TRIGGER_RESCUE: "swap_driver/swaps_rescue",
}


@dataclass(frozen=True)
class SwapRecord:
    """One completed swap, for the evaluation figures."""

    page: int
    dram_frame: int
    trigger: str
    start: int
    end: int
    reads: int
    writes: int
    optimized_slow: bool


class SwapDriver:
    """Executes and arbitrates page swaps for PageSeer."""

    def __init__(
        self,
        config: PageSeerConfig,
        memory: MainMemory,
        prt: PageRemapTable,
        dram_hpt: HotPageTable,
        buffers: SwapBufferPool,
        stats: StatsRegistry,
        is_protected_frame: Callable[[int], bool],
        on_swap_in: Optional[Callable[[int, str, int], None]] = None,
        on_swap_out: Optional[Callable[[int, int], None]] = None,
        is_frozen: Optional[Callable[[int], bool]] = None,
        hot_lines: Optional[Callable[[int], int]] = None,
        faults: Optional[FaultConfig] = None,
        injector=None,
        is_quarantined: Optional[Callable[[int], bool]] = None,
    ):
        self.config = config
        self.memory = memory
        self.prt = prt
        self.dram_hpt = dram_hpt
        self.buffers = buffers
        self.stats = stats
        self._is_protected_frame = is_protected_frame
        self._on_swap_in = on_swap_in
        self._on_swap_out = on_swap_out
        self._is_frozen = is_frozen or (lambda page: False)
        self._hot_lines = hot_lines
        #: Fault recovery knobs + the injector to suppress during rescues;
        #: both None in normal runs (no injector means no FaultError can
        #: escape a transfer, so the except paths below are dead code then).
        self._faults = faults
        self._injector = injector
        self._is_quarantined = is_quarantined or (lambda page: False)
        #: SILC-FM extension: per swapped-in page, bitmask of lines whose
        #: data was NOT moved (it still lives at the page's home location
        #: and migrates lazily on first touch).
        self.partial_residue: Dict[int, int] = {}
        #: SPA pages participating in an in-flight swap -> swap end time.
        self._active: Dict[int, int] = {}
        #: End times of in-flight swaps (each swap needs up to 3 buffers).
        self._in_flight_ends: List[int] = []
        self.max_in_flight = max(1, min(config.swap_engines, buffers.capacity // 3))
        #: Frames' last swap time, for victim LRU among equals.
        self._frame_last_swap: Dict[int, int] = {}
        #: The latest time lazy cleanup ran (see :meth:`_purge`).
        self.last_purge_time = 0
        self.records: List[SwapRecord] = []
        #: Optional check-event sink (``repro.check``): called as
        #: ``on_swap_event(now, page_spa, frame, occupant, end)`` right
        #: after a swap is committed to the PRT.  None in normal runs.
        self.on_swap_event: Optional[Callable[[int, int, int, Optional[int], int], None]] = None

    # -- servicing requests that hit a swap in progress ------------------------
    def _purge(self, now: int) -> None:
        # Per-core request times are not globally monotone, so remember the
        # latest purge time: state about swaps ending before it may already
        # be gone (the sanitizer needs this to avoid false orphans).
        if now > self.last_purge_time:
            self.last_purge_time = now
        active = self._active
        if active:
            finished = [page for page, end in active.items() if end <= now]
            for page in finished:
                del active[page]
        ends = self._in_flight_ends
        if ends:
            for end in ends:
                if end <= now:
                    self._in_flight_ends = [e for e in ends if e > now]
                    break

    def is_swapping(self, now: int, page_spa: int) -> bool:
        self._purge(now)
        return page_spa in self._active

    def swap_end_for(self, now: int, page_spa: int) -> Optional[int]:
        """When the in-flight swap involving *page_spa* completes, if any."""
        self._purge(now)
        return self._active.get(page_spa)

    def service_if_swapping(self, now: int, page_spa: int) -> Optional[int]:
        """Serve a request for an in-flight page from the swap buffers.

        Returns the finish time, or None when the page is not part of any
        in-flight swap or no buffer holds its data (the caller then issues
        a normal access to the page's current location).
        """
        self._purge(now)
        if page_spa not in self._active:
            return None
        finish = self.buffers.service(now, page_spa)
        if finish is not None:
            self.stats.add("swap_driver/buffer_services")
            return finish
        self.stats.add("swap_driver/buffer_misses")
        return None

    # -- initiating swaps -----------------------------------------------------------
    def request_swap(
        self, now: int, page_spa: int, trigger: str, dram_service_share: float
    ) -> bool:
        """Try to move NVM-resident page *page_spa* into DRAM.

        Returns True when a swap was started.  Decline reasons are counted
        individually, because Figure 11 studies the bandwidth heuristic.
        """
        self._purge(now)
        self.stats.add(_REQUEST_KEYS[trigger])

        if self.prt.is_dram(page_spa):
            # A home-DRAM page: either already fast, or displaced by an
            # active pair — it returns home only when its displacer leaves.
            self.stats.add("swap_driver/declined_dram_home")
            return False
        if self.prt.dram_frame_holding(page_spa) is not None:
            self.stats.add("swap_driver/declined_already_swapped")
            return False
        if page_spa in self._active:
            self.stats.add("swap_driver/declined_in_flight")
            return False
        if self._is_frozen(page_spa):
            # DMA in progress for this page (Section III-E): no swaps.
            self.stats.add("swap_driver/declined_frozen")
            return False
        if self._is_quarantined(page_spa):
            # A failed NVM page: only rescue_swap may move it (with fault
            # injection suppressed); a regular swap would have to read it.
            self.stats.add("swap_driver/declined_quarantined")
            return False
        if len(self._in_flight_ends) >= self.max_in_flight:
            self.stats.add("swap_driver/declined_engines_busy")
            return False
        if (
            self.config.bandwidth_heuristic_enabled
            and dram_service_share > self.config.bandwidth_decline_dram_share
        ):
            self.stats.add("swap_driver/declined_bandwidth")
            return False

        frame = self._choose_victim_frame(now, page_spa)
        if frame is None:
            self.stats.add("swap_driver/declined_locked")
            return False

        return self._execute(now, page_spa, frame, trigger)

    def rescue_swap(self, now: int, page_spa: int) -> bool:
        """Pull a quarantined NVM page's data into DRAM (fault recovery).

        Runs with fault injection suppressed — this is the controller's
        firmware-level ECC rebuild, which re-reads with heroics rather than
        tripping over the very error it is recovering from — and skips the
        bandwidth heuristic, because correctness beats throughput here.
        Structural safety checks (frozen pages, engine limits, colour
        locks) still apply; False means the rescue must be retried later.
        """
        self._purge(now)
        self.stats.add(_REQUEST_KEYS[TRIGGER_RESCUE])
        if self.prt.is_dram(page_spa):
            return False
        if self.prt.dram_frame_holding(page_spa) is not None:
            return False
        if page_spa in self._active or self._is_frozen(page_spa):
            return False
        if len(self._in_flight_ends) >= self.max_in_flight:
            return False
        frame = self._choose_victim_frame(now, page_spa)
        if frame is None:
            return False
        if self._injector is not None:
            with self._injector.suppressed():
                return self._execute(now, page_spa, frame, TRIGGER_RESCUE)
        return self._execute(now, page_spa, frame, TRIGGER_RESCUE)

    def _choose_victim_frame(self, now: int, page_spa: int) -> Optional[int]:
        """Pick a DRAM frame of the page's colour, honouring HPT locks."""
        colour = self.prt.colour_of(page_spa)
        best_frame = None
        best_key = None
        for frame in self.prt.dram_frames_of_colour(colour):
            if frame in self._active:
                continue
            occupant = self.prt.nvm_page_in_frame(frame)
            occupant_spa = occupant if occupant is not None else frame
            if self.dram_hpt.is_hot(occupant_spa):
                continue
            if self._is_frozen(occupant_spa) or self._is_frozen(frame):
                continue
            if occupant is None and self._is_protected_frame(frame):
                continue
            if occupant_spa in self._active:
                continue
            # A rescued page is pinned in DRAM: evicting it would write its
            # data back to its quarantined (failed) home location.
            if self._is_quarantined(occupant_spa):
                continue
            # Prefer frames still holding (cold) home data, then the frame
            # whose last swap is oldest.
            key = (0 if occupant is None else 1, self._frame_last_swap.get(frame, -1))
            if best_key is None or key < best_key:
                best_key = key
                best_frame = frame
        return best_frame

    # -- executing swaps ---------------------------------------------------------------
    def _execute(self, now: int, page_spa: int, frame: int, trigger: str) -> bool:
        """Run the transfers, then commit; returns False on an aborted swap.

        The transfer phase touches only device timing state, so a
        mid-transfer fault aborts the swap with **no** rollback needed: the
        PRT, residue map, buffers, in-flight windows, and every counter are
        mutated only after all reads and writes succeeded (the commit
        point).  Transient transfer faults are retried with backoff up to
        the configured budget; an uncorrectable read aborts immediately —
        the demand path will quarantine and rescue that page instead.
        """
        incoming_lines, residue_mask = self._incoming_line_budget(page_spa)
        occupant = self.prt.nvm_page_in_frame(frame)
        attempt = 0
        start = now
        while True:
            try:
                if occupant is None:
                    end, reads, writes = self._simple_swap(
                        start, page_spa, frame, incoming_lines
                    )
                    optimized = False
                    involved = [page_spa, frame]
                else:
                    end, reads, writes = self._optimized_slow_swap(
                        start, page_spa, frame, occupant, incoming_lines
                    )
                    optimized = True
                    involved = [page_spa, frame, occupant]
                break
            except UnrecoverableFaultError:
                self.stats.add("swap_driver/aborted_swaps")
                return False
            except FaultError:
                if self._faults is None or attempt >= self._faults.max_retries:
                    self.stats.add("swap_driver/aborted_swaps")
                    return False
                self.stats.add("swap_driver/swap_retries")
                start += self._faults.retry_backoff_cycles << attempt
                attempt += 1

        # -- commit point: all transfers landed ---------------------------
        if occupant is not None:
            self.prt.remove(occupant)
            self.partial_residue.pop(occupant, None)
            if self._on_swap_out is not None:
                self._on_swap_out(occupant, start)
        if residue_mask:
            self.partial_residue[page_spa] = residue_mask
            self.stats.add("swap_driver/partial_swaps")
        self.prt.install(page_spa, frame)
        self._frame_last_swap[frame] = start

        self._in_flight_ends.append(end)
        for page in involved:
            self._active[page] = end
            self.buffers.try_hold(page, start, end)

        record = SwapRecord(
            page=page_spa,
            dram_frame=frame,
            trigger=trigger,
            start=start,
            end=end,
            reads=reads,
            writes=writes,
            optimized_slow=optimized,
        )
        self.records.append(record)
        if self.on_swap_event is not None:
            self.on_swap_event(start, page_spa, frame, occupant, end)
        self.stats.add("swap_driver/swaps")
        self.stats.add(_SWAP_KEYS[trigger])
        if optimized:
            self.stats.add("swap_driver/optimized_slow_swaps")
        self.stats.observe("swap_driver/swap_duration", end - start)
        if self._on_swap_in is not None:
            self._on_swap_in(page_spa, trigger, start)
        return True

    def _incoming_line_budget(self, page_spa: int) -> tuple:
        """How many of the incoming page's 64 lines to move, plus residue.

        Without the partial-swap extension (or without a usable bitmap)
        the whole page moves.  With it, only the observed-hot lines move;
        the rest are marked as residue and migrate lazily.
        """
        from repro.common.addr import LINES_PER_PAGE

        full_mask = (1 << LINES_PER_PAGE) - 1
        if not self.config.partial_swaps_enabled or self._hot_lines is None:
            return LINES_PER_PAGE, 0
        mask = self._hot_lines(page_spa) & full_mask
        hot = bin(mask).count("1")
        if hot == 0 or hot >= self.config.partial_swap_full_threshold:
            return LINES_PER_PAGE, 0
        return hot, full_mask & ~mask

    def _partial_read(self, now: int, ppn: int, lines: int) -> int:
        from repro.common.addr import LINES_PER_PAGE

        if lines >= LINES_PER_PAGE:
            return self.memory.read_page(now, ppn)
        return self.memory.transfer_segment(
            now, ppn * LINES_PER_PAGE, lines, is_write=False
        )

    def _partial_write(self, now: int, ppn: int, lines: int) -> int:
        from repro.common.addr import LINES_PER_PAGE

        if lines >= LINES_PER_PAGE:
            return self.memory.write_page(now, ppn)
        return self.memory.transfer_segment(
            now, ppn * LINES_PER_PAGE, lines, is_write=True
        )

    def _simple_swap(
        self, now: int, nvm_page: int, frame: int, incoming_lines: int
    ) -> tuple:
        """Exchange an NVM page with a frame holding its home data: 2R+2W."""
        read_dram = self.memory.read_page(now, frame)
        read_nvm = self._partial_read(now, nvm_page, incoming_lines)
        data_ready = max(read_dram, read_nvm)
        write_nvm = self.memory.write_page(data_ready, nvm_page)
        write_dram = self._partial_write(data_ready, frame, incoming_lines)
        return max(write_nvm, write_dram), 2, 2

    def _optimized_slow_swap(
        self, now: int, nvm_page: int, frame: int, occupant: int,
        incoming_lines: int,
    ) -> tuple:
        """Figure 5's 3-read/3-write swap through the buffers.

        *occupant*'s data currently sits in *frame*; *frame*'s home data
        sits at *occupant*'s home location.  Afterwards: occupant is back
        home, *nvm_page*'s data is in *frame*, and *frame*'s home data is
        at *nvm_page*'s home.
        """
        read_frame = self.memory.read_page(now, frame)          # occupant's data
        read_occ_home = self.memory.read_page(now, occupant)    # frame's home data
        read_new = self._partial_read(now, nvm_page, incoming_lines)
        write_occ_home = self.memory.write_page(max(read_frame, read_occ_home), occupant)
        write_frame = self._partial_write(max(read_frame, read_new), frame, incoming_lines)
        write_new_home = self.memory.write_page(max(read_occ_home, read_new), nvm_page)
        return max(write_occ_home, write_frame, write_new_home), 3, 3

    # -- introspection ---------------------------------------------------------
    def active_swaps(self) -> Dict[int, int]:
        """``{page_spa: end_time}`` for pages in an in-flight swap."""
        return dict(self._active)

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight_ends)

    @property
    def total_swaps(self) -> int:
        return len(self.records)

    def swaps_by_trigger(self) -> Dict[str, int]:
        counts: Dict[str, int] = {
            TRIGGER_MMU: 0,
            TRIGGER_PCT: 0,
            TRIGGER_REGULAR: 0,
            TRIGGER_RESCUE: 0,
        }
        for record in self.records:
            counts[record.trigger] = counts.get(record.trigger, 0) + 1
        return counts
