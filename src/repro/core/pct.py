"""The Page Correlation Table, its cache, and the Filter — Section III-C2.

When a page is touched, main memory typically sees a *flurry* of LLC misses
on it, then a flurry on a *follower* page, and the same order tends to
repeat on later invocations.  The PCT records, per leader page: the misses
observed per invocation, the follower's PPN, and the follower's misses per
invocation.  The HMC holds a cache (PCTc); the full PCT lives in DRAM.

The small, fully-associative Filter table tracks the pages whose flurries
are *currently in progress*.  While a page sits in the Filter, its
current-invocation miss count accumulates; when the entry is evicted, the
history is recomputed as ``new = current + old/2`` (6-bit saturating) and
written back to the PCTc.  The Filter also records a *new follower*
candidate, because the page that follows the leader can change between
invocations; at write-back, the follower seen most recently wins if it was
observed more.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class PctEntry:
    """One PCT/PCTc record for a leader page (Figure 6, top)."""

    count: int = 0
    follower_ppn: Optional[int] = None
    follower_count: int = 0


@dataclass(slots=True)
class FilterEntry:
    """One in-flight record (Figure 6, bottom)."""

    page: int
    pid: int
    #: History loaded from the PCTc when the flurry began.
    base: PctEntry
    #: LLC misses observed on the leader in the current invocation.
    misses: int = 0
    #: Misses observed on the remembered follower in this invocation.
    follower_misses: int = 0
    #: Candidate replacement follower and its observed misses.
    new_follower_ppn: Optional[int] = None
    new_follower_misses: int = 0


@dataclass(frozen=True, slots=True)
class CorrelationTrigger:
    """A swap opportunity the PCT machinery noticed."""

    page: int
    #: True when the trigger is for the follower of the accessed page.
    is_follower: bool


class PageCorrelationTable:
    """The full PCT, resident in DRAM (7 MB at Table II scale)."""

    def __init__(self) -> None:
        self._entries: Dict[int, PctEntry] = {}

    def read(self, page: int) -> PctEntry:
        return self._entries.get(page, PctEntry())

    def write(self, page: int, entry: PctEntry) -> None:
        self._entries[page] = entry

    def entries(self) -> List[Tuple[int, PctEntry]]:
        """All stored (page, entry) pairs (checker introspection)."""
        return list(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)


class PctCache:
    """The PCTc: LRU cache of PCT entries with per-entry change bits."""

    def __init__(self, entries: int, ways: int, latency_cycles: int):
        if entries < ways:
            raise ConfigError("PCTc needs at least one full set")
        self.capacity = entries
        self.latency_cycles = latency_cycles
        self._resident: "OrderedDict[int, PctEntry]" = OrderedDict()
        self._changed: Dict[int, bool] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def lookup(self, page: int) -> Optional[PctEntry]:
        entry = self._resident.get(page)
        if entry is not None:
            self._resident.move_to_end(page)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def contains(self, page: int) -> bool:
        return page in self._resident

    def fill(self, page: int, entry: PctEntry) -> Optional[Tuple[int, PctEntry, bool]]:
        """Install an entry; returns ``(page, entry, changed)`` of the victim.

        The caller writes the victim back to the in-DRAM PCT only when its
        change bit is set (the paper's write-back filter).
        """
        self.writes += 1
        if page in self._resident:
            self._resident[page] = entry
            self._resident.move_to_end(page)
            return None
        victim = None
        if len(self._resident) >= self.capacity:
            victim_page, victim_entry = self._resident.popitem(last=False)
            victim = (victim_page, victim_entry, self._changed.pop(victim_page, False))
        self._resident[page] = entry
        self._changed[page] = False
        return victim

    def update(self, page: int, entry: PctEntry, effective_change: bool) -> None:
        """Overwrite a resident entry, setting the change bit if effective."""
        if page not in self._resident:
            self.fill(page, entry)
        else:
            self.writes += 1
            self._resident[page] = entry
            self._resident.move_to_end(page)
        if effective_change:
            self._changed[page] = True

    def entries(self) -> List[Tuple[int, PctEntry]]:
        """Resident (page, entry) pairs without disturbing LRU order."""
        return list(self._resident.items())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> int:
        return len(self._resident)


class FilterTable:
    """The fully-associative Filter (Figure 6, bottom) plus flurry tracking.

    One leader flurry is "current" per PID at any time; a miss on a
    different page closes the previous flurry and opens a new one.  While
    page Q's flurry runs right after page P's, Q's misses also accumulate
    into P's follower fields, which is how follower counts are learned.
    """

    def __init__(self, entries: int, counter_max: int, swap_threshold: int):
        if entries < 2:
            raise ConfigError("Filter needs at least two entries")
        self.capacity = entries
        self.counter_max = counter_max
        self.swap_threshold = swap_threshold
        self._entries: "OrderedDict[int, FilterEntry]" = OrderedDict()
        self.reads = 0
        self.writes = 0
        #: Current leader page per PID.
        self._current_leader: Dict[int, int] = {}
        #: The page whose flurry immediately precedes the current one, per PID.
        self._previous_leader: Dict[int, int] = {}

    # -- helpers ---------------------------------------------------------------
    def _saturate(self, value: int) -> int:
        return min(self.counter_max, value)

    def entry_for(self, page: int) -> Optional[FilterEntry]:
        return self._entries.get(page)

    def current_leader(self, pid: int) -> Optional[int]:
        return self._current_leader.get(pid)

    @staticmethod
    def merged_history(entry: FilterEntry, counter_max: int) -> PctEntry:
        """Fold a closing invocation into the stored history.

        ``new count = misses this invocation + old count / 2`` for leader
        and follower; the follower slot keeps whichever of the old and new
        followers was observed more this invocation.
        """
        count = min(counter_max, entry.misses + entry.base.count // 2)
        old_follower = entry.base.follower_ppn
        keep_new = (
            entry.new_follower_ppn is not None
            and (old_follower is None or entry.new_follower_misses > entry.follower_misses)
        )
        if keep_new:
            follower = entry.new_follower_ppn
            follower_count = min(
                counter_max, entry.new_follower_misses + entry.base.follower_count // 2
            )
        else:
            follower = old_follower
            follower_count = min(
                counter_max, entry.follower_misses + entry.base.follower_count // 2
            )
        return PctEntry(count=count, follower_ppn=follower, follower_count=follower_count)

    # -- the per-miss protocol ----------------------------------------------------
    def observe_miss(
        self, pid: int, page: int, history: PctEntry
    ) -> Tuple[Sequence[CorrelationTrigger], Sequence[FilterEntry]]:
        """Process one LLC miss on *page* by process *pid*.

        *history* is the PCTc entry for *page* (fetched by the caller; a
        fresh :class:`PctEntry` if the page was never seen).

        Returns ``(triggers, evicted)``: prefetch-swap opportunities raised
        by this miss (only on the first miss of an invocation), and Filter
        entries evicted to make room, which the caller must write back to
        the PCTc.  Callers only iterate the sequences; the same-leader
        fast path (most misses — flurries are the common case) returns a
        shared empty tuple so it allocates nothing.
        """
        self.reads += 1
        self.writes += 1
        leader = self._current_leader.get(pid)

        if leader == page:
            entry = self._entries.get(page)
            if entry is not None:
                entry.misses = self._saturate(entry.misses + 1)
            self._feed_predecessor(pid, page)
            return (), ()
        evicted: List[FilterEntry] = []

        # A new flurry begins: remember the old one as predecessor.
        if leader is not None:
            self._previous_leader[pid] = leader
            self._record_follower(pid, leader, page)
        self._current_leader[pid] = page

        entry = self._entries.get(page)
        if entry is None:
            entry = FilterEntry(page=page, pid=pid, base=history)
            evicted.extend(self._insert(entry))
        else:
            self._entries.move_to_end(page)
        entry.misses = self._saturate(entry.misses + 1)
        self._feed_predecessor(pid, page)

        triggers: List[CorrelationTrigger] = []
        if entry.base.count >= self.swap_threshold:
            triggers.append(CorrelationTrigger(page=page, is_follower=False))
        if (
            entry.base.follower_ppn is not None
            and entry.base.follower_count >= self.swap_threshold
        ):
            triggers.append(
                CorrelationTrigger(page=entry.base.follower_ppn, is_follower=True)
            )
        return triggers, evicted

    def _feed_predecessor(self, pid: int, page: int) -> None:
        """Count this miss into the previous leader's follower fields."""
        previous = self._previous_leader.get(pid)
        if previous is None or previous == page:
            return
        entry = self._entries.get(previous)
        if entry is None:
            return
        if entry.base.follower_ppn == page:
            entry.follower_misses = self._saturate(entry.follower_misses + 1)
        elif entry.new_follower_ppn in (None, page):
            entry.new_follower_ppn = page
            entry.new_follower_misses = self._saturate(entry.new_follower_misses + 1)

    def _record_follower(self, pid: int, leader: int, follower: int) -> None:
        """Note that *follower*'s flurry started right after *leader*'s."""
        entry = self._entries.get(leader)
        if entry is None:
            return
        if entry.base.follower_ppn != follower and entry.new_follower_ppn is None:
            entry.new_follower_ppn = follower

    def _insert(self, entry: FilterEntry) -> List[FilterEntry]:
        evicted: List[FilterEntry] = []
        while len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
            self._drop_leader_state(victim)
            evicted.append(victim)
        self._entries[entry.page] = entry
        return evicted

    def _drop_leader_state(self, victim: FilterEntry) -> None:
        pid = victim.pid
        if self._current_leader.get(pid) == victim.page:
            del self._current_leader[pid]
        if self._previous_leader.get(pid) == victim.page:
            del self._previous_leader[pid]

    def entries(self) -> List[FilterEntry]:
        """The in-flight entries without disturbing LRU order."""
        return list(self._entries.values())

    def drain(self) -> List[FilterEntry]:
        """Evict everything (end of run); caller writes the entries back."""
        drained = list(self._entries.values())
        self._entries.clear()
        self._current_leader.clear()
        self._previous_leader.clear()
        return drained

    @property
    def occupancy(self) -> int:
        return len(self._entries)
