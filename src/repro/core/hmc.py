"""The PageSeer Hybrid Memory Controller — Section III, assembled.

This is the paper's Figure 2 in code: the PRTc on the critical path of
every request, the PCTc and Filter observing the pre-remap miss stream, the
two HPTs classifying hot pages by their *current* residence, the MMU Driver
receiving page-walk hints and intercepting PTE requests, and the Swap
Driver executing swaps through the buffers.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional

from repro.common.addr import LINES_PER_PAGE, PAGE_BYTES
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.core.hpt import HotPageTable
from repro.core.mmu_driver import MmuDriver
from repro.core.pct import (
    FilterEntry,
    FilterTable,
    PageCorrelationTable,
    PctCache,
    PctEntry,
)
from repro.core.prt import PageRemapTable, PrtCache
from repro.core.swap_driver import (
    SwapDriver,
    TRIGGER_MMU,
    TRIGGER_PCT,
    TRIGGER_REGULAR,
)
from repro.mem.swap_buffer import SwapBufferPool
from repro.sim.hmc_base import HmcBase, RequestKind
from repro.vm.os_model import OsModel

#: Table II entry sizes (bytes), used to size the in-DRAM metadata region.
_PRT_ENTRY_BYTES = 3.5
_PCT_ENTRY_BYTES = 10.5


class PageSeerHmc(HmcBase):
    """The complete PageSeer memory controller."""

    scheme_name = "pageseer"

    def __init__(self, config: SystemConfig, os_model: OsModel, stats: StatsRegistry):
        super().__init__(config, os_model, stats)
        ps = config.pageseer
        self.ps = ps

        self.prt = PageRemapTable(self.dram_pages, self.total_pages, ps.prt_ways)
        self.prtc = PrtCache(ps.prtc_entries, ps.prtc_ways, ps.prtc_latency_cycles)
        self.pct = PageCorrelationTable()
        self.pctc = PctCache(ps.pctc_entries, ps.pctc_ways, ps.pctc_latency_cycles)
        self.filter = FilterTable(
            ps.filter_entries, ps.counter_max, ps.pct_prefetch_threshold
        )
        self.dram_hpt = HotPageTable(
            ps.hpt_entries, ps.counter_max, ps.hpt_decay_interval_cycles
        )
        self.nvm_hpt = HotPageTable(
            ps.hpt_entries,
            ps.counter_max,
            ps.hpt_decay_interval_cycles,
            swap_threshold=ps.hpt_swap_threshold,
        )
        self.buffers = SwapBufferPool(ps.swap_buffers, stats)
        #: Pages frozen while a DMA transfer runs (Section III-E).
        self._frozen_pages: set = set()
        self.swap_driver = SwapDriver(
            ps,
            self.memory,
            self.prt,
            self.dram_hpt,
            self.buffers,
            stats,
            is_protected_frame=os_model.is_protected_frame,
            on_swap_in=self._on_swap_in,
            on_swap_out=self._on_swap_out,
            is_frozen=self._frozen_pages.__contains__,
            hot_lines=self._hot_lines_of,
            faults=config.faults if config.faults.enabled else None,
            injector=self.fault_injector,
            is_quarantined=os_model.is_quarantined,
        )
        if self.fault_recovery is not None:
            self.fault_recovery.on_uncorrectable = self._on_uncorrectable
        self.mmu_driver = MmuDriver(
            ps.mmu_driver_pte_lines, self._fetch_pte_line, stats
        )

        # Size and reserve the in-DRAM metadata region (PRT + PCT).
        prt_bytes = int(self.dram_pages * _PRT_ENTRY_BYTES)
        pct_bytes = int(self.total_pages * _PCT_ENTRY_BYTES)
        metadata_pages = max(1, math.ceil((prt_bytes + pct_bytes) / PAGE_BYTES))
        self.reserve_metadata(metadata_pages)
        self._prt_metadata_keys = max(1, prt_bytes // 64)

        #: Prefetch-swapped pages still resident in DRAM -> post-swap hits.
        self._prefetch_live: Dict[int, int] = {}
        #: Observed per-page line-usage bitmaps (the SILC-FM extension's
        #: input); only maintained when partial swaps are enabled.
        self._line_usage: Dict[int, int] = {}

        # Hot-path invariants hoisted out of handle_request/_observe_miss
        # (the config dataclasses are frozen, so these cannot drift).
        self._prtc_latency = ps.prtc_latency_cycles
        self._partial_swaps = ps.partial_swaps_enabled
        self._hpt_latency = ps.hpt_latency_cycles
        self._filter_latency = ps.filter_latency_cycles
        self._correlation = ps.correlation_enabled
        # The pre-bound device handles (_fast_mem/_dram_dev/_nvm_dev/
        # _nvm_line_base) the request path routes through come from
        # HmcBase.__init__; every scheme's flattened path shares them.

    # -- metadata key spaces --------------------------------------------------
    def _prt_key(self, colour: int) -> int:
        return colour

    def _pct_key(self, page: int) -> int:
        return self._prt_metadata_keys + page

    # -- the regular request path (Section III-D1) ------------------------------
    # repro-hot
    def handle_request(
        self,
        now: int,
        line_spa: int,
        is_write: bool,
        pid: int,
        kind: RequestKind = RequestKind.DEMAND,
    ) -> int:
        """Service one LLC-miss line request; returns the finish time.

        This body is the controller's Figure 2 pipeline in one pass, with
        the hit paths of every structure on it — PRTc probe, Swap Driver
        probe, PRT location lookup, serviced-request accounting, HPT
        touch, PCTc probe — inlined over the structures' own state (the
        miss/decay/eviction paths escape to the owning classes, whose
        methods stay the single source of truth for those transitions).
        The inlined forms replicate the methods' mutations exactly, in
        the same order; the scalar/batched goldens and the equivalence
        suite pin that, and docs/PERFORMANCE.md explains why the request
        path is flattened this way.
        """
        page = line_spa // LINES_PER_PAGE
        prt = self.prt
        colour = page % prt.num_colours
        stats = self.stats
        counters = stats._counters
        fast_mem = self._fast_mem
        bulk = kind is RequestKind.WRITEBACK

        # PRTc: on the critical path of every request (PrtCache.lookup,
        # inlined; the miss path fetches the set from in-DRAM metadata —
        # metadata lines live in reserved DRAM pages, so the fast-memory
        # case goes straight to the DRAM device).
        t = now + self._prtc_latency
        prtc = self.prtc
        prtc_resident = prtc._resident
        if colour in prtc_resident:
            prtc_resident.move_to_end(colour)
            prtc.hits += 1
        else:
            prtc.misses += 1
            metadata_lines = self._metadata_lines
            metadata_line = metadata_lines[colour % len(metadata_lines)]
            if fast_mem:
                fill_done = self._dram_dev.access_finish(t, metadata_line, False)
            else:
                fill_done = self.mem_access_finish(t, metadata_line, False)
            counters["hmc/metadata_accesses"] += 1.0
            if fill_done > t:
                counters["hmc/remap_wait_cycles"] += fill_done - t
                counters["hmc/remap_misses"] += 1.0
            t = fill_done
            prtc.fill(colour)

        line_offset = line_spa % LINES_PER_PAGE
        if self._partial_swaps:
            self._line_usage[page] = self._line_usage.get(page, 0) | (
                1 << line_offset
            )

        # Swap Driver look-up: in-flight pages are served from the buffers.
        # With no swap in flight only the purge clock needs touching
        # (SwapDriver._purge's first statement); the full probe runs
        # whenever any in-flight state could have expired.
        swap_driver = self.swap_driver
        if swap_driver._active or swap_driver._in_flight_ends:
            buffered = swap_driver.service_if_swapping(t, page)
        else:
            if t > swap_driver.last_purge_time:
                swap_driver.last_purge_time = t
            buffered = None
        residue = swap_driver.partial_residue
        if buffered is not None:
            finish = buffered
            serviced = "buffer"
            resident_dram = True
        elif residue and (residue.get(page, 0) >> line_offset) & 1:
            # SILC-FM extension: this line was not moved by the partial
            # swap — serve it from the page's home location and migrate it
            # into the DRAM frame in the background.
            finish = self._migrate_residue_line(t, page, line_offset, is_write)
            serviced = "nvm"
            resident_dram = True  # the page (frame) is DRAM-resident
        else:
            # PRT location lookup (location_of, inlined; the maps hold an
            # involution, so a missing partner means "at home").
            if page < self.dram_pages:
                location = prt._dram_to_nvm.get(page, page)
            else:
                location = prt._nvm_to_dram.get(page, page)
            resident_dram = location < self.dram_pages
            actual_line = location * LINES_PER_PAGE + line_offset
            if fast_mem:
                if resident_dram:
                    finish = self._dram_dev.access_finish(
                        t, actual_line, is_write, bulk
                    )
                else:
                    finish = self._nvm_dev.access_finish(
                        t, actual_line - self._nvm_line_base, is_write, bulk
                    )
            else:
                finish = self.mem_access_finish(t, actual_line, is_write, bulk)
            serviced = "dram" if resident_dram else "nvm"

        # Serviced-request accounting (HmcBase.account_service, inlined
        # against the live stats dicts; reset() clears them in place, so
        # the references stay valid across the measure boundary).
        self._total_serviced += 1
        if serviced == "dram":
            self._dram_serviced += 1
            counters["hmc/serviced_dram"] += 1.0
        elif serviced == "nvm":
            counters["hmc/serviced_nvm"] += 1.0
        else:
            counters["hmc/serviced_buffer"] += 1.0
        if kind is RequestKind.DEMAND:
            counters["hmc/requests_demand"] += 1.0
        elif bulk:
            counters["hmc/requests_writeback"] += 1.0
        else:
            counters["hmc/requests_pte"] += 1.0
        if not bulk:
            # AMMAT covers processor-visible requests; background
            # write-backs drain asynchronously and would distort it.
            ammat = finish - now
            stats._sums["hmc/ammat"] += ammat
            stats._counts["hmc/ammat"] += 1
            previous = stats._maxima.get("hmc/ammat")
            if previous is None or ammat > previous:
                stats._maxima["hmc/ammat"] = ammat
        if page >= self.dram_pages:
            if serviced != "nvm":
                counters["hmc/positive_accesses"] += 1.0
            else:
                counters["hmc/neutral_accesses"] += 1.0
        elif serviced == "nvm":
            counters["hmc/negative_accesses"] += 1.0
        else:
            counters["hmc/neutral_accesses"] += 1.0

        if serviced != "nvm" and page in self._prefetch_live:
            self._prefetch_live[page] += 1

        # Off the critical path: HPTs, PCTc, Filter, swap triggers.
        # HPT decay first (advance_time, fast-pathed: the halving loop
        # only runs when an interval actually elapsed).
        dram_hpt = self.dram_hpt
        nvm_hpt = self.nvm_hpt
        if (
            dram_hpt.decay_interval_cycles > 0
            and t - dram_hpt._last_decay >= dram_hpt.decay_interval_cycles
        ):
            dram_hpt.advance_time(t)
        if (
            nvm_hpt.decay_interval_cycles > 0
            and t - nvm_hpt._last_decay >= nvm_hpt.decay_interval_cycles
        ):
            nvm_hpt.advance_time(t)
        # HPT miss count for the page's current residence (record_miss,
        # inlined minus the advance_time it would repeat; the DRAM side
        # has no swap threshold, the NVM side triggers a regular swap).
        hpt = dram_hpt if resident_dram else nvm_hpt
        hpt.reads += 1
        hpt.writes += 1
        hpt_counters = hpt._counters
        count = hpt_counters.get(page)
        if count is None:
            if len(hpt_counters) >= hpt.capacity:
                hpt._evict_coldest()
            hpt_counters[page] = 1
            count = 1
        else:
            count = count + 1
            if count > hpt.counter_max:
                count = hpt.counter_max
            hpt_counters[page] = count
            hpt_counters.move_to_end(page)
        if not resident_dram and count == hpt.swap_threshold:
            # The HPT probe that notices the threshold crossing costs its
            # Table II access latency before the Swap Driver sees it.
            started = swap_driver.request_swap(
                t + self._hpt_latency,
                page,
                TRIGGER_REGULAR,
                self.dram_service_share,
            )
            if started:
                nvm_hpt.remove(page)

        # PCTc probe (PctCache.lookup, inlined; the miss path fetches the
        # entry from the in-DRAM PCT and handles the victim write-back).
        pctc = self.pctc
        history = pctc._resident.get(page)
        if history is not None:
            pctc._resident.move_to_end(page)
            pctc.hits += 1
        else:
            pctc.misses += 1
            history = self._pctc_fill_from_pct(t, page)
        flt = self.filter
        if flt._current_leader.get(pid) == page:
            # Filter same-leader branch (FilterTable.observe_miss,
            # inlined): flurries make repeat misses on the current
            # leader the common case, and that branch raises no
            # triggers and evicts nothing.
            flt.reads += 1
            flt.writes += 1
            entries = flt._entries
            cmax = flt.counter_max
            entry = entries.get(page)
            if entry is not None:
                misses = entry.misses + 1
                entry.misses = misses if misses <= cmax else cmax
            previous = flt._previous_leader.get(pid)
            if previous is not None and previous != page:
                pentry = entries.get(previous)
                if pentry is not None:
                    if pentry.base.follower_ppn == page:
                        misses = pentry.follower_misses + 1
                        pentry.follower_misses = (
                            misses if misses <= cmax else cmax
                        )
                    elif (
                        pentry.new_follower_ppn is None
                        or pentry.new_follower_ppn == page
                    ):
                        pentry.new_follower_ppn = page
                        misses = pentry.new_follower_misses + 1
                        pentry.new_follower_misses = (
                            misses if misses <= cmax else cmax
                        )
        else:
            # A new flurry begins (FilterTable.observe_miss slow path,
            # inlined): close the old leader's flurry, install or renew
            # the new leader's entry — applying evicted entries' PCTc
            # write-backs in place, so no trigger/evicted sequences are
            # allocated — feed the predecessor's follower fields, and
            # raise swap triggers straight from the entry's history.
            # The evicted write-backs and the triggers touch disjoint
            # structures (PCTc vs. Swap Driver), so applying write-backs
            # during eviction preserves the method's observable order.
            flt.reads += 1
            flt.writes += 1
            entries = flt._entries
            cmax = flt.counter_max
            leader = flt._current_leader.get(pid)
            if leader is not None:
                # Remember the old flurry as predecessor and note that
                # this page's flurry followed it (_record_follower).
                flt._previous_leader[pid] = leader
                lentry = entries.get(leader)
                if (
                    lentry is not None
                    and lentry.base.follower_ppn != page
                    and lentry.new_follower_ppn is None
                ):
                    lentry.new_follower_ppn = page
            flt._current_leader[pid] = page
            entry = entries.get(page)
            if entry is None:
                # Per new-flurry slow path, not per-op: a FilterEntry is
                # built once per page flurry that misses the Filter.
                entry = FilterEntry(page=page, pid=pid, base=history)  # repro-lint: disable=RL005
                while len(entries) >= flt.capacity:
                    _, victim = entries.popitem(last=False)
                    flt._drop_leader_state(victim)
                    self._writeback_filter_entry(t, victim)
                entries[page] = entry
            else:
                entries.move_to_end(page)
            misses = entry.misses + 1
            entry.misses = misses if misses <= cmax else cmax
            # _feed_predecessor on the fresh leader.
            previous = flt._previous_leader.get(pid)
            if previous is not None and previous != page:
                pentry = entries.get(previous)
                if pentry is not None:
                    if pentry.base.follower_ppn == page:
                        misses = pentry.follower_misses + 1
                        pentry.follower_misses = (
                            misses if misses <= cmax else cmax
                        )
                    elif (
                        pentry.new_follower_ppn is None
                        or pentry.new_follower_ppn == page
                    ):
                        pentry.new_follower_ppn = page
                        misses = pentry.new_follower_misses + 1
                        pentry.new_follower_misses = (
                            misses if misses <= cmax else cmax
                        )
            # Filter-detected triggers pay the Filter's access latency;
            # only the first miss of an invocation raises them.
            base = entry.base
            threshold = flt.swap_threshold
            if base.count >= threshold:
                swap_driver.request_swap(
                    t + self._filter_latency,
                    page,
                    TRIGGER_PCT,
                    self.dram_service_share,
                )
            if (
                base.follower_ppn is not None
                and base.follower_count >= threshold
                and self._correlation
            ):
                swap_driver.request_swap(
                    t + self._filter_latency,
                    base.follower_ppn,
                    TRIGGER_PCT,
                    self.dram_service_share,
                )
        return finish

    # -- PCT plumbing --------------------------------------------------------------
    def _pctc_entry_for(self, now: int, page: int) -> PctEntry:
        entry = self.pctc.lookup(page)
        if entry is not None:
            return entry
        return self._pctc_fill_from_pct(now, page)

    def _pctc_fill_from_pct(self, now: int, page: int) -> PctEntry:
        """The PCTc miss path: the caller already counted the miss."""
        # Fetch from the in-DRAM PCT (off the critical path, real bandwidth).
        self.metadata_access(now, self._pct_key(page))
        entry = self.pct.read(page)
        if not self.ps.correlation_enabled:
            entry = replace(entry, follower_ppn=None, follower_count=0)
        victim = self.pctc.fill(page, entry)
        if victim is not None:
            victim_page, victim_entry, changed = victim
            if changed:
                self.pct.write(victim_page, victim_entry)
                self.metadata_access(now, self._pct_key(victim_page), is_write=True)
        return entry

    def _writeback_filter_entry(self, now: int, entry) -> None:
        merged = FilterTable.merged_history(entry, self.ps.counter_max)
        if not self.ps.correlation_enabled:
            merged = replace(merged, follower_ppn=None, follower_count=0)
        threshold = self.ps.pct_prefetch_threshold
        effective_change = (
            (merged.count >= threshold) != (entry.base.count >= threshold)
            or merged.follower_ppn != entry.base.follower_ppn
            or (merged.follower_count >= threshold)
            != (entry.base.follower_count >= threshold)
        )
        self.pctc.update(entry.page, merged, effective_change)

    # -- MMU paths (Sections III-B, III-D2) -----------------------------------------
    def mmu_hint(
        self, now: int, pte_line_spa: int, pid: int, vpn: int, target_ppn: int
    ) -> None:
        if not self.ps.mmu_hints_enabled:
            return
        t = now + self.ps.mmu_hint_latency_cycles
        self.stats.add("hmc/mmu_hints")
        self.mmu_driver.on_hint(t, pte_line_spa)

        # Prefetch the PRTc and PCTc entries for the page being translated,
        # so demand requests do not stall on metadata fills (Section V-B).
        colour = self.prt.colour_of(target_ppn)
        if not self.prtc.contains(colour):
            self.metadata_access(t, self._prt_key(colour))
            self.prtc.fill(colour)
            self.stats.add("hmc/prtc_prefetches")

        history = self._pctc_entry_for(t, target_ppn)
        threshold = self.ps.pct_prefetch_threshold
        if history.count >= threshold:
            self.swap_driver.request_swap(
                t, target_ppn, TRIGGER_MMU, self.dram_service_share
            )
        if (
            self.ps.correlation_enabled
            and history.follower_ppn is not None
            and history.follower_count >= threshold
        ):
            self.swap_driver.request_swap(
                t, history.follower_ppn, TRIGGER_MMU, self.dram_service_share
            )

    def handle_pte_fetch(
        self, now: int, line_spa: int, target_ppn: Optional[int], pid: int
    ) -> int:
        intercepted = self.mmu_driver.intercept(now, line_spa)
        if intercepted is not None:
            return intercepted
        return self.handle_request(now, line_spa, False, pid, RequestKind.PTE)

    def _fetch_pte_line(self, now: int, line_spa: int) -> int:
        """The MMU Driver's own memory read for a PTE line."""
        page = line_spa // LINES_PER_PAGE
        location = self.prt.location_of(page)
        actual_line = location * LINES_PER_PAGE + (line_spa % LINES_PER_PAGE)
        result = self.mem_access(now, actual_line, False)
        serviced = "dram" if location < self.dram_pages else "nvm"
        self.account_service(now, result.finish, page, serviced, RequestKind.PTE)
        self.stats.add("mmu_driver/fetches")
        return result.finish

    # -- fault recovery: quarantine + rescue (repro.faults) -----------------------------
    def _on_uncorrectable(self, now: int, line_spa: int) -> None:
        """An uncorrectable NVM read: quarantine the location, rescue data.

        *line_spa* is the post-remap physical line the request resolved to,
        so its page is the failed NVM *location*.  Two cases:

        * the location holds its own home data (unswapped) — rescue-swap it
          into DRAM, where the rescued copy is pinned (the victim selector
          never evicts a quarantined occupant back to its failed home);
        * the location holds a swapped-out DRAM frame's data — the pair is
          pinned by the quarantine and every later read of that data is
          served degraded; we cannot park data back on a failed frame.

        A failed rescue (engines busy, colour locked) is retried on the
        next uncorrectable read of the same page.
        """
        page = line_spa // LINES_PER_PAGE
        if not self.config.memory.is_nvm_page(page):
            return
        if self.os_model.quarantine_frame(page):
            self.stats.add("faults/quarantined_pages")
        if self.prt.dram_frame_holding(page) is not None:
            return
        if self.swap_driver.rescue_swap(now, page):
            self.stats.add("faults/rescue_swaps")
        else:
            self.stats.add("faults/rescue_failures")

    # -- prefetch-accuracy bookkeeping (Figure 9) --------------------------------------
    def _on_swap_in(self, page: int, trigger: str, now: int) -> None:
        if trigger in (TRIGGER_MMU, TRIGGER_PCT):
            self._prefetch_live[page] = 0
            self.stats.add("hmc/prefetch_swaps")

    def _on_swap_out(self, page: int, now: int) -> None:
        hits = self._prefetch_live.pop(page, None)
        if hits is not None:
            self._close_accuracy(hits)

    def _close_accuracy(self, hits: int) -> None:
        if hits >= self.ps.pct_prefetch_threshold:
            self.stats.add("hmc/prefetch_swaps_accurate")
        else:
            self.stats.add("hmc/prefetch_swaps_inaccurate")

    # -- the SILC-FM partial-swap extension (Section VI) --------------------------------
    def _hot_lines_of(self, page: int) -> int:
        """The observed line-usage bitmap for *page* (0 = unknown)."""
        return self._line_usage.get(page, 0)

    def _line_in_partial_residue(self, page: int, line_offset: int) -> bool:
        residue = self.swap_driver.partial_residue.get(page)
        return residue is not None and bool(residue & (1 << line_offset))

    def _migrate_residue_line(
        self, now: int, page: int, line_offset: int, is_write: bool
    ) -> int:
        """Serve a not-yet-moved line from home and pull it into the frame."""
        home_line = page * LINES_PER_PAGE + line_offset
        result = self.mem_access(now, home_line, is_write)
        frame = self.prt.dram_frame_holding(page)
        if frame is not None:
            self.mem_access(result.finish, frame * LINES_PER_PAGE + line_offset,
                            True, bulk=True)
        residue = self.swap_driver.partial_residue.get(page, 0)
        residue &= ~(1 << line_offset)
        if residue:
            self.swap_driver.partial_residue[page] = residue
        else:
            self.swap_driver.partial_residue.pop(page, None)
        self.stats.add("hmc/residue_line_migrations")
        return result.finish

    # -- DMA interaction (Section III-E) ---------------------------------------------
    def dma_begin(self, now: int, page_spa: int) -> int:
        """Prepare *page_spa* for a DMA transfer; returns when it may start.

        Any swap in progress for the page is allowed to complete first,
        then the page is frozen: the Swap Driver will neither move it nor
        pick its frame as a victim until :meth:`dma_end`.  DMA requests
        themselves go through :meth:`handle_request`, which remaps them to
        the page's current location.
        """
        ready = now
        end = self.swap_driver.swap_end_for(now, page_spa)
        if end is not None:
            ready = max(ready, end)
        self._frozen_pages.add(page_spa)
        self.stats.add("hmc/dma_freezes")
        return ready

    def dma_end(self, page_spa: int) -> None:
        """Unfreeze the page after the DMA completes.

        Its HMC state is left untouched — as the paper notes, the history
        simply evolves with the new page's miss pattern.
        """
        self._frozen_pages.discard(page_spa)

    def is_frozen(self, page_spa: int) -> bool:
        return page_spa in self._frozen_pages

    def finalize(self, now: int) -> None:
        for entry in self.filter.drain():
            self._writeback_filter_entry(now, entry)
        for hits in self._prefetch_live.values():
            self._close_accuracy(hits)
        self._prefetch_live.clear()
