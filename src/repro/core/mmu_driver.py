"""The MMU Driver — Sections III-B and III-C4.

The MMU Driver receives the MMU's fourth-level page-walk signal, fetches
the memory line holding the needed PTE (from its own small cache of PTE
lines when possible), and later *intercepts* the LLC-miss request for that
line, serving it from the cache instead of main memory.  The paper finds a
16-line cache gives a >99% intercept hit rate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from repro.common.errors import ConfigError
from repro.common.stats import StatsRegistry


class MmuDriver:
    """A tiny fully-associative cache of lines holding PTE entries.

    Parameters
    ----------
    capacity_lines:
        How many 64 B PTE lines the driver caches (Table II: 16).
    fetch_line:
        ``(now, line_spa) -> finish`` — issues the driver's own memory read
        for a PTE line (the HMC supplies this; it resolves remapping and
        uses real device timing).
    respond_latency_cycles:
        Cycles to answer an intercepted request from the cache.
    """

    def __init__(
        self,
        capacity_lines: int,
        fetch_line: Callable[[int, int], int],
        stats: StatsRegistry,
        respond_latency_cycles: int = 2,
    ):
        if capacity_lines < 1:
            raise ConfigError("MMU Driver needs at least one line")
        self.capacity_lines = capacity_lines
        self.respond_latency_cycles = respond_latency_cycles
        self.stats = stats
        self._fetch_line = fetch_line
        #: line_spa -> time at which the line's data is (or will be) present.
        self._lines: "OrderedDict[int, int]" = OrderedDict()

    def on_hint(self, now: int, pte_line_spa: int) -> int:
        """Handle the MMU signal: ensure the PTE line is being fetched.

        Returns the time at which the line's content is available in the
        driver (immediately for cached lines).
        """
        self.stats.add("mmu_driver/hints")
        ready = self._lines.get(pte_line_spa)
        if ready is not None:
            self._lines.move_to_end(pte_line_spa)
            self.stats.add("mmu_driver/hint_already_cached")
            return max(now, ready)
        finish = self._fetch_line(now, pte_line_spa)
        self._install(pte_line_spa, finish)
        return finish

    def intercept(self, now: int, line_spa: int) -> Optional[int]:
        """Try to serve an LLC miss for a PTE line from the cache.

        Returns the finish time, or None when the line is not cached (the
        caller then performs a normal memory access).
        """
        ready = self._lines.get(line_spa)
        if ready is None:
            self.stats.add("mmu_driver/intercept_misses")
            return None
        self._lines.move_to_end(line_spa)
        self.stats.add("mmu_driver/intercept_hits")
        return max(now, ready) + self.respond_latency_cycles

    def invalidate(self, line_spa: int) -> None:
        """Drop a line (a write to the page table would do this)."""
        self._lines.pop(line_spa, None)

    def _install(self, line_spa: int, ready: int) -> None:
        if line_spa not in self._lines and len(self._lines) >= self.capacity_lines:
            self._lines.popitem(last=False)
        self._lines[line_spa] = ready
        self._lines.move_to_end(line_spa)

    @property
    def occupancy(self) -> int:
        return len(self._lines)

    @property
    def intercept_hit_rate(self) -> float:
        hits = self.stats.get("mmu_driver/intercept_hits")
        misses = self.stats.get("mmu_driver/intercept_misses")
        total = hits + misses
        return hits / total if total else 0.0
