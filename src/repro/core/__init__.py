"""PageSeer: the paper's contribution (Section III).

The Hybrid Memory Controller (:class:`repro.core.hmc.PageSeerHmc`) composes:

* :mod:`repro.core.prt` — the Page Remapping Table and its cache (III-C1),
* :mod:`repro.core.pct` — the Page Correlation Table, its cache, and the
  Filter table (III-C2),
* :mod:`repro.core.hpt` — the DRAM/NVM Hot Page Tables (III-C3),
* :mod:`repro.core.mmu_driver` — the MMU Driver with its PTE-line cache
  (III-B, III-C4),
* :mod:`repro.core.swap_driver` — the Swap Driver executing optimized slow
  swaps through swap buffers, with the bandwidth heuristic (III-C1, V-B).
"""

from repro.core.prt import PageRemapTable, PrtCache
from repro.core.pct import FilterTable, PageCorrelationTable, PctCache, PctEntry
from repro.core.hpt import HotPageTable
from repro.core.mmu_driver import MmuDriver
from repro.core.swap_driver import SwapDriver, SwapRecord
from repro.core.hmc import PageSeerHmc

__all__ = [
    "PageRemapTable",
    "PrtCache",
    "FilterTable",
    "PageCorrelationTable",
    "PctCache",
    "PctEntry",
    "HotPageTable",
    "MmuDriver",
    "SwapDriver",
    "SwapRecord",
    "PageSeerHmc",
]
