#!/usr/bin/env python3
"""Quickstart: simulate PageSeer on one workload and print its metrics.

Usage::

    python examples/quickstart.py [--workload lbmx4] [--scale 512]

Builds the Table I system (scaled down), runs the workload with a warm-up
window, and prints the headline quantities the paper reports: IPC, AMMAT,
where requests were serviced, and the swap mix.
"""

import argparse

from repro import build_system, workload_by_name


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="lbmx4",
                        help="Table III workload name (e.g. lbmx4, milcx4, mix1)")
    parser.add_argument("--scale", type=int, default=512,
                        help="system down-scaling factor (1 = paper size)")
    parser.add_argument("--measure-ops", type=int, default=8000)
    parser.add_argument("--warmup-ops", type=int, default=12000)
    args = parser.parse_args()

    workload = workload_by_name(args.workload)
    print(f"Simulating PageSeer on {workload.name} "
          f"({workload.cores} cores, suite {workload.suite}, scale 1/{args.scale})")

    system = build_system("pageseer", workload, scale=args.scale)
    metrics = system.run(args.measure_ops, args.warmup_ops)

    print()
    print(f"  IPC (mean per core)      {metrics.ipc:8.3f}")
    print(f"  AMMAT (cycles)           {metrics.ammat:8.1f}")
    print(f"  serviced by DRAM         {metrics.dram_share:8.1%}")
    print(f"  serviced by NVM          {metrics.nvm_share:8.1%}")
    print(f"  serviced by swap buffers {metrics.buffer_share:8.1%}")
    print(f"  positive accesses        {metrics.positive_share:8.1%}")
    print(f"  negative accesses        {metrics.negative_share:8.1%}")
    print()
    print(f"  swaps: {metrics.swaps_total} total — "
          f"{metrics.swaps_mmu} MMU-triggered, "
          f"{metrics.swaps_pct} prefetching-triggered, "
          f"{metrics.swaps_regular} regular (HPT)")
    if metrics.prefetch_swaps:
        print(f"  prefetch-swap accuracy   {metrics.prefetch_accuracy:8.1%}")
    print(f"  TLB misses               {metrics.tlb_misses}")
    print(f"  PTE cache-miss rate      {metrics.pte_cache_miss_rate:8.1%}")
    print(f"  MMU Driver hit rate      {metrics.mmu_driver_hit_rate:8.1%}")


if __name__ == "__main__":
    main()
