#!/usr/bin/env python3
"""Anatomy of an MMU-triggered prefetch swap (Figure 3, step by step).

This example drives the PageSeer HMC directly — no workload, no cores — to
show the exact mechanism of Section III-B:

1. a page's LLC-miss flurries build history in the PCT;
2. a later TLB miss makes the MMU signal the HMC while the walk resolves;
3. the MMU Driver fetches the PTE line and the Swap Driver starts a swap;
4. the replayed memory requests find the page in DRAM (or the buffers);
5. the LLC miss for the PTE line is intercepted by the MMU Driver.
"""

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.core.hmc import PageSeerHmc
from repro.vm.os_model import OsModel


def main() -> None:
    config = default_system_config(scale=1024, cores=1)
    stats = StatsRegistry()
    os_model = OsModel(config.memory)
    hmc = PageSeerHmc(config, os_model, stats)

    page = hmc.dram_pages + 8  # an NVM-resident page
    line = page * LINES_PER_PAGE
    pte_line = 2 * LINES_PER_PAGE  # pretend this PTE line is in DRAM
    threshold = config.pageseer.pct_prefetch_threshold

    print(f"Page {page} lives in NVM (home); swap threshold is {threshold} "
          f"misses per invocation.\n")

    # -- Step 1: a flurry of LLC misses builds PCT history ------------------
    now = 0
    for k in range(20):
        now = hmc.handle_request(now + 50, line + k, is_write=False, pid=1)
    hmc.finalize(now)  # flush the Filter so the history is recorded
    entry = hmc.pctc.lookup(page)
    print(f"Step 1: after a 20-miss flurry the PCTc records count={entry.count} "
          f"(>= {threshold}: this page is now prefetch-swap material).")

    # The regular-swap machinery (NVM HPT) may already have moved the page;
    # undo that so we can showcase the MMU path in isolation.
    if hmc.prt.is_swapped(page):
        hmc.prt.remove(page)
        print("        (undoing the HPT's regular swap to isolate the MMU path)")

    # -- Step 2+3: a TLB miss fires the MMU hint -----------------------------
    now += 10_000
    hmc.mmu_hint(now, pte_line, pid=1, vpn=42, target_ppn=page)
    swapped = hmc.prt.is_swapped(page)
    frame = hmc.prt.dram_frame_holding(page)
    record = hmc.swap_driver.records[-1]
    print(f"\nStep 2: the page walk reaches level 4; the MMU signals the HMC.")
    print(f"Step 3: MMU-triggered prefetch swap started: page {page} -> DRAM "
          f"frame {frame} (colour {hmc.prt.colour_of(page)}), "
          f"{record.reads} page reads + {record.writes} page writes, "
          f"duration {record.end - record.start} cycles.")
    assert swapped

    # -- Step 4: the replayed request hits fast memory ------------------------
    mid_swap = (record.start + record.end) // 2
    finish = hmc.handle_request(mid_swap, line, is_write=False, pid=1)
    print(f"\nStep 4 (mid-swap): request at t={mid_swap} served from the swap "
          f"buffers in {finish - mid_swap} cycles.")
    after = record.end + 100
    finish = hmc.handle_request(after, line + 1, is_write=False, pid=1)
    print(f"Step 4 (post-swap): request at t={after} served from DRAM in "
          f"{finish - after} cycles.")

    # -- Step 5: the PTE request is intercepted -------------------------------
    finish = hmc.handle_pte_fetch(after + 50, pte_line, page, pid=1)
    hits = stats.get("mmu_driver/intercept_hits")
    print(f"\nStep 5: the LLC miss for the PTE line is served by the MMU "
          f"Driver cache in {finish - after - 50} cycles "
          f"(intercept hits so far: {hits:.0f}).")

    print("\nCounters:")
    for key in ("hmc/mmu_hints", "swap_driver/swaps_mmu",
                "swap_driver/swaps_regular", "hmc/serviced_dram",
                "hmc/serviced_nvm", "hmc/serviced_buffer"):
        print(f"  {key:28s} {stats.get(key):.0f}")


if __name__ == "__main__":
    main()
