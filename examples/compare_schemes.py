#!/usr/bin/env python3
"""Compare PageSeer against PoM, MemPod, and a no-swap reference.

Usage::

    python examples/compare_schemes.py [--workloads lbmx4 milcx4] [--scale 512]

Reproduces the paper's headline comparison (Figure 14's shape) on a chosen
set of workloads: PageSeer should deliver the highest IPC and lowest AMMAT
of the three managed schemes, with the largest share of requests serviced
from DRAM.
"""

import argparse

from repro import build_system, workload_by_name

SCHEMES = ["noswap", "mempod", "pom", "pageseer"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", nargs="+", default=["lbmx4", "milcx4"])
    parser.add_argument("--scale", type=int, default=512)
    parser.add_argument("--measure-ops", type=int, default=8000)
    parser.add_argument("--warmup-ops", type=int, default=12000)
    args = parser.parse_args()

    header = (f"{'workload':10s} {'scheme':9s} {'IPC':>7s} {'AMMAT':>8s} "
              f"{'DRAM%':>7s} {'buf%':>6s} {'swaps':>6s} {'pos%':>6s}")
    print(header)
    print("-" * len(header))

    for name in args.workloads:
        workload = workload_by_name(name)
        baseline_ipc = None
        for scheme in SCHEMES:
            system = build_system(scheme, workload, scale=args.scale)
            m = system.run(args.measure_ops, args.warmup_ops)
            if scheme == "mempod":
                baseline_ipc = m.ipc
            print(f"{name:10s} {scheme:9s} {m.ipc:7.3f} {m.ammat:8.1f} "
                  f"{100 * m.dram_share:7.1f} {100 * m.buffer_share:6.1f} "
                  f"{m.swaps_total:6d} {100 * m.positive_share:6.1f}")
        print()


if __name__ == "__main__":
    main()
