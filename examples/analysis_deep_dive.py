#!/usr/bin/env python3
"""Deep dive: quantify *why* PageSeer wins, on one workload.

Runs PageSeer with the analysis probes attached and prints:

1. swap lead times and the fraction of swap cost hidden from the demand
   stream (the abstract's "effectively hides the swap overhead");
2. page-residency statistics (how many swaps amortise the paper's 14-hit
   break-even);
3. an AMMAT decomposition (device service vs queueing vs remap waits),
   for PageSeer and the no-swap reference side by side.
"""

import argparse

from repro import build_system, workload_by_name
from repro.analysis import LeadTimeProbe, ResidencyProbe, ammat_breakdown


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="lbmx4")
    parser.add_argument("--scale", type=int, default=512)
    parser.add_argument("--ops", type=int, default=12000)
    args = parser.parse_args()

    workload = workload_by_name(args.workload)
    print(f"PageSeer deep dive on {workload.name} (scale 1/{args.scale})\n")

    system = build_system("pageseer", workload, scale=args.scale)
    lead = LeadTimeProbe(system)
    residency = ResidencyProbe(system)
    system.run_ops(args.ops)

    print("1. Swap lead times (trigger -> first demand hit):")
    print("   " + lead.summary().render().replace("\n", "\n   "))
    print()
    print("2. Page residencies in DRAM:")
    print("   " + residency.summary().render().replace("\n", "\n   "))
    print()
    print("3. AMMAT decomposition:")
    print("   PageSeer:")
    print("   " + ammat_breakdown(system).render().replace("\n", "\n   "))

    reference = build_system("noswap", workload, scale=args.scale)
    reference.run_ops(args.ops)
    print("   No-swap reference:")
    print("   " + ammat_breakdown(reference).render().replace("\n", "\n   "))


if __name__ == "__main__":
    main()
