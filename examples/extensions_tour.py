#!/usr/bin/env python3
"""Tour of the library's extensions beyond baseline PageSeer.

1. The CAMEO baseline: line-granularity swapping, and why page granularity
   wins on spatially-local workloads.
2. SILC-FM-style partial swaps (Section VI): moving only the hot lines.
3. The DMA freeze protocol (Section III-E).
4. Table II energy/area accounting for the PageSeer structures.
"""

import argparse
import dataclasses

from repro import build_system, workload_by_name
from repro.core.energy import energy_report


def enable_partial(config):
    return dataclasses.replace(
        config,
        pageseer=dataclasses.replace(config.pageseer, partial_swaps_enabled=True),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=512)
    parser.add_argument("--measure-ops", type=int, default=4000)
    parser.add_argument("--warmup-ops", type=int, default=6000)
    args = parser.parse_args()

    # -- 1. CAMEO vs PageSeer on a streaming workload -------------------------
    print("1. Line-granularity (CAMEO) vs page-granularity (PageSeer), lbmx4:")
    workload = workload_by_name("lbmx4")
    for scheme in ("cameo", "pageseer"):
        system = build_system(scheme, workload, scale=args.scale)
        m = system.run(args.measure_ops, args.warmup_ops)
        print(f"   {scheme:9s} ipc={m.ipc:.3f} ammat={m.ammat:7.1f} "
              f"fast-share={m.dram_share + m.buffer_share:.1%} swaps={m.swaps_total}")
    print("   (CAMEO swaps one line per slow miss: no spatial-locality win,\n"
          "    per-line metadata thrashes its remap cache)\n")

    # -- 2. Partial swaps on a sparse workload ---------------------------------
    print("2. Partial swaps (SILC-FM extension) on pointer-chasing mcfx8:")
    workload = workload_by_name("mcfx8")
    for label, mutator in (("full 4KB swaps", None), ("partial swaps", enable_partial)):
        system = build_system("pageseer", workload, scale=args.scale,
                              config_mutator=mutator)
        m = system.run(args.measure_ops // 2, args.warmup_ops // 2)
        partial = system.stats.get("swap_driver/partial_swaps")
        residue = system.stats.get("hmc/residue_line_migrations")
        print(f"   {label:15s} ipc={m.ipc:.3f} swaps={m.swaps_total} "
              f"(partial={partial:.0f}, lazy line migrations={residue:.0f})")
    print()

    # -- 3. DMA freeze -----------------------------------------------------------
    print("3. DMA freeze protocol (Section III-E):")
    system = build_system("pageseer", workload_by_name("milcx4"), scale=args.scale)
    system.run_ops(2000)
    hmc = system.hmc
    page = hmc.dram_pages + 5  # an NVM page
    now = max(core.now for core in system.cores)
    ready = hmc.dma_begin(now, page)
    print(f"   dma_begin(page {page}) at t={now}: transfer may start at "
          f"t={ready}; frozen={hmc.is_frozen(page)}")
    started = hmc.swap_driver.request_swap(ready + 1, page, "regular", 0.0)
    print(f"   swap request while frozen -> started={started}")
    hmc.dma_end(page)
    print(f"   dma_end: frozen={hmc.is_frozen(page)}\n")

    # -- 4. Energy accounting ------------------------------------------------------
    print("4. Table II energy/area accounting (milcx4 run above):")
    elapsed = max(core.clock for core in system.cores)
    print("   " + energy_report(hmc, elapsed).render().replace("\n", "\n   "))


if __name__ == "__main__":
    main()
