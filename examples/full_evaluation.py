#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Usage::

    python examples/full_evaluation.py --quick        # 4 workloads, minutes
    python examples/full_evaluation.py                # all 26 workloads

Results are cached under ``.repro_cache`` (override with REPRO_CACHE_DIR),
so a second invocation renders instantly.  The output is the same report
the benchmark suite checks and EXPERIMENTS.md records.
"""

import argparse

from repro.experiments import ExperimentRunner
from repro.experiments.report import generate_report

QUICK_WORKLOADS = ["lbmx4", "milcx4", "mcfx8", "mix1"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run a 4-workload subset instead of all 26")
    parser.add_argument("--scale", type=int, default=512)
    parser.add_argument("--measure-ops", type=int, default=None)
    parser.add_argument("--warmup-ops", type=int, default=None)
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    parser.add_argument("--csv-dir", default=None,
                        help="also write one CSV per figure to this directory")
    args = parser.parse_args()

    kwargs = {}
    if args.measure_ops is not None:
        kwargs["measure_ops"] = args.measure_ops
    if args.warmup_ops is not None:
        kwargs["warmup_ops"] = args.warmup_ops
    if args.quick:
        kwargs["workloads"] = QUICK_WORKLOADS

    runner = ExperimentRunner(scale=args.scale, verbose=True, **kwargs)
    report = generate_report(runner)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"\n(report written to {args.out})")
    if args.csv_dir:
        import pathlib

        from repro.experiments.report import compute_all

        directory = pathlib.Path(args.csv_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for figure in compute_all(runner):
            slug = figure.figure_id.lower().replace(" ", "_").replace("-", "_")
            figure.save_csv(directory / f"{slug}.csv")
        print(f"(CSVs written to {directory})")


if __name__ == "__main__":
    main()
