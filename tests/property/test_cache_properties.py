"""Property-based tests for the set-associative cache."""

from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig
from repro.cache.cache import SetAssociativeCache

lines = st.integers(min_value=0, max_value=2**20)
ops = st.lists(
    st.tuples(st.sampled_from(["fill", "lookup", "write", "invalidate"]), lines),
    max_size=200,
)


def make_cache():
    return SetAssociativeCache(CacheConfig("prop", 2048, 2, 1))


def run(cache, op_list):
    for kind, line in op_list:
        if kind == "fill":
            cache.fill(line)
        elif kind == "lookup":
            cache.lookup(line)
        elif kind == "write":
            cache.lookup(line, is_write=True)
        else:
            cache.invalidate(line)


class TestCacheInvariants:
    @given(op_list=ops)
    @settings(max_examples=150, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, op_list):
        cache = make_cache()
        run(cache, op_list)
        capacity = cache.num_sets * cache.ways
        assert cache.occupancy <= capacity

    @given(op_list=ops)
    @settings(max_examples=150, deadline=None)
    def test_set_occupancy_bounded_by_ways(self, op_list):
        cache = make_cache()
        run(cache, op_list)
        per_set = {}
        for line in cache.resident_lines():
            per_set.setdefault(line % cache.num_sets, []).append(line)
        for members in per_set.values():
            assert len(members) <= cache.ways

    @given(op_list=ops, probe=lines)
    @settings(max_examples=150, deadline=None)
    def test_fill_makes_resident(self, op_list, probe):
        cache = make_cache()
        run(cache, op_list)
        cache.fill(probe)
        assert cache.contains(probe)

    @given(op_list=ops)
    @settings(max_examples=100, deadline=None)
    def test_resident_lines_unique(self, op_list):
        cache = make_cache()
        run(cache, op_list)
        resident = cache.resident_lines()
        assert len(resident) == len(set(resident))

    @given(op_list=ops, probe=lines)
    @settings(max_examples=100, deadline=None)
    def test_invalidate_removes(self, op_list, probe):
        cache = make_cache()
        run(cache, op_list)
        cache.invalidate(probe)
        assert not cache.contains(probe)

    @given(op_list=ops)
    @settings(max_examples=100, deadline=None)
    def test_victims_come_from_same_set(self, op_list):
        cache = make_cache()
        for kind, line in op_list:
            if kind == "fill":
                victim = cache.fill(line)
                if victim is not None:
                    assert victim.line_number % cache.num_sets == line % cache.num_sets
            elif kind == "lookup":
                cache.lookup(line)
