"""Differential properties: numpy struct-of-arrays kernels vs scalar models.

The batched engine's bulk kernels keep their state in numpy vectors
(:class:`repro.common.timeline.SoaBankedTimeline`,
:class:`repro.vm.mmu.DenseVpnCache`).  Equivalence with the scalar
structures is not an aspiration but a contract: these properties replay
random operation sequences against both representations and require
bit-identical results — including ``least_loaded`` tie-breaking (first
index achieving the minimum) and bank indices that wrap modulo the bank
count, the way the device's line→bank mapping produces them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.timeline import BankedTimeline, SoaBankedTimeline
from repro.vm.mmu import DenseVpnCache

# -- SoaBankedTimeline vs BankedTimeline -------------------------------------

#: One step of traffic: (raw bank index, now-increment, duration).  The raw
#: index deliberately exceeds any bank count so tests exercise modulo
#: wraparound exactly like the device's ``line % banks`` mapping.
_STEPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=40),
    ),
    min_size=1,
    max_size=60,
)


def _pair(count):
    return BankedTimeline(count), SoaBankedTimeline(count)


def _assert_same_state(banked, soa):
    for index in range(len(banked)):
        assert banked[index].busy_until == int(soa.busy_until[index])
        assert banked[index].total_busy == int(soa.total_busy[index])


class TestSoaBankedTimeline:
    @settings(max_examples=200, deadline=None)
    @given(count=st.integers(min_value=1, max_value=9), steps=_STEPS)
    def test_reserve_sequence_of_ops_is_bit_identical(self, count, steps):
        banked, soa = _pair(count)
        now = 0
        for raw_index, advance, duration in steps:
            now += advance
            index = raw_index % count  # device-style modulo wraparound
            assert banked.reserve(index, now, duration) == soa.reserve(
                index, now, duration
            )
        _assert_same_state(banked, soa)

    @settings(max_examples=200, deadline=None)
    @given(count=st.integers(min_value=1, max_value=9), steps=_STEPS)
    def test_least_loaded_matches_including_ties(self, count, steps):
        banked, soa = _pair(count)
        now = 0
        for raw_index, advance, duration in steps:
            now += advance
            banked.reserve(raw_index % count, now, duration)
            soa.reserve(raw_index % count, now, duration)
            # Probe at several times: before, at, and beyond the busy
            # horizon, so both the all-free tie and the all-busy minimum
            # paths are exercised.
            for probe in (0, now, now + 100):
                assert banked.least_loaded(probe) == soa.least_loaded(probe)

    @settings(max_examples=100, deadline=None)
    @given(count=st.integers(min_value=1, max_value=8),
           elapsed=st.integers(min_value=1, max_value=500),
           steps=_STEPS)
    def test_utilization_matches(self, count, elapsed, steps):
        banked, soa = _pair(count)
        now = 0
        for raw_index, advance, duration in steps:
            now += advance
            banked.reserve(raw_index % count, now, duration)
            soa.reserve(raw_index % count, now, duration)
        assert banked.utilization(elapsed) == pytest.approx(
            soa.utilization(elapsed)
        )

    @settings(max_examples=100, deadline=None)
    @given(count=st.integers(min_value=1, max_value=6),
           now=st.integers(min_value=0, max_value=200),
           duration=st.integers(min_value=0, max_value=50),
           steps=_STEPS)
    def test_reserve_all_equals_scalar_loop(self, count, now, duration, steps):
        banked, soa = _pair(count)
        t = 0
        for raw_index, advance, step_duration in steps:
            t += advance
            banked.reserve(raw_index % count, t, step_duration)
            soa.reserve(raw_index % count, t, step_duration)
        scalar_ends = [
            banked.reserve(index, now, duration)[1] for index in range(count)
        ]
        assert soa.reserve_all(now, duration).tolist() == scalar_ends
        _assert_same_state(banked, soa)

    @settings(max_examples=150, deadline=None)
    @given(count=st.integers(min_value=1, max_value=6),
           now=st.integers(min_value=0, max_value=200),
           duration=st.integers(min_value=1, max_value=20),
           raw_indices=st.lists(st.integers(min_value=0, max_value=1000),
                                max_size=40))
    def test_reserve_sequence_kernel_equals_scalar_loop(
        self, count, now, duration, raw_indices
    ):
        """Repeated banks chain behind their own grants, in order."""
        banked, soa = _pair(count)
        indices = [raw % count for raw in raw_indices]
        scalar_ends = [banked.reserve(i, now, duration)[1] for i in indices]
        ends = soa.reserve_sequence(np.asarray(indices, dtype=np.int64),
                                    now, duration)
        assert ends.tolist() == scalar_ends
        _assert_same_state(banked, soa)

    def test_round_trip_conversions(self):
        banked = BankedTimeline(4)
        banked.reserve(1, 5, 10)
        banked.reserve(3, 0, 7)
        soa = SoaBankedTimeline.from_banked(banked)
        back = soa.to_banked()
        for index in range(4):
            assert back[index].busy_until == banked[index].busy_until
            assert back[index].total_busy == banked[index].total_busy

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SoaBankedTimeline(0)


# -- DenseVpnCache vs plain dict ----------------------------------------------

_BASE = 1 << 20

#: Operations: (kind, vpn-offset, ppn).  Offsets straddle the dense window
#: boundary (capacity 64 below) and go negative, so both the dense vector
#: and the overflow dict are exercised.
_CACHE_OPS = st.lists(
    st.tuples(
        st.sampled_from(["set", "get"]),
        st.integers(min_value=-20, max_value=120),
        st.integers(min_value=0, max_value=1 << 30),
    ),
    max_size=80,
)


class TestDenseVpnCache:
    @settings(max_examples=200, deadline=None)
    @given(ops=_CACHE_OPS)
    def test_matches_dict_model(self, ops):
        cache = DenseVpnCache(_BASE, capacity=64)
        model = {}
        for kind, offset, ppn in ops:
            vpn = _BASE + offset
            if kind == "set":
                cache[vpn] = ppn
                model[vpn] = ppn
            else:
                assert cache.get(vpn) == model.get(vpn)
                assert (vpn in cache) == (vpn in model)
        assert len(cache) == len(model)

    @settings(max_examples=100, deadline=None)
    @given(ops=_CACHE_OPS)
    def test_lookup_many_matches_scalar_gets(self, ops):
        cache = DenseVpnCache(_BASE, capacity=64)
        probes = []
        for kind, offset, ppn in ops:
            vpn = _BASE + offset
            probes.append(vpn)
            if kind == "set":
                cache[vpn] = ppn
        if not probes:
            probes = [_BASE]
        vector = cache.lookup_many(np.asarray(probes, dtype=np.int64))
        for vpn, got in zip(probes, vector.tolist()):
            expected = cache.get(vpn)
            assert got == (expected if expected is not None else -1)

    def test_heap_base_window_matches_workloads(self):
        """The OS model's dense-window base must equal the workloads' heap
        base — the two constants live in different layers and cannot
        import each other, so this test pins the agreement."""
        from repro.common.addr import PAGE_SHIFT
        from repro.vm.os_model import HEAP_BASE_VPN
        from repro.workloads.synthetic import HEAP_BASE

        assert HEAP_BASE_VPN == HEAP_BASE >> PAGE_SHIFT

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DenseVpnCache(0, capacity=0)
