"""Property suite for the array-native stream layer.

Pins the contract the batched engine and the checkpointer both rely on:

* the block view and the per-op view of a workload are the *same* op
  sequence (``chunked`` vs ``perop`` stream modes are interchangeable);
* :func:`chunks_from_blocks` is a pure coalescer — chunk columns are the
  concatenation of the block columns, block boundaries never split, and
  every chunk except the last reaches the target size;
* :class:`ReplayStream`'s two consumption protocols (scalar ``__next__``
  and chunk-aware ``peek_chunk``/``advance``) move the same counter and
  hand out the same ops under any interleaving;
* a pickled stream restores at any ``consumed`` point — including
  mid-chunk — and the remaining sequence is bit-identical.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.workloads.base import unique_workload
from repro.workloads.chunks import (
    OpChunk,
    chunks_from_blocks,
    chunks_from_ops,
    ops_from_blocks,
)
from repro.snapshot.stream import ReplayStream

# -- synthetic block streams (coalescer-level properties) ------------------

_blocks = st.lists(
    st.integers(1, 40).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 2**20), min_size=n, max_size=n),
            st.lists(st.booleans(), min_size=n, max_size=n),
            st.lists(st.integers(0, 50), min_size=n, max_size=n),
        )
    ),
    max_size=30,
)

_targets = st.integers(1, 64)


def _columns(blocks):
    vaddrs, writes, instr = [], [], []
    for block_vaddrs, block_writes, block_instr in blocks:
        vaddrs += block_vaddrs
        writes += block_writes
        instr += block_instr
    return vaddrs, writes, instr


class TestChunkCoalescer:
    @given(blocks=_blocks, target=_targets)
    @settings(max_examples=200, deadline=None)
    def test_chunks_concatenate_to_block_columns(self, blocks, target):
        chunks = list(chunks_from_blocks(iter(blocks), target))
        vaddrs, writes, instr = _columns(blocks)
        assert [v for c in chunks for v in c.vaddrs] == vaddrs
        assert [w for c in chunks for w in c.writes] == writes
        assert [i for c in chunks for i in c.instr] == instr

    @given(blocks=_blocks, target=_targets)
    @settings(max_examples=200, deadline=None)
    def test_block_boundaries_never_split(self, blocks, target):
        """Every chunk edge is a block edge: chunk lengths are partial
        sums of block lengths, and all but the last chunk reach target."""
        chunks = list(chunks_from_blocks(iter(blocks), target))
        block_edges = set()
        total = 0
        for block_vaddrs, _, _ in blocks:
            total += len(block_vaddrs)
            block_edges.add(total)
        consumed = 0
        for index, chunk in enumerate(chunks):
            consumed += chunk.length
            assert consumed in block_edges, "chunk edge split a block"
            if index < len(chunks) - 1:
                assert chunk.length >= target

    @given(blocks=_blocks, target=_targets)
    @settings(max_examples=150, deadline=None)
    def test_perop_batching_equals_block_coalescing_op_sequence(
        self, blocks, target
    ):
        """chunks_from_ops over the per-op view carries the same ops in the
        same order (chunk *edges* may differ; the sequence may not)."""
        from_blocks = list(chunks_from_blocks(iter(blocks), target))
        from_ops = list(chunks_from_ops(ops_from_blocks(iter(blocks)), target))
        flat_a = [
            (v, w, i)
            for c in from_blocks
            for v, w, i in zip(c.vaddrs, c.writes, c.instr)
        ]
        flat_b = [
            (v, w, i)
            for c in from_ops
            for v, w, i in zip(c.vaddrs, c.writes, c.instr)
        ]
        assert flat_a == flat_b

    @given(blocks=_blocks)
    @settings(max_examples=100, deadline=None)
    def test_op_view_matches_chunk_op_at(self, blocks):
        ops = list(ops_from_blocks(iter(blocks)))
        chunks = list(chunks_from_blocks(iter(blocks), 16))
        index = 0
        for chunk in chunks:
            for offset in range(chunk.length):
                materialized = chunk.op_at(offset)
                reference = ops[index]
                assert materialized.vaddr == reference.vaddr
                assert materialized.is_write == reference.is_write
                assert (
                    materialized.instructions_before
                    == reference.instructions_before
                )
                index += 1
        assert index == len(ops)


# -- ReplayStream consumption protocols ------------------------------------

_GENERATORS = ("stream_sweep", "hot_cold", "pointer_chase", "random_mix")


def _stream(generator, seed, mode):
    workload = unique_workload("prop", "test", 1, 64, generator)
    return ReplayStream(workload, core_id=0, seed=seed, scale=1024, mode=mode)


def _take(stream, count):
    return [
        (op.vaddr, op.is_write, op.instructions_before)
        for op in (next(stream) for _ in range(count))
    ]


class TestReplayStreamProtocols:
    @given(
        generator=st.sampled_from(_GENERATORS),
        seed=st.integers(0, 2**16),
        count=st.integers(1, 600),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_and_perop_modes_emit_identical_ops(
        self, generator, seed, count
    ):
        chunked = _stream(generator, seed, "chunked")
        perop = _stream(generator, seed, "perop")
        assert _take(chunked, count) == _take(perop, count)
        assert chunked.consumed == perop.consumed == count

    @given(
        generator=st.sampled_from(_GENERATORS),
        seed=st.integers(0, 2**16),
        advances=st.lists(st.integers(1, 64), min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_advance_and_next_interleave_consistently(
        self, generator, seed, advances
    ):
        """Chunk-aware consumption sees exactly the ops the per-op view
        hands out, whatever the advance step pattern."""
        reference = _stream(generator, seed, "chunked")
        stream = _stream(generator, seed, "chunked")
        for step in advances:
            peeked = stream.peek_chunk()
            assert peeked is not None, "synthetic streams are infinite"
            chunk, pos = peeked
            take = min(step, chunk.length - pos)
            window = [
                (chunk.vaddrs[pos + k], chunk.writes[pos + k], chunk.instr[pos + k])
                for k in range(take)
            ]
            stream.advance(take)
            assert window == _take(reference, take)
            # One scalar op through __next__ keeps the two protocols honest
            # against each other on the same stream object.
            assert _take(stream, 1) == _take(reference, 1)
        assert stream.consumed == reference.consumed

    @given(
        generator=st.sampled_from(_GENERATORS),
        seed=st.integers(0, 2**16),
        consumed=st.integers(0, 700),
        remaining=st.integers(1, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_pickle_round_trip_resumes_mid_chunk(
        self, generator, seed, consumed, remaining
    ):
        """Restore at any consumption point — whole-chunk or interior —
        and the continuation is bit-identical."""
        reference = _stream(generator, seed, "chunked")
        _take(reference, consumed)
        restored = pickle.loads(pickle.dumps(reference))
        assert restored.consumed == consumed
        assert _take(restored, remaining) == _take(reference, remaining)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_advance_rejects_cross_chunk_counts(self, seed):
        stream = _stream("stream_sweep", seed, "chunked")
        chunk, pos = stream.peek_chunk()
        stream.advance(0)  # no-op by contract
        assert stream.consumed == 0
        try:
            stream.advance(chunk.length - pos + 1)
        except ValueError:
            pass
        else:
            raise AssertionError("advance past the buffered chunk must raise")
        assert stream.consumed == 0


class TestOpChunkInvariants:
    @given(
        vaddrs=st.lists(st.integers(0, 2**30), max_size=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_length_matches_columns(self, vaddrs):
        chunk = OpChunk(vaddrs, [False] * len(vaddrs), [0] * len(vaddrs))
        assert chunk.length == len(chunk) == len(vaddrs)
        if vaddrs:
            array = chunk.vaddr_array()
            assert array.tolist() == vaddrs
            assert chunk.vaddr_array() is array, "numpy view is cached"
