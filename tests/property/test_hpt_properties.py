"""Property-based tests for the Hot Page Tables."""

from hypothesis import given, settings, strategies as st

from repro.core.hpt import HotPageTable

events = st.lists(
    st.tuples(st.integers(0, 50_000), st.integers(0, 40)),  # (time delta, page)
    max_size=200,
)


def run_hpt(hpt, event_list):
    now = 0
    for delta, page in event_list:
        now += delta
        hpt.record_miss(now, page)
    return now


class TestHptInvariants:
    @given(event_list=events)
    @settings(max_examples=150, deadline=None)
    def test_counters_bounded(self, event_list):
        hpt = HotPageTable(8, 63, 10_000, swap_threshold=None)
        run_hpt(hpt, event_list)
        for page in hpt.pages():
            assert 1 <= hpt.count_of(page) <= 63

    @given(event_list=events)
    @settings(max_examples=150, deadline=None)
    def test_capacity_bounded(self, event_list):
        hpt = HotPageTable(8, 63, 10_000, swap_threshold=None)
        run_hpt(hpt, event_list)
        assert hpt.occupancy <= 8

    @given(event_list=events)
    @settings(max_examples=100, deadline=None)
    def test_long_idle_empties_table(self, event_list):
        hpt = HotPageTable(8, 63, 10_000, swap_threshold=None)
        now = run_hpt(hpt, event_list)
        # 63 halvings zero every 6-bit counter.
        hpt.advance_time(now + 10_000 * 64)
        assert hpt.occupancy == 0

    @given(event_list=events)
    @settings(max_examples=100, deadline=None)
    def test_threshold_fires_at_most_once_per_burst(self, event_list):
        """With no decay in between, the threshold edge fires exactly once."""
        hpt = HotPageTable(64, 63, 10**9, swap_threshold=6)
        fires = {}
        now = 0
        for _, page in event_list:
            now += 1
            if hpt.record_miss(now, page):
                fires[page] = fires.get(page, 0) + 1
        for page, count in fires.items():
            assert count == 1

    @given(event_list=events)
    @settings(max_examples=100, deadline=None)
    def test_is_hot_iff_tracked(self, event_list):
        hpt = HotPageTable(8, 63, 10_000, swap_threshold=None)
        run_hpt(hpt, event_list)
        tracked = set(hpt.pages())
        for page in range(41):
            assert hpt.is_hot(page) == (page in tracked)
