"""Property tests: swap aborts at arbitrary fault points roll back cleanly.

The Swap Driver's commit-after-transfer design means an injected fault at
*any* point of the transfer phase must leave the PRT (and all driver
state) exactly as it was.  These tests drive swaps through a scripted
injector that kills a chosen device operation, and assert the remap
relation is still a colour-respecting involution over the whole physical
space afterwards — for every abort point hypothesis can find.
"""

from hypothesis import given, settings, strategies as st

from repro.common.config import (
    FaultConfig,
    HybridMemoryConfig,
    PageSeerConfig,
    dram_timing_table1,
    nvm_timing_table1,
)
from repro.common.errors import TransientFaultError, UnrecoverableFaultError
from repro.common.stats import StatsRegistry
from repro.core.hpt import HotPageTable
from repro.core.prt import PageRemapTable
from repro.core.swap_driver import SwapDriver, TRIGGER_REGULAR
from repro.faults.injector import FaultInjector
from repro.mem.main_memory import MainMemory
from repro.mem.swap_buffer import SwapBufferPool

DRAM_PAGES = 64
NVM_PAGES = 256
TOTAL = DRAM_PAGES + NVM_PAGES


class ScriptedInjector:
    """Injector double that faults specific transfer operations.

    ``abort_plan`` maps a 0-based transfer ordinal to the line budget the
    device gets before the fault fires (0 = dies immediately); ordinals
    not in the plan run clean.  ``uncorrectable_at`` marks ordinals that
    fail permanently instead.
    """

    def __init__(self, abort_plan, uncorrectable_at=frozenset()):
        self.abort_plan = dict(abort_plan)
        self.uncorrectable_at = set(uncorrectable_at)
        self.transfer_ordinal = 0

    def check_access(self, device, now, line_number, is_write):
        return None

    def check_transfer(self, device, now, first_line, line_count, is_write):
        ordinal = self.transfer_ordinal
        self.transfer_ordinal += 1
        if ordinal in self.uncorrectable_at and not is_write:
            raise UnrecoverableFaultError(
                "scripted uncorrectable", device=device, line=first_line,
                cycle=now,
            )
        if ordinal in self.abort_plan:
            return min(self.abort_plan[ordinal], max(0, line_count - 1))
        return None


def make_harness(injector, max_retries=0):
    stats = StatsRegistry()
    memory = MainMemory(
        HybridMemoryConfig(
            dram=dram_timing_table1(DRAM_PAGES * 4096),
            nvm=nvm_timing_table1(NVM_PAGES * 4096),
        ),
        stats,
    )
    memory.attach_injector(injector)
    prt = PageRemapTable(DRAM_PAGES, TOTAL, 4)
    driver = SwapDriver(
        PageSeerConfig(),
        memory,
        prt,
        HotPageTable(64, 63, 100_000),
        SwapBufferPool(24, stats),
        stats,
        is_protected_frame=lambda frame: frame < 2,
        faults=FaultConfig(enabled=True, max_retries=max_retries),
        injector=injector,
    )
    return driver, prt, stats


def snapshot(prt):
    return [prt.location_of(page) for page in range(TOTAL)]


def assert_involution(prt):
    locations = snapshot(prt)
    assert sorted(locations) == list(range(TOTAL))
    for page in range(TOTAL):
        assert prt.location_of(locations[page]) == page


requests = st.lists(
    st.tuples(
        st.integers(0, NVM_PAGES - 1),   # which NVM page
        st.integers(1, 50_000),          # time delta
    ),
    min_size=1,
    max_size=30,
)

# Which transfer ordinals die, and how many lines each moves first.
abort_plans = st.dictionaries(
    st.integers(0, 120), st.integers(0, 63), max_size=25
)
uncorrectable_marks = st.sets(st.integers(0, 120), max_size=8)


class TestAbortRollback:
    @given(request_list=requests, plan=abort_plans)
    @settings(max_examples=60, deadline=None)
    def test_prt_survives_arbitrary_transient_aborts(self, request_list, plan):
        injector = ScriptedInjector(plan)
        driver, prt, stats = make_harness(injector, max_retries=0)
        now = 0
        for page_index, delta in request_list:
            now += delta
            before = snapshot(prt)
            aborted_before = stats.get("swap_driver/aborted_swaps")
            started = driver.request_swap(
                now, DRAM_PAGES + page_index, TRIGGER_REGULAR, 0.0
            )
            if not started and stats.get("swap_driver/aborted_swaps") > aborted_before:
                # The swap aborted mid-transfer: zero state drift allowed.
                assert snapshot(prt) == before
        assert_involution(prt)

    @given(request_list=requests, plan=abort_plans, marks=uncorrectable_marks)
    @settings(max_examples=60, deadline=None)
    def test_prt_survives_mixed_fault_kinds_with_retries(
        self, request_list, plan, marks
    ):
        injector = ScriptedInjector(plan, uncorrectable_at=marks)
        driver, prt, stats = make_harness(injector, max_retries=2)
        now = 0
        for page_index, delta in request_list:
            now += delta
            driver.request_swap(
                now, DRAM_PAGES + page_index, TRIGGER_REGULAR, 0.0
            )
        assert_involution(prt)
        # Protected frames still hold their home data.
        for frame in (0, 1):
            assert prt.location_of(frame) == frame

    @given(request_list=requests, plan=abort_plans)
    @settings(max_examples=40, deadline=None)
    def test_aborts_never_record_swaps(self, request_list, plan):
        injector = ScriptedInjector(plan)
        driver, prt, stats = make_harness(injector, max_retries=0)
        now = 0
        accepted = 0
        for page_index, delta in request_list:
            now += delta
            if driver.request_swap(
                now, DRAM_PAGES + page_index, TRIGGER_REGULAR, 0.0
            ):
                accepted += 1
        assert len(driver.records) == accepted
        assert stats.get("swap_driver/swaps") == accepted
        # Conservation: every accepted swap put exactly one NVM page into
        # a DRAM frame, minus those later displaced by an optimized slow
        # swap (which removes one pair as it installs another).
        assert prt.active_pairs <= accepted

    @given(
        bad_page=st.integers(0, NVM_PAGES - 1),
        request_list=requests,
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_quarantine_remap_keeps_bijectivity(
        self, bad_page, request_list, seed
    ):
        """A real injector + rescue path: bijectivity survives quarantine."""
        stats = StatsRegistry()
        config = FaultConfig(enabled=True, max_retries=1, fault_seed=seed)
        injector = FaultInjector(config, stats)
        memory = MainMemory(
            HybridMemoryConfig(
                dram=dram_timing_table1(DRAM_PAGES * 4096),
                nvm=nvm_timing_table1(NVM_PAGES * 4096),
            ),
            stats,
        )
        memory.attach_injector(injector)
        prt = PageRemapTable(DRAM_PAGES, TOTAL, 4)
        quarantined = set()
        driver = SwapDriver(
            PageSeerConfig(),
            memory,
            prt,
            HotPageTable(64, 63, 100_000),
            SwapBufferPool(24, stats),
            stats,
            is_protected_frame=lambda frame: False,
            faults=config,
            injector=injector,
            is_quarantined=lambda page: page in quarantined,
        )
        spa = DRAM_PAGES + bad_page
        injector.mark_bad(bad_page)
        quarantined.add(spa)
        rescued = driver.rescue_swap(0, spa)
        now = 0
        for page_index, delta in request_list:
            now += delta
            driver.request_swap(
                now, DRAM_PAGES + page_index, TRIGGER_REGULAR, 0.0
            )
        assert_involution(prt)
        if rescued:
            # The rescued page stays pinned in DRAM through every
            # subsequent swap (its home location is unreadable).
            assert prt.dram_frame_holding(spa) is not None
