"""Property-based tests for the MEA / Space-Saving sketch (MemPod)."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.baselines.mempod import MajorityElementTracker

streams = st.lists(st.integers(0, 30), min_size=1, max_size=400)


class TestSpaceSavingGuarantees:
    @given(stream=streams)
    @settings(max_examples=150, deadline=None)
    def test_occupancy_bounded(self, stream):
        mea = MajorityElementTracker(8)
        for key in stream:
            mea.observe(key)
        assert mea.occupancy <= 8

    @given(stream=streams)
    @settings(max_examples=150, deadline=None)
    def test_counts_overestimate_true_frequency(self, stream):
        """Space-Saving never under-counts a tracked element."""
        mea = MajorityElementTracker(8)
        for key in stream:
            mea.observe(key)
        true_counts = Counter(stream)
        for key, count in mea._counts.items():
            assert count >= true_counts[key] or true_counts[key] == 0

    @given(stream=streams)
    @settings(max_examples=150, deadline=None)
    def test_heavy_hitters_are_tracked(self, stream):
        """Any element with frequency > n/k must be in the sketch."""
        k = 8
        mea = MajorityElementTracker(k)
        for key in stream:
            mea.observe(key)
        true_counts = Counter(stream)
        threshold = len(stream) / k
        for key, count in true_counts.items():
            if count > threshold:
                assert mea.count_of(key) > 0

    @given(stream=streams)
    @settings(max_examples=100, deadline=None)
    def test_error_bounded_by_n_over_k(self, stream):
        """Overestimation is at most n/k (the classic bound)."""
        k = 8
        mea = MajorityElementTracker(k)
        for key in stream:
            mea.observe(key)
        true_counts = Counter(stream)
        bound = len(stream) / k
        for key, count in mea._counts.items():
            assert count - true_counts[key] <= bound + 1

    @given(stream=streams)
    @settings(max_examples=100, deadline=None)
    def test_heavy_elements_sorted_descending(self, stream):
        mea = MajorityElementTracker(8)
        for key in stream:
            mea.observe(key)
        heavy = mea.heavy_elements(minimum_count=1)
        counts = [mea.count_of(k) for k in heavy]
        assert counts == sorted(counts, reverse=True)
