"""Property-based tests for the PCT machinery (counters, Filter)."""

from hypothesis import given, settings, strategies as st

from repro.core.pct import FilterEntry, FilterTable, PctCache, PctEntry

COUNTER_MAX = 63
THRESHOLD = 14

miss_streams = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 30)),  # (pid, page)
    max_size=300,
)


class TestCounterInvariants:
    @given(stream=miss_streams)
    @settings(max_examples=100, deadline=None)
    def test_filter_counters_saturate(self, stream):
        filt = FilterTable(8, COUNTER_MAX, THRESHOLD)
        for pid, page in stream:
            filt.observe_miss(pid, page, PctEntry())
        for page in range(31):
            entry = filt.entry_for(page)
            if entry is not None:
                assert 0 <= entry.misses <= COUNTER_MAX
                assert 0 <= entry.follower_misses <= COUNTER_MAX
                assert 0 <= entry.new_follower_misses <= COUNTER_MAX

    @given(
        base_count=st.integers(0, COUNTER_MAX),
        misses=st.integers(0, COUNTER_MAX),
        follower_count=st.integers(0, COUNTER_MAX),
        follower_misses=st.integers(0, COUNTER_MAX),
    )
    @settings(max_examples=200, deadline=None)
    def test_merged_history_bounded(
        self, base_count, misses, follower_count, follower_misses
    ):
        entry = FilterEntry(
            page=1,
            pid=0,
            base=PctEntry(base_count, 2, follower_count),
            misses=misses,
            follower_misses=follower_misses,
        )
        merged = FilterTable.merged_history(entry, COUNTER_MAX)
        assert 0 <= merged.count <= COUNTER_MAX
        assert 0 <= merged.follower_count <= COUNTER_MAX

    @given(stream=miss_streams)
    @settings(max_examples=100, deadline=None)
    def test_filter_capacity_respected(self, stream):
        filt = FilterTable(4, COUNTER_MAX, THRESHOLD)
        for pid, page in stream:
            filt.observe_miss(pid, page, PctEntry())
        assert filt.occupancy <= 4

    @given(stream=miss_streams)
    @settings(max_examples=100, deadline=None)
    def test_drain_empties(self, stream):
        filt = FilterTable(8, COUNTER_MAX, THRESHOLD)
        for pid, page in stream:
            filt.observe_miss(pid, page, PctEntry())
        filt.drain()
        assert filt.occupancy == 0

    @given(stream=miss_streams)
    @settings(max_examples=100, deadline=None)
    def test_followers_never_self(self, stream):
        """A page must never be recorded as its own follower."""
        filt = FilterTable(8, COUNTER_MAX, THRESHOLD)
        for pid, page in stream:
            filt.observe_miss(pid, page, PctEntry())
        for page in range(31):
            entry = filt.entry_for(page)
            if entry is not None:
                assert entry.new_follower_ppn != page


class TestPctCacheInvariants:
    @given(
        pages=st.lists(st.integers(0, 100), max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_capacity_respected(self, pages):
        cache = PctCache(8, 4, 1)
        for page in pages:
            cache.fill(page, PctEntry(page % 64, None, 0))
        assert cache.occupancy <= 8

    @given(pages=st.lists(st.integers(0, 100), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_lookup_returns_last_fill(self, pages):
        cache = PctCache(256, 4, 1)
        last = {}
        for index, page in enumerate(pages):
            entry = PctEntry(index % 64, None, 0)
            cache.fill(page, entry)
            last[page] = entry
        for page, entry in last.items():
            assert cache.lookup(page) == entry
