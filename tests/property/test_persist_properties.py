"""Property-based crash/corruption tests for the persistence layer.

The contract pinned here is *detect-or-recover*: for any persisted
artifact — a stamped JSON envelope, a REPRO-CKPT checkpoint, a JSONL
journal — an arbitrary truncation or a single flipped bit must never
yield a clean read of wrong data.  Either the reader raises (or the
fsck probe says "corrupt"/"legacy"), or the recovered content is
exactly what was acknowledged before the damage.
"""

import hashlib
import json
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro import persist
from repro.fsck import _probe_journal, scan_directory
from repro.snapshot.checkpoint import MAGIC, verify_checkpoint


@pytest.fixture(autouse=True)
def _clean_injector():
    persist.install_storage_faults(None)
    yield
    persist.install_storage_faults(None)


# Payloads: JSON objects with string keys and printable scalar values —
# the shape every persisted document in this project takes.
scalars = st.one_of(
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(st.characters(min_codepoint=32, max_codepoint=126), max_size=12),
    st.booleans(),
)
payloads = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=8),
    scalars,
    min_size=1,
    max_size=8,
)


# -- stamped JSON envelopes ---------------------------------------------------


class TestJsonEnvelope:
    @given(payload=payloads, data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_any_truncation_of_a_compact_envelope_is_detected(
        self, tmp_path_factory, payload, data
    ):
        path = tmp_path_factory.mktemp("trunc") / "doc.json"
        persist.write_json(path, payload)
        raw = path.read_bytes()
        cut = data.draw(st.integers(0, len(raw) - 1), label="cut")
        path.write_bytes(raw[:cut])
        # A compact JSON object only balances its braces at full length:
        # every strict prefix must fail the parse, not read as data.
        assert persist.verify_file(path)[0] == "corrupt"
        with pytest.raises(persist.CorruptPayloadError):
            persist.read_json(path)

    @given(payload=payloads, data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_single_bit_flip_never_verifies_wrong_data(
        self, tmp_path_factory, payload, data
    ):
        path = tmp_path_factory.mktemp("flip") / "doc.json"
        persist.write_json(path, payload)
        raw = bytearray(path.read_bytes())
        bit = data.draw(st.integers(0, len(raw) * 8 - 1), label="bit")
        raw[bit // 8] ^= 1 << (bit % 8)
        path.write_bytes(bytes(raw))
        status, _ = persist.verify_file(path)
        if status == "ok":
            # The flip self-cancelled semantically (e.g. inside the
            # stamp's unverified format field): the data must be intact.
            assert persist.read_json(path) == payload
        else:
            # Detected: corrupt outright, or demoted to "legacy" when
            # the flip destroyed the stamp key itself — either way the
            # file no longer passes as verified-good.
            assert status in ("corrupt", "legacy")

    @given(payload=payloads)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_exact(self, tmp_path_factory, payload):
        path = tmp_path_factory.mktemp("rt") / "doc.json"
        persist.write_json(path, payload)
        assert persist.read_json(path) == payload
        assert persist.verify_file(path)[0] == "ok"


# -- REPRO-CKPT checkpoints ---------------------------------------------------


def _checkpoint_blob(state: bytes) -> bytes:
    compressed = zlib.compress(state)
    header = {
        "format_version": 1,
        "checksum_sha256": hashlib.sha256(compressed).hexdigest(),
        "payload_bytes": len(compressed),
        "ops_executed": [1],
    }
    return (
        MAGIC
        + json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        + b"\n"
        + compressed
    )


class TestCheckpointFiles:
    @given(state=st.binary(min_size=1, max_size=200), data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_any_truncation_is_detected(self, tmp_path_factory, state, data):
        blob = _checkpoint_blob(state)
        path = tmp_path_factory.mktemp("ckpt") / "latest.ckpt"
        cut = data.draw(st.integers(0, len(blob) - 1), label="cut")
        path.write_bytes(blob[:cut])
        assert verify_checkpoint(path)[0] == "corrupt"

    @given(state=st.binary(min_size=1, max_size=200), data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_payload_bit_flips_are_detected(self, tmp_path_factory, state,
                                            data):
        """The compressed payload is checksummed: any flip there is caught.

        (Header *metadata* fields are deliberately outside the checksum —
        they describe the payload, whose integrity is what matters.)
        """
        blob = _checkpoint_blob(state)
        payload_start = blob.index(b"\n", len(MAGIC)) + 1
        raw = bytearray(blob)
        bit = data.draw(
            st.integers(payload_start * 8, len(raw) * 8 - 1), label="bit"
        )
        raw[bit // 8] ^= 1 << (bit % 8)
        path = tmp_path_factory.mktemp("ckpt") / "latest.ckpt"
        path.write_bytes(bytes(raw))
        assert verify_checkpoint(path)[0] == "corrupt"

    @given(state=st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_undamaged_blob_verifies(self, tmp_path_factory, state):
        path = tmp_path_factory.mktemp("ckpt") / "latest.ckpt"
        path.write_bytes(_checkpoint_blob(state))
        assert verify_checkpoint(path)[0] == "ok"


# -- JSONL journals -----------------------------------------------------------


records_strategy = st.lists(payloads, min_size=0, max_size=6)


def _journal_bytes(records) -> bytes:
    return b"".join(json.dumps(r).encode() + b"\n" for r in records)


def _parse_records(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestJournals:
    @given(records=records_strategy, data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_truncated_journal_repairs_to_a_record_prefix(
        self, tmp_path_factory, records, data
    ):
        """Killing a writer mid-append loses at most the unacked tail.

        After fsck repair the journal holds an exact prefix of the
        original records — never an invented or mutated record.
        """
        raw = _journal_bytes(records)
        directory = tmp_path_factory.mktemp("journal")
        path = directory / "log.jsonl"
        cut = data.draw(st.integers(0, len(raw)), label="cut")
        path.write_bytes(raw[:cut])
        status, _, offset = _probe_journal(path)
        if status == "ok":
            assert records[: len(_parse_records(path))] == _parse_records(path)
            return
        assert offset >= 0  # a pure truncation is always a torn tail
        scan_directory(directory, repair=True)
        recovered = _parse_records(path)
        assert recovered == records[: len(recovered)]
        # And the repair converges: a second scan sees a clean journal.
        assert _probe_journal(path)[0] == "ok"
