"""Property-based tests for the workload generators."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.common.addr import page_of
from repro.common.rng import DeterministicRng
from repro.workloads.base import BenchmarkPart, footprint_pages_for
from repro.workloads.synthetic import GENERATORS, HEAP_BASE

ARCHETYPES = sorted(
    name for name in GENERATORS
    if name not in ("trace",)
)

footprints = st.integers(min_value=8, max_value=300)
seeds = st.integers(min_value=0, max_value=2**31)


class TestGeneratorProperties:
    @given(
        name=st.sampled_from(ARCHETYPES),
        footprint=footprints,
        seed=seeds,
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_addresses_any_footprint(self, name, footprint, seed):
        rng = DeterministicRng(f"prop/{name}", seed)
        ops = list(itertools.islice(GENERATORS[name](rng, footprint), 600))
        for op in ops:
            page = page_of(op.vaddr - HEAP_BASE)
            assert 0 <= page < footprint

    @given(name=st.sampled_from(ARCHETYPES), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_seed_determinism(self, name, seed):
        a = list(itertools.islice(
            GENERATORS[name](DeterministicRng("p", seed), 64), 300))
        b = list(itertools.islice(
            GENERATORS[name](DeterministicRng("p", seed), 64), 300))
        assert a == b

    @given(name=st.sampled_from(ARCHETYPES), footprint=footprints)
    @settings(max_examples=40, deadline=None)
    def test_eventually_covers_many_pages(self, name, footprint):
        rng = DeterministicRng(f"cov/{name}", 1)
        ops = itertools.islice(GENERATORS[name](rng, footprint), 20_000)
        pages = {page_of(op.vaddr - HEAP_BASE) for op in ops}
        # Every archetype must exercise a substantial part of its footprint
        # (hot/cold archetypes are skewed but still touch the cold tail).
        assert len(pages) >= footprint // 4

    @given(
        mb=st.floats(min_value=0.1, max_value=2000),
        scale=st.sampled_from([1, 64, 256, 512, 1024]),
    )
    @settings(max_examples=100, deadline=None)
    def test_footprint_scaling_monotone(self, mb, scale):
        pages = footprint_pages_for(mb, scale)
        bigger = footprint_pages_for(mb * 2, scale)
        assert bigger >= pages
        assert pages >= 1


class TestBenchmarkPartProperties:
    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_part_streams_respect_params(self, seed):
        part = BenchmarkPart("custom", "stream_sweep", 100, {"arrays": 2})
        rng = DeterministicRng("part", seed)
        stream = part.make_stream(rng, 512)
        ops = list(itertools.islice(stream, 200))
        assert len(ops) == 200
