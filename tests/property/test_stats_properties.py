"""Property-based tests for StatsRegistry snapshot/diff round-trips.

The experiment harness relies on snapshot algebra for exact warm-up
separation, so these pin the laws the implementation promises:

* ``later.diff(earlier)`` composes: ``c.diff(a) == c.diff(b).merged(b.diff(a))``
* maxima and means survive snapshotting unchanged
* warm-up separation is exact — a diff over the measured window equals a
  fresh registry fed only the measured-window operations
"""

from hypothesis import given, settings, strategies as st

from repro.common.stats import StatsRegistry, StatsSnapshot

# Counter increments in the simulator are positive (events happen; they
# don't un-happen), which is what makes "drop zero deltas" in diff() safe.
names = st.sampled_from(
    ["hmc/reads", "hmc/writes", "swap/total", "cache/l2/hits", "prt/hits"]
)
add_op = st.tuples(st.just("add"), names, st.integers(1, 1_000))
observe_op = st.tuples(st.just("observe"), names, st.integers(0, 10_000))
ops = st.lists(st.one_of(add_op, observe_op), max_size=120)


def apply_ops(registry, op_list):
    for kind, name, value in op_list:
        if kind == "add":
            registry.add(name, value)
        else:
            registry.observe(name, value)


class TestSnapshotAlgebra:
    @given(seg1=ops, seg2=ops, seg3=ops)
    @settings(max_examples=200, deadline=None)
    def test_diff_composes(self, seg1, seg2, seg3):
        """c.diff(a) == c.diff(b).merged(b.diff(a)) for ordered snapshots."""
        registry = StatsRegistry()
        apply_ops(registry, seg1)
        a = registry.snapshot_full()
        apply_ops(registry, seg2)
        b = registry.snapshot_full()
        apply_ops(registry, seg3)
        c = registry.snapshot_full()
        assert c.diff(a) == c.diff(b).merged(b.diff(a))

    @given(op_list=ops)
    @settings(max_examples=200, deadline=None)
    def test_self_diff_is_empty(self, op_list):
        registry = StatsRegistry()
        apply_ops(registry, op_list)
        snap = registry.snapshot_full()
        zero = snap.diff(snap)
        assert not zero.counters and not zero.sums and not zero.counts

    @given(op_list=ops)
    @settings(max_examples=200, deadline=None)
    def test_maxima_and_means_survive_snapshot(self, op_list):
        """A snapshot answers every statistical query like the live registry."""
        registry = StatsRegistry()
        apply_ops(registry, op_list)
        snap = registry.snapshot_full()
        for name in registry.names():
            assert snap.get(name) == registry.get(name)
            assert snap.maximum(name) == registry.maximum(name)
            assert snap.mean(name) == registry.mean(name)
            assert snap.counts.get(name, 0) == registry.count(name)

    @given(op_list=ops)
    @settings(max_examples=200, deadline=None)
    def test_snapshot_is_immutable_copy(self, op_list):
        """Later registry activity must not leak into an older snapshot."""
        registry = StatsRegistry()
        apply_ops(registry, op_list)
        snap = registry.snapshot_full()
        frozen = StatsSnapshot(
            counters=dict(snap.counters),
            sums=dict(snap.sums),
            counts=dict(snap.counts),
            maxima=dict(snap.maxima),
        )
        registry.add("hmc/reads", 17)
        registry.observe("swap/total", 99_999)
        assert snap == frozen


class TestWarmupSeparation:
    @given(warmup=ops, measured=ops)
    @settings(max_examples=200, deadline=None)
    def test_separation_exact(self, warmup, measured):
        """since(warm-up snapshot) == a registry fed only the measured ops."""
        registry = StatsRegistry()
        apply_ops(registry, warmup)
        boundary = registry.snapshot_full()
        apply_ops(registry, measured)
        window = registry.since(boundary)

        clean = StatsRegistry()
        apply_ops(clean, measured)
        expected = clean.snapshot_full()

        # diff() drops zero deltas; observe(name, 0) leaves a literal 0.0
        # entry in a fresh registry.  Equal-as-numbers is the contract.
        def same(got, want):
            return all(
                got.get(k, 0) == want.get(k, 0) for k in set(got) | set(want)
            )

        assert same(window.counters, expected.counters)
        assert same(window.sums, expected.sums)
        assert same(window.counts, expected.counts)

    @given(warmup=ops, measured=ops)
    @settings(max_examples=100, deadline=None)
    def test_diff_carries_later_maxima(self, warmup, measured):
        """Maxima are not subtractable; a diff reports the later snapshot's."""
        registry = StatsRegistry()
        apply_ops(registry, warmup)
        boundary = registry.snapshot_full()
        apply_ops(registry, measured)
        window = registry.since(boundary)
        assert dict(window.maxima) == dict(registry.snapshot_full().maxima)

    @given(warmup=ops, measured=ops)
    @settings(max_examples=100, deadline=None)
    def test_merge_reassembles_whole_run(self, warmup, measured):
        """warm-up snapshot merged with the window diff == the full run."""
        registry = StatsRegistry()
        apply_ops(registry, warmup)
        boundary = registry.snapshot_full()
        apply_ops(registry, measured)
        full = registry.snapshot_full()
        reassembled = boundary.merged(full.diff(boundary))

        def same(got, want):
            return all(
                got.get(k, 0) == want.get(k, 0) for k in set(got) | set(want)
            )

        assert same(reassembled.counters, full.counters)
        assert same(reassembled.sums, full.sums)
        assert same(reassembled.counts, full.counts)
        assert reassembled.maxima == full.maxima
