"""Property-based tests: the Swap Driver preserves the PRT's invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.config import (
    HybridMemoryConfig,
    PageSeerConfig,
    dram_timing_table1,
    nvm_timing_table1,
)
from repro.common.stats import StatsRegistry
from repro.core.hpt import HotPageTable
from repro.core.prt import PageRemapTable
from repro.core.swap_driver import SwapDriver, TRIGGER_REGULAR
from repro.mem.main_memory import MainMemory
from repro.mem.swap_buffer import SwapBufferPool

DRAM_PAGES = 64
NVM_PAGES = 256
TOTAL = DRAM_PAGES + NVM_PAGES


def make_driver():
    stats = StatsRegistry()
    memory = MainMemory(
        HybridMemoryConfig(
            dram=dram_timing_table1(DRAM_PAGES * 4096),
            nvm=nvm_timing_table1(NVM_PAGES * 4096),
        ),
        stats,
    )
    prt = PageRemapTable(DRAM_PAGES, TOTAL, 4)
    driver = SwapDriver(
        PageSeerConfig(),
        memory,
        prt,
        HotPageTable(64, 63, 100_000),
        SwapBufferPool(24, stats),
        stats,
        is_protected_frame=lambda frame: frame < 2,
    )
    return driver, prt


requests = st.lists(
    st.tuples(
        st.integers(0, NVM_PAGES - 1),   # which NVM page
        st.integers(1, 50_000),          # time delta
    ),
    max_size=60,
)


class TestSwapDriverInvariants:
    @given(request_list=requests)
    @settings(max_examples=60, deadline=None)
    def test_prt_stays_an_involution(self, request_list):
        driver, prt = make_driver()
        now = 0
        for page_index, delta in request_list:
            now += delta
            driver.request_swap(now, DRAM_PAGES + page_index, TRIGGER_REGULAR, 0.0)
        for page in range(TOTAL):
            assert prt.location_of(prt.location_of(page)) == page

    @given(request_list=requests)
    @settings(max_examples=60, deadline=None)
    def test_locations_stay_a_permutation(self, request_list):
        driver, prt = make_driver()
        now = 0
        for page_index, delta in request_list:
            now += delta
            driver.request_swap(now, DRAM_PAGES + page_index, TRIGGER_REGULAR, 0.0)
        locations = sorted(prt.location_of(page) for page in range(TOTAL))
        assert locations == list(range(TOTAL))

    @given(request_list=requests)
    @settings(max_examples=60, deadline=None)
    def test_protected_frames_never_vacated(self, request_list):
        driver, prt = make_driver()
        now = 0
        for page_index, delta in request_list:
            now += delta
            driver.request_swap(now, DRAM_PAGES + page_index, TRIGGER_REGULAR, 0.0)
        # Frames 0 and 1 are protected: their home data must still be there.
        for frame in (0, 1):
            assert prt.location_of(frame) == frame

    @given(request_list=requests)
    @settings(max_examples=60, deadline=None)
    def test_accepted_swaps_match_prt_population(self, request_list):
        driver, prt = make_driver()
        now = 0
        swapped_in = 0
        swapped_out = 0
        original_driver_out = driver._on_swap_out
        driver._on_swap_out = lambda page, t: None
        for page_index, delta in request_list:
            now += delta
            before = prt.active_pairs
            if driver.request_swap(
                now, DRAM_PAGES + page_index, TRIGGER_REGULAR, 0.0
            ):
                swapped_in += 1
                after = prt.active_pairs
                if after == before:
                    swapped_out += 1
        assert prt.active_pairs == swapped_in - swapped_out

    @given(request_list=requests)
    @settings(max_examples=60, deadline=None)
    def test_records_monotone_and_bounded(self, request_list):
        driver, prt = make_driver()
        now = 0
        for page_index, delta in request_list:
            now += delta
            driver.request_swap(now, DRAM_PAGES + page_index, TRIGGER_REGULAR, 0.0)
        for record in driver.records:
            assert record.end > record.start
            assert record.reads in (2, 3)
            assert record.writes == record.reads
