"""Property-based tests for the Page Remapping Table.

Invariants (Section III-C1):
* the remap relation is an involution: ``location(location(p)) == p``;
* colour constraint: a page's data only ever lives at a location of its
  own colour;
* unswapped pages live at home;
* install/remove sequences never corrupt the two-way mapping.
"""

from hypothesis import given, settings, strategies as st

from repro.core.prt import PageRemapTable

DRAM_PAGES = 64
NVM_PAGES = 256
TOTAL = DRAM_PAGES + NVM_PAGES
WAYS = 4


def apply_ops(prt: PageRemapTable, ops):
    """Interpret a random op sequence, skipping illegal steps."""
    for kind, value in ops:
        if kind == "install":
            nvm_page = DRAM_PAGES + (value % NVM_PAGES)
            frames = [
                f
                for f in prt.dram_frames_of_colour(prt.colour_of(nvm_page))
                if prt.nvm_page_in_frame(f) is None
            ]
            if frames and prt.dram_frame_holding(nvm_page) is None:
                prt.install(nvm_page, frames[value % len(frames)])
        else:
            swapped = sorted(
                p for p in range(DRAM_PAGES, TOTAL) if prt.is_swapped(p)
            )
            if swapped:
                prt.remove(swapped[value % len(swapped)])


ops_strategy = st.lists(
    st.tuples(st.sampled_from(["install", "remove"]), st.integers(0, 10**6)),
    max_size=60,
)


class TestPrtInvariants:
    @given(ops=ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_involution(self, ops):
        prt = PageRemapTable(DRAM_PAGES, TOTAL, WAYS)
        apply_ops(prt, ops)
        for page in range(TOTAL):
            assert prt.location_of(prt.location_of(page)) == page

    @given(ops=ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_colour_preserved(self, ops):
        prt = PageRemapTable(DRAM_PAGES, TOTAL, WAYS)
        apply_ops(prt, ops)
        for page in range(TOTAL):
            assert prt.colour_of(prt.location_of(page)) == prt.colour_of(page)

    @given(ops=ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_location_is_permutation(self, ops):
        prt = PageRemapTable(DRAM_PAGES, TOTAL, WAYS)
        apply_ops(prt, ops)
        locations = [prt.location_of(page) for page in range(TOTAL)]
        assert sorted(locations) == list(range(TOTAL))

    @given(ops=ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_pairs_consistent(self, ops):
        prt = PageRemapTable(DRAM_PAGES, TOTAL, WAYS)
        apply_ops(prt, ops)
        for colour in range(prt.num_colours):
            for nvm_page, frame in prt.pairs_of_colour(colour):
                assert prt.dram_frame_holding(nvm_page) == frame
                assert prt.nvm_page_in_frame(frame) == nvm_page

    @given(ops=ops_strategy)
    @settings(max_examples=50, deadline=None)
    def test_remove_all_restores_identity(self, ops):
        prt = PageRemapTable(DRAM_PAGES, TOTAL, WAYS)
        apply_ops(prt, ops)
        for page in range(DRAM_PAGES, TOTAL):
            if prt.is_swapped(page):
                prt.remove(page)
        for page in range(TOTAL):
            assert prt.location_of(page) == page
        assert prt.active_pairs == 0

    @given(ops=ops_strategy)
    @settings(max_examples=50, deadline=None)
    def test_colour_capacity_bounded(self, ops):
        prt = PageRemapTable(DRAM_PAGES, TOTAL, WAYS)
        apply_ops(prt, ops)
        for colour in range(prt.num_colours):
            assert len(prt.pairs_of_colour(colour)) <= WAYS
