"""Property-based tests for the memory-device timing model."""

from hypothesis import given, settings, strategies as st

from repro.common.config import dram_timing_table1, nvm_timing_table1
from repro.common.stats import StatsRegistry
from repro.mem.device import MemoryDevice

accesses = st.lists(
    st.tuples(
        st.integers(0, 500),      # time delta
        st.integers(0, 4095),     # line
        st.booleans(),            # is_write
        st.booleans(),            # bulk
    ),
    max_size=150,
)


class TestDeviceInvariants:
    @given(access_list=accesses)
    @settings(max_examples=100, deadline=None)
    def test_finish_after_issue(self, access_list):
        device = MemoryDevice(dram_timing_table1(4 * 2**20), StatsRegistry())
        now = 0
        for delta, line, is_write, bulk in access_list:
            now += delta
            result = device.access(now, line, is_write, bulk)
            assert result.start >= now
            assert result.finish > result.start

    @given(access_list=accesses)
    @settings(max_examples=100, deadline=None)
    def test_demand_queue_delay_bounded_by_demand_and_cap(self, access_list):
        """Demand waits for demand plus at most one preemption window."""
        device = MemoryDevice(nvm_timing_table1(4 * 2**20), StatsRegistry())
        bank_demand_busy = {}
        now = 0
        for delta, line, is_write, bulk in access_list:
            now += delta
            _, bank, _ = device.map_line(line)
            result = device.access(now, line, is_write, bulk)
            if not bulk:
                prior = bank_demand_busy.get(bank, 0)
                allowed = max(now, prior) + device.preempt_cap_cycles
                assert result.start <= allowed
                bank_demand_busy[bank] = result.finish
            else:
                bank_demand_busy[bank] = max(
                    bank_demand_busy.get(bank, 0), result.finish
                )

    @given(access_list=accesses)
    @settings(max_examples=100, deadline=None)
    def test_counters_match_access_count(self, access_list):
        device = MemoryDevice(dram_timing_table1(4 * 2**20), StatsRegistry())
        now = 0
        for delta, line, is_write, bulk in access_list:
            now += delta
            device.access(now, line, is_write, bulk)
        writes = sum(1 for a in access_list if a[2])
        assert device.writes == writes
        assert device.reads == len(access_list) - writes

    @given(
        start=st.integers(0, 10_000),
        first_line=st.integers(0, 1024),
        count=st.integers(1, 64),
        is_write=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_transfer_page_counts_and_time(self, start, first_line, count, is_write):
        device = MemoryDevice(nvm_timing_table1(4 * 2**20), StatsRegistry())
        finish = device.transfer_page(start, first_line, count, is_write)
        assert finish > start
        moved = device.writes if is_write else device.reads
        assert moved == count

    @given(access_list=accesses)
    @settings(max_examples=50, deadline=None)
    def test_contention_only_adds_latency(self, access_list):
        """With contention on, every access is at least as slow."""
        fast = MemoryDevice(
            dram_timing_table1(4 * 2**20), StatsRegistry(), model_contention=False
        )
        slow = MemoryDevice(dram_timing_table1(4 * 2**20), StatsRegistry())
        now = 0
        for delta, line, is_write, bulk in access_list:
            now += delta
            uncontended = fast.access(now, line, is_write, bulk)
            contended = slow.access(now, line, is_write, bulk)
            assert contended.finish >= uncontended.finish
