"""Differential property suite: SoA kernels vs the OrderedDict oracles.

The simulator runs the struct-of-arrays models (:class:`repro.vm.tlb.SoaTlb`,
:class:`repro.cache.cache.SoaCache`); the ``OrderedDict`` models stay in the
tree purely as reference oracles.  These tests drive both implementations
with the same randomized op sequences and require *identical observable
behaviour at every step*: hit/miss results, returned PPNs, victim choices
(line number and dirty bit), occupancy, and resident contents.

Configs are deliberately tiny (1–4 sets, 1–4 ways) so Hypothesis exercises
set aliasing and eviction pressure constantly, and the LRU "tie-breaking"
question — the SoA model's argmin-of-age victim vs the dict's insertion
order — is probed under every interleaving of touches.  Ages are unique by
construction (a strictly increasing counter), so the two victim rules must
agree exactly; any drift is a bug, not a tolerance.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import SetAssociativeCache, SoaCache
from repro.common.config import CacheConfig, TlbConfig
from repro.vm.tlb import SoaTlb, Tlb

# -- shared strategy plumbing ----------------------------------------------

# Small universes force set aliasing: with <= 4 sets, distinct VPNs/lines
# constantly collide into the same set and evict each other.
_pids = st.integers(1, 3)
_vpns = st.integers(0, 23)
_lines = st.integers(0, 47)

tlb_ops = st.lists(
    st.one_of(
        st.tuples(st.just("lookup"), _pids, _vpns),
        st.tuples(st.just("fill"), _pids, _vpns, st.integers(0, 500)),
        st.tuples(st.just("invalidate"), _pids, _vpns),
        st.tuples(st.just("flush")),
    ),
    max_size=200,
)

cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("lookup"), _lines, st.booleans()),
        st.tuples(st.just("fill"), _lines, st.booleans()),
        st.tuples(st.just("contains"), _lines),
        st.tuples(st.just("invalidate"), _lines),
        st.tuples(st.just("invalidate_page"), st.integers(0, 5)),
    ),
    max_size=200,
)

tlb_geometries = st.sampled_from(
    # (entries, ways): 1x1 .. 4x4, including fully-associative single set.
    [(1, 1), (2, 1), (2, 2), (4, 2), (4, 4), (8, 2), (8, 4), (16, 4)]
)

cache_geometries = st.sampled_from(
    # (sets, ways) expressed through size = sets * ways * line_bytes.
    [(1, 1), (1, 2), (2, 1), (2, 2), (4, 2), (2, 4), (4, 4)]
)


def _tlb_pair(entries, ways):
    config = TlbConfig("prop", entries, ways, 1)
    return Tlb(config), SoaTlb(config)


def _cache_pair(num_sets, ways):
    config = CacheConfig("prop", num_sets * ways * 64, ways, 1)
    return SetAssociativeCache(config), SoaCache(config)


# -- TLB differencing ------------------------------------------------------


class TestSoaTlbMatchesReference:
    @given(geometry=tlb_geometries, ops=tlb_ops)
    @settings(max_examples=200, deadline=None)
    def test_step_identical(self, geometry, ops):
        """Every op returns the same result on both models, in lockstep."""
        ref, soa = _tlb_pair(*geometry)
        for op in ops:
            if op[0] == "lookup":
                _, pid, vpn = op
                assert soa.lookup(pid, vpn) == ref.lookup(pid, vpn)
            elif op[0] == "fill":
                _, pid, vpn, ppn = op
                assert soa.fill(pid, vpn, ppn) == ref.fill(pid, vpn, ppn)
            elif op[0] == "invalidate":
                _, pid, vpn = op
                assert soa.invalidate(pid, vpn) == ref.invalidate(pid, vpn)
            else:
                soa.flush()
                ref.flush()
            assert soa.occupancy == ref.occupancy

    @given(geometry=tlb_geometries, ops=tlb_ops)
    @settings(max_examples=100, deadline=None)
    def test_final_contents_identical(self, geometry, ops):
        """After any history, both models answer every probe identically.

        Probing must not disturb the comparison, so both models see the
        probes in the same order too.
        """
        ref, soa = _tlb_pair(*geometry)
        for op in ops:
            if op[0] == "lookup":
                soa.lookup(op[1], op[2])
                ref.lookup(op[1], op[2])
            elif op[0] == "fill":
                soa.fill(op[1], op[2], op[3])
                ref.fill(op[1], op[2], op[3])
            elif op[0] == "invalidate":
                soa.invalidate(op[1], op[2])
                ref.invalidate(op[1], op[2])
            else:
                soa.flush()
                ref.flush()
        for pid in range(1, 4):
            for vpn in range(24):
                assert soa.lookup(pid, vpn) == ref.lookup(pid, vpn), (
                    f"({pid}, {vpn}) diverged after {len(ops)} ops"
                )

    @given(geometry=tlb_geometries, ops=tlb_ops)
    @settings(max_examples=100, deadline=None)
    def test_soa_age_counter_strictly_increases(self, geometry, ops):
        """The LRU argmin argument: ages never repeat, so no ties exist."""
        _, soa = _tlb_pair(*geometry)
        last = soa._age[0]
        for op in ops:
            if op[0] == "lookup":
                soa.lookup(op[1], op[2])
            elif op[0] == "fill":
                soa.fill(op[1], op[2], op[3])
            elif op[0] == "invalidate":
                soa.invalidate(op[1], op[2])
            else:
                soa.flush()
            assert soa._age[0] >= last
            last = soa._age[0]
        stamps = [
            age
            for set_index in range(soa.num_sets)
            for way, key in enumerate(soa._keys[set_index])
            if key is not None
            for age in [soa._ages[set_index][way]]
        ]
        assert len(stamps) == len(set(stamps)), "live LRU stamps must be unique"


# -- cache differencing ----------------------------------------------------


class TestSoaCacheMatchesReference:
    @given(geometry=cache_geometries, ops=cache_ops)
    @settings(max_examples=200, deadline=None)
    def test_step_identical(self, geometry, ops):
        """Hits, victims (line *and* dirty bit), and occupancy in lockstep."""
        ref, soa = _cache_pair(*geometry)
        for op in ops:
            if op[0] == "lookup":
                _, line, is_write = op
                assert soa.lookup(line, is_write) == ref.lookup(line, is_write)
            elif op[0] == "fill":
                _, line, dirty = op
                assert soa.fill(line, dirty) == ref.fill(line, dirty)
            elif op[0] == "contains":
                assert soa.contains(op[1]) == ref.contains(op[1])
            elif op[0] == "invalidate":
                assert soa.invalidate(op[1]) == ref.invalidate(op[1])
            else:
                assert soa.invalidate_page(op[1], 8) == ref.invalidate_page(op[1], 8)
            assert soa.occupancy == ref.occupancy

    @given(geometry=cache_geometries, ops=cache_ops)
    @settings(max_examples=100, deadline=None)
    def test_final_residency_and_dirty_state_identical(self, geometry, ops):
        """After any history the two models hold the same lines, and
        evicting everything produces the same write-back set."""
        ref, soa = _cache_pair(*geometry)
        for op in ops:
            if op[0] == "lookup":
                soa.lookup(op[1], op[2])
                ref.lookup(op[1], op[2])
            elif op[0] == "fill":
                soa.fill(op[1], op[2])
                ref.fill(op[1], op[2])
            elif op[0] == "contains":
                soa.contains(op[1])
                ref.contains(op[1])
            elif op[0] == "invalidate":
                soa.invalidate(op[1])
                ref.invalidate(op[1])
            else:
                soa.invalidate_page(op[1], 8)
                ref.invalidate_page(op[1], 8)
        assert sorted(soa.resident_lines()) == sorted(ref.resident_lines())
        # Flush both by filling fresh conflicting lines: the victim
        # sequence (with dirty bits) must match eviction for eviction.
        for line in range(48, 48 + geometry[0] * geometry[1] + 4):
            assert soa.fill(line) == ref.fill(line)

    @given(geometry=cache_geometries, ops=cache_ops)
    @settings(max_examples=100, deadline=None)
    def test_lru_order_identical(self, geometry, ops):
        """resident_lines() is LRU-first per set on both models."""
        ref, soa = _cache_pair(*geometry)
        for op in ops:
            if op[0] == "lookup":
                soa.lookup(op[1], op[2])
                ref.lookup(op[1], op[2])
            elif op[0] == "fill":
                soa.fill(op[1], op[2])
                ref.fill(op[1], op[2])
            elif op[0] == "contains":
                pass
            elif op[0] == "invalidate":
                soa.invalidate(op[1])
                ref.invalidate(op[1])
            else:
                soa.invalidate_page(op[1], 8)
                ref.invalidate_page(op[1], 8)
        assert soa.resident_lines() == ref.resident_lines()
