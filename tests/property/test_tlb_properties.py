"""Property-based tests for the TLB and page-walk cache."""

from hypothesis import given, settings, strategies as st

from repro.common.config import TlbConfig
from repro.vm.tlb import Tlb
from repro.vm.walker import PageWalkCache

fills = st.lists(
    st.tuples(st.integers(1, 3), st.integers(0, 200)),  # (pid, vpn)
    max_size=150,
)


class TestTlbInvariants:
    @given(fill_list=fills)
    @settings(max_examples=150, deadline=None)
    def test_occupancy_bounded(self, fill_list):
        tlb = Tlb(TlbConfig("p", 16, 4, 1))
        for pid, vpn in fill_list:
            tlb.fill(pid, vpn, vpn + 1000)
        assert tlb.occupancy <= 16

    @given(fill_list=fills)
    @settings(max_examples=150, deadline=None)
    def test_hits_return_last_fill(self, fill_list):
        tlb = Tlb(TlbConfig("p", 1024, 4, 1))  # big enough: no evictions
        last = {}
        for pid, vpn in fill_list:
            ppn = len(last)
            tlb.fill(pid, vpn, ppn)
            last[(pid, vpn)] = ppn
        for (pid, vpn), ppn in last.items():
            assert tlb.lookup(pid, vpn) == ppn

    @given(fill_list=fills)
    @settings(max_examples=100, deadline=None)
    def test_flush_empties(self, fill_list):
        tlb = Tlb(TlbConfig("p", 16, 4, 1))
        for pid, vpn in fill_list:
            tlb.fill(pid, vpn, 0)
        tlb.flush()
        assert tlb.occupancy == 0
        for pid, vpn in fill_list:
            assert tlb.lookup(pid, vpn) is None

    @given(fill_list=fills)
    @settings(max_examples=100, deadline=None)
    def test_eviction_victims_were_resident(self, fill_list):
        tlb = Tlb(TlbConfig("p", 8, 2, 1))
        resident = set()
        for pid, vpn in fill_list:
            victim = tlb.fill(pid, vpn, 0)
            if victim is not None:
                assert victim in resident
                resident.discard(victim)
            resident.add((pid, vpn))


class TestPwcInvariants:
    @given(fill_list=st.lists(
        st.tuples(st.integers(1, 2), st.integers(0, 2**27), st.integers(0, 2)),
        max_size=100,
    ))
    @settings(max_examples=100, deadline=None)
    def test_deepest_hit_is_filled_level(self, fill_list):
        pwc = PageWalkCache(8)
        for pid, vpn, level in fill_list:
            pwc.fill(pid, vpn, level)
        for pid, vpn, level in fill_list[-3:]:
            hit = pwc.deepest_hit(pid, vpn)
            assert hit >= -1
