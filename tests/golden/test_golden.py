"""Golden regression tests: recompute the pinned matrix and diff it.

Each ``tests/golden/*.json`` pins the full RunMetrics (minus ``raw``) of
one small (scheme, workload, variant) run.  A failure here means the
model's behaviour drifted; the assertion message is the field-by-field
metrics diff.  After an *intentional* model change, regenerate with::

    PYTHONPATH=src python -m repro golden --update
"""

import json
from pathlib import Path

import pytest

from repro.check.golden import (
    compare_payloads,
    golden_filename,
    golden_matrix,
    load_golden,
    payload_digest,
    verify_golden,
)

GOLDEN_DIR = Path(__file__).parent


class TestGoldenMatrix:
    def test_every_matrix_entry_is_pinned(self):
        missing = [
            golden_filename(*triple)
            for triple in golden_matrix()
            if not (GOLDEN_DIR / golden_filename(*triple)).exists()
        ]
        assert not missing, (
            f"unpinned golden entries {missing}; run "
            f"`PYTHONPATH=src python -m repro golden --update`"
        )

    @pytest.mark.parametrize(
        "scheme,workload,variant", golden_matrix(),
        ids=lambda value: value if isinstance(value, str) else None,
    )
    def test_run_matches_golden(self, scheme, workload, variant):
        diffs = verify_golden(GOLDEN_DIR, scheme, workload, variant)
        assert not diffs, (
            f"golden drift in {scheme}/{workload}/{variant} "
            f"(if intentional, regenerate with "
            f"`PYTHONPATH=src python -m repro golden --update`):\n  "
            + "\n  ".join(diffs)
        )


class TestGoldenFiles:
    def test_digests_match_payloads(self):
        """Pinned digest must equal the digest of the pinned metrics —
        catches hand-edited golden files without running a simulation."""
        for triple in golden_matrix():
            document = load_golden(GOLDEN_DIR, *triple)
            assert document is not None
            assert document["digest"] == payload_digest(document["metrics"]), (
                f"{golden_filename(*triple)} was edited by hand"
            )

    def test_mismatch_reports_metric_diff_not_just_hash(self):
        document = load_golden(GOLDEN_DIR, "pageseer", "lbmx4", "default")
        tampered = dict(document["metrics"])
        tampered["swaps_total"] = tampered["swaps_total"] + 5
        tampered["ipc"] = tampered["ipc"] * 2
        diffs = compare_payloads(document["metrics"], tampered)
        assert len(diffs) == 2
        assert any("swaps_total" in d and "expected" in d for d in diffs)
        assert any("ipc" in d for d in diffs)

    def test_missing_golden_mentions_update_command(self, tmp_path):
        diffs = verify_golden(tmp_path, "pageseer", "lbmx4", "default")
        assert diffs and "golden --update" in diffs[0]

    def test_golden_files_record_their_sizing(self):
        for triple in golden_matrix():
            document = load_golden(GOLDEN_DIR, *triple)
            assert set(document["sizing"]) == {
                "scale", "measure_ops", "warmup_ops", "seed"
            }
