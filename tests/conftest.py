"""Shared fixtures: small, fast system configurations."""

from __future__ import annotations

import pytest

from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.sim.system import System, build_system
from repro.workloads import workload_by_name


@pytest.fixture
def stats():
    return StatsRegistry()


@pytest.fixture
def small_config():
    """A heavily scaled config: tiny memories, tiny tables, fast to build."""
    return default_system_config(scale=1024, cores=2)


@pytest.fixture
def tiny_system():
    """A 4-core PageSeer system on a small workload, ready to run."""
    return build_system("pageseer", workload_by_name("lbmx4"), scale=1024)


def make_system(scheme: str, workload: str = "lbmx4", scale: int = 1024) -> System:
    return build_system(scheme, workload_by_name(workload), scale=scale)
