"""The distributed sweep service, unchaosed: protocol + equivalence.

Contract under test (docs/SWEEP_SERVICE.md): ``repro sweep
--distributed`` is interchangeable with the serial runner — same cache
entries, bit-identical metrics — and the server's handlers are
idempotent enough that retried or duplicated RPCs cannot corrupt the
result set.
"""

import json
import threading

import pytest

from repro.check.golden import GOLDEN_SIZING
from repro.experiments.runner import _METRIC_FIELDS, ExperimentRunner
from repro.sweepd.fleet import run_distributed_sweep
from repro.sweepd.jobs import build_job
from repro.sweepd.protocol import RpcClient
from repro.sweepd.server import SweepdServer

REQUESTS = [
    ("pageseer", "lbmx4", "default"),
    ("pom", "lbmx4", "default"),
]


def _runner(tmp_path, **kwargs):
    kwargs.setdefault("scale", GOLDEN_SIZING["scale"])
    kwargs.setdefault("measure_ops", GOLDEN_SIZING["measure_ops"])
    kwargs.setdefault("warmup_ops", GOLDEN_SIZING["warmup_ops"])
    kwargs.setdefault("seed", GOLDEN_SIZING["seed"])
    kwargs.setdefault("worker_check_level", "off")
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    return ExperimentRunner(**kwargs)


def _payloads(results):
    return {
        "/".join(request): {
            name: getattr(metrics, name) for name in _METRIC_FIELDS
        }
        for request, metrics in results.items()
    }


def test_distributed_sweep_matches_serial_bit_for_bit(tmp_path):
    serial_runner = _runner(tmp_path / "serial")
    serial = {request: serial_runner.run(*request) for request in REQUESTS}

    dist_runner = _runner(tmp_path / "dist")
    results, report = run_distributed_sweep(
        dist_runner, list(REQUESTS), tmp_path / "dist" / "svc",
        workers=2, lease_seconds=5.0,
        checkpoint_every=300, heartbeat_seconds=0.1, timeout=120.0,
    )
    assert report.jobs_total == len(REQUESTS)
    assert report.quarantined == []
    assert _payloads(results) == _payloads(serial)


def test_resubmitted_sweep_is_served_entirely_from_cache(tmp_path):
    runner = _runner(tmp_path)
    run_distributed_sweep(
        runner, list(REQUESTS), tmp_path / "svc1",
        workers=2, lease_seconds=5.0,
        checkpoint_every=300, heartbeat_seconds=0.1, timeout=120.0,
    )
    # Fresh service root, same cache: every job is done on admission.
    results, report = run_distributed_sweep(
        runner, list(REQUESTS), tmp_path / "svc2",
        workers=1, lease_seconds=5.0,
        checkpoint_every=300, heartbeat_seconds=0.1, timeout=60.0,
    )
    assert report.jobs_already_done == len(REQUESTS)
    assert len(results) == len(REQUESTS)


class _ServerThread:
    """A live in-process server for protocol-level tests."""

    def __init__(self, tmp_path, **kwargs):
        self.server = SweepdServer(
            tmp_path / "svc", tmp_path / "cache", **kwargs
        )
        self.thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_seconds": 0.02},
            daemon=True,
        )

    def __enter__(self):
        self.thread.start()
        return self.server

    def __exit__(self, *exc_info):
        self.server.stop()
        self.thread.join(timeout=5.0)


@pytest.fixture
def live_server(tmp_path):
    with _ServerThread(tmp_path) as server:
        yield server


def _submit(rpc, jobs, priority="bulk"):
    return rpc.call({
        "type": "submit",
        "priority": priority,
        "jobs": [record.to_json() for record in jobs],
    })


def test_rpc_submit_is_idempotent(live_server, tmp_path):
    sizing = (1024, 400, 400, 0, "off")
    job = build_job(("pageseer", "lbmx4", "default"), sizing, None)
    with RpcClient(live_server.address) as rpc:
        first = _submit(rpc, [job])
        second = _submit(rpc, [job])
    assert len(first["new"]) == 1
    assert second["new"] == []
    assert second["known"] == first["new"]


def test_duplicate_result_rpc_is_discarded_not_restored(live_server, tmp_path):
    sizing = (1024, 400, 400, 0, "off")
    job = build_job(("pageseer", "lbmx4", "default"), sizing, None)
    payload = {name: 1.0 for name in _METRIC_FIELDS}
    with RpcClient(live_server.address) as rpc:
        _submit(rpc, [job])
        rpc.call({"type": "lease", "worker": "w0"})
        first = rpc.call({
            "type": "result", "worker": "w0",
            "job_id": job.job_id, "payload": payload,
        })
        # The ack was "lost"; the worker reports the same result again.
        second = rpc.call({
            "type": "result", "worker": "w0",
            "job_id": job.job_id, "payload": payload,
        })
        status = rpc.call({"type": "status"})
    assert first["verdict"] == "stored"
    assert second["verdict"] == "duplicate"
    assert status["counts"]["done"] == 1
    log_lines = [
        json.loads(line)
        for line in (tmp_path / "svc" / "aggregator.jsonl")
        .read_text().splitlines()
    ]
    assert [entry["verdict"] for entry in log_lines] == ["stored", "duplicate"]


def test_interactive_submission_preempts_queued_bulk_jobs(live_server):
    sizing = (1024, 400, 400, 0, "off")
    bulk = build_job(("pageseer", "lbmx4", "default"), sizing, None)
    hot = build_job(("pom", "lbmx4", "default"), sizing, None)
    with RpcClient(live_server.address) as rpc:
        _submit(rpc, [bulk], priority="bulk")
        _submit(rpc, [hot], priority="interactive")
        lease = rpc.call({"type": "lease", "worker": "w0"})
    assert lease["kind"] == "job"
    assert lease["job_id"] == hot.job_id


def test_unknown_message_type_gets_an_error_reply(live_server):
    with RpcClient(live_server.address) as rpc:
        reply = rpc.call({"type": "frobnicate"})
    assert reply["type"] == "error"
    assert "frobnicate" in reply["error"]
