"""Integration smoke tests: every scheme builds and runs end to end."""

import pytest

from repro.sim.system import SCHEMES, build_system
from repro.workloads import workload_by_name

MEASURE = 600
WARMUP = 400


def run(scheme, workload="lbmx4", scale=1024, seed=0, mutator=None):
    system = build_system(
        scheme, workload_by_name(workload), scale=scale, seed=seed,
        config_mutator=mutator,
    )
    return system.run(MEASURE, WARMUP)


class TestAllSchemesRun:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_runs_and_reports(self, scheme):
        metrics = run(scheme)
        assert metrics.scheme == scheme
        assert metrics.instructions > 0
        assert metrics.cycles > 0
        assert 0 < metrics.ipc < 4
        assert metrics.ammat > 0

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_shares_consistent(self, scheme):
        metrics = run(scheme)
        assert metrics.total_serviced > 0
        total = metrics.dram_share + metrics.nvm_share + metrics.buffer_share
        assert total == pytest.approx(1.0)
        classified = (
            metrics.positive_accesses
            + metrics.negative_accesses
            + metrics.neutral_accesses
        )
        assert classified == metrics.total_serviced

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_deterministic(self, scheme):
        a = run(scheme, seed=3)
        b = run(scheme, seed=3)
        assert a.ipc == b.ipc
        assert a.ammat == b.ammat
        assert a.swaps_total == b.swaps_total

    def test_seeds_differ(self):
        a = run("pageseer", workload="milcx4", seed=1)
        b = run("pageseer", workload="milcx4", seed=2)
        assert (a.ipc, a.ammat) != (b.ipc, b.ammat)


class TestWorkloadVariety:
    @pytest.mark.parametrize(
        "workload", ["milcx4", "mcfx8", "mix1", "streamx4"]
    )
    def test_pageseer_handles_workload(self, workload):
        metrics = run("pageseer", workload=workload)
        assert metrics.instructions > 0
        assert metrics.total_serviced > 0

    def test_mix_uses_all_cores(self):
        system = build_system("noswap", workload_by_name("mix1"), scale=1024)
        system.run_ops(200)
        for core in system.cores:
            assert core.ops_executed == 200

    def test_multi_instance_cores(self):
        system = build_system("noswap", workload_by_name("mcfx8"), scale=1024)
        assert len(system.cores) == 8


class TestNoSwapReference:
    def test_never_swaps(self):
        metrics = run("noswap")
        assert metrics.swaps_total == 0
        assert metrics.buffer_share == 0.0

    def test_all_accesses_neutral(self):
        metrics = run("noswap")
        assert metrics.positive_accesses == 0
        assert metrics.negative_accesses == 0


class TestContentionToggle:
    def test_no_contention_is_faster(self):
        def disable(config):
            import dataclasses
            return dataclasses.replace(config, model_contention=False)

        contended = run("pageseer", workload="milcx4")
        free = run("pageseer", workload="milcx4", mutator=disable)
        assert free.ammat <= contended.ammat
