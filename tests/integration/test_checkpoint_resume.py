"""End-to-end checkpoint/restore determinism and supervision tests.

The contract under test (docs/CHECKPOINTS.md): a run interrupted at any
point and restored — even in a *fresh process* — finishes with metrics
bit-identical to the uninterrupted run.  The 12 pinned goldens provide
the uninterrupted references; each is re-run with two interior cut
points (one during warm-up, one mid-measurement) and both cuts are
restored in a subprocess and driven to completion.

Also covered here: the CLI signal protocol (SIGINT/SIGTERM write one
final checkpoint and exit 75; a second signal force-quits), the fault
matrix's "worker SIGKILLed mid-run, resumed, digest identical" row, and
the sweep supervisor's watchdog + resume behaviour.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.check.golden import (
    GOLDEN_SIZING,
    golden_matrix,
    load_golden,
    metrics_payload,
    payload_digest,
)
from repro.common.config import CheckConfig, FaultConfig
from repro.experiments.runner import _METRIC_FIELDS, VARIANTS, ExperimentRunner
from repro.experiments.supervisor import SweepSupervisor
from repro.snapshot import Checkpointer, load_checkpoint
from repro.workloads import workload_by_name

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: Interior cut points, in scheduler steps.  At GOLDEN_SIZING (400+400
#: ops/core, 4 cores) a full run is 3200 steps and warm-up ends at 1600:
#: the first cut lands mid-warm-up, the second mid-measurement.
WARMUP_CUT = 500
MEASURE_CUT = 2000

_RESTORE_SCRIPT = """\
import sys
from repro.check.golden import metrics_payload, payload_digest
from repro.snapshot import load_checkpoint

for path in sys.argv[1:]:
    system = load_checkpoint(path)
    metrics = system.resume_run()
    print(payload_digest(metrics_payload(metrics)))
"""


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _golden_system(scheme, workload, variant):
    """The exact system run_golden_entry builds (sanitizer at full)."""
    from repro.sim.system import build_system

    def mutate(config):
        config = VARIANTS[variant](config)
        return dataclasses.replace(config, check=CheckConfig(level="full"))

    return build_system(
        scheme,
        workload_by_name(workload),
        scale=GOLDEN_SIZING["scale"],
        seed=GOLDEN_SIZING["seed"],
        config_mutator=mutate,
    )


def _metric_dict(metrics):
    return {name: getattr(metrics, name) for name in _METRIC_FIELDS}


def _wait_for(path: Path, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not path.exists():
        if time.monotonic() > deadline:
            raise AssertionError(f"{path} did not appear within {timeout}s")
        time.sleep(0.01)


# -- the cut-point matrix -----------------------------------------------------


@pytest.mark.parametrize("scheme,workload,variant", golden_matrix())
def test_fresh_process_restore_matches_golden(scheme, workload, variant, tmp_path):
    """Every golden, interrupted at two interior cuts and restored in a
    fresh interpreter, must reproduce its pinned digest bit-for-bit."""
    document = load_golden(GOLDEN_DIR, scheme, workload, variant)
    assert document is not None, "golden files missing; run `repro golden --update`"

    system = _golden_system(scheme, workload, variant)
    Checkpointer(tmp_path, cut_points=[WARMUP_CUT, MEASURE_CUT]).arm(system)
    metrics = system.run(GOLDEN_SIZING["measure_ops"], GOLDEN_SIZING["warmup_ops"])

    # Checkpointing itself must not perturb the simulation.
    assert payload_digest(metrics_payload(metrics)) == document["digest"]

    cuts = [tmp_path / f"cut_{WARMUP_CUT}.ckpt", tmp_path / f"cut_{MEASURE_CUT}.ckpt"]
    for cut in cuts:
        assert cut.exists()
    completed = subprocess.run(
        [sys.executable, "-c", _RESTORE_SCRIPT, *map(str, cuts)],
        capture_output=True, text=True, timeout=300,
        env=_subprocess_env(), cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, completed.stderr
    digests = completed.stdout.split()
    assert digests == [document["digest"]] * len(cuts), (
        f"restored run diverged from uninterrupted reference "
        f"({scheme}/{workload}/{variant}): {digests} "
        f"vs pinned {document['digest']}"
    )


# -- CLI signal protocol ------------------------------------------------------


def _launch_cli_run(checkpoint_dir: Path, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "run",
            "--scheme", "pageseer", "--workload", "lbmx4",
            "--scale", "1024", "--warmup-ops", "1000",
            "--measure-ops", "50000", "--checkpoint-every", "400",
            "--checkpoint-dir", str(checkpoint_dir), *extra,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_subprocess_env(), cwd=REPO_ROOT,
    )


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
def test_signal_writes_final_checkpoint_and_exit_75(tmp_path, signum):
    checkpoint_dir = tmp_path / "ck"
    process = _launch_cli_run(checkpoint_dir)
    _wait_for(checkpoint_dir / "latest.ckpt")
    process.send_signal(signum)
    _, stderr = process.communicate(timeout=60)
    assert process.returncode == 75, stderr
    assert f"interrupted by signal {int(signum)}" in stderr
    assert "resume with: python -m repro run --resume" in stderr
    assert (checkpoint_dir / "latest.ckpt").exists()

    # The advertised resume command completes the run cleanly.
    resumed = subprocess.run(
        [sys.executable, "-m", "repro", "run",
         "--resume", str(checkpoint_dir / "latest.ckpt")],
        capture_output=True, text=True, timeout=300,
        env=_subprocess_env(), cwd=REPO_ROOT,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "resuming pageseer on lbmx4" in resumed.stdout


def test_second_signal_force_quits(tmp_path):
    checkpoint_dir = tmp_path / "ck"
    process = _launch_cli_run(checkpoint_dir)
    _wait_for(checkpoint_dir / "latest.ckpt")
    # Two signals back-to-back: both are pending before the run loop can
    # finalize, so the second handler invocation must force-exit with the
    # conventional 128+signum status.
    process.send_signal(signal.SIGINT)
    process.send_signal(signal.SIGTERM)
    process.communicate(timeout=60)
    assert process.returncode == 128 + signal.SIGTERM


def test_resume_scheme_mismatch_is_rejected(tmp_path):
    system = _golden_system("pom", "lbmx4", "default")
    system.run_ops(50)
    from repro.snapshot import save_checkpoint

    path = save_checkpoint(system, tmp_path / "pom.ckpt")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "run",
         "--scheme", "pageseer", "--resume", str(path)],
        capture_output=True, text=True, timeout=120,
        env=_subprocess_env(), cwd=REPO_ROOT,
    )
    assert completed.returncode == 2
    assert "contradicts" in completed.stderr


# -- fault matrix: SIGKILL mid-run --------------------------------------------


_KILLABLE_SCRIPT = """\
import dataclasses, sys
from pathlib import Path
from repro.check.golden import GOLDEN_SIZING
from repro.common.config import CheckConfig
from repro.experiments.runner import VARIANTS
from repro.sim.system import build_system
from repro.snapshot import Checkpointer
from repro.workloads import workload_by_name

def mutate(config):
    config = VARIANTS["default"](config)
    return dataclasses.replace(config, check=CheckConfig(level="full"))

system = build_system(
    "pageseer", workload_by_name("lbmx4"),
    scale=GOLDEN_SIZING["scale"], seed=GOLDEN_SIZING["seed"],
    config_mutator=mutate,
)
Checkpointer(Path(sys.argv[1]), every_ops=200).arm(system)
system.run(GOLDEN_SIZING["measure_ops"], GOLDEN_SIZING["warmup_ops"])
"""


def test_sigkill_mid_run_resume_digest_identical(tmp_path):
    """The fault-matrix row: worker SIGKILLed mid-run, resumed from its
    last checkpoint, final digest identical to the uninterrupted run."""
    document = load_golden(GOLDEN_DIR, "pageseer", "lbmx4", "default")
    assert document is not None
    process = subprocess.Popen(
        [sys.executable, "-c", _KILLABLE_SCRIPT, str(tmp_path)],
        env=_subprocess_env(), cwd=REPO_ROOT,
    )
    _wait_for(tmp_path / "latest.ckpt")
    process.kill()  # SIGKILL: no handler, no final checkpoint, no cleanup
    process.wait(timeout=60)
    assert process.returncode == -signal.SIGKILL

    system = load_checkpoint(tmp_path / "latest.ckpt")
    metrics = system.resume_run()
    assert payload_digest(metrics_payload(metrics)) == document["digest"]


# -- supervised sweeps --------------------------------------------------------


def _runner(tmp_path, **kwargs):
    kwargs.setdefault("scale", GOLDEN_SIZING["scale"])
    kwargs.setdefault("measure_ops", GOLDEN_SIZING["measure_ops"])
    kwargs.setdefault("warmup_ops", GOLDEN_SIZING["warmup_ops"])
    kwargs.setdefault("seed", GOLDEN_SIZING["seed"])
    kwargs.setdefault("worker_check_level", "off")
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    return ExperimentRunner(**kwargs)


def test_watchdog_recovers_stalled_worker(tmp_path):
    """A worker wedged mid-run (no heartbeat) is killed and its relaunch
    resumes from the checkpoint — and the result is unaffected."""
    request = ("pageseer", "lbmx4", "default")
    faults = FaultConfig(
        enabled=True, worker_stall_rate=1.0, worker_stall_seconds=60.0
    )
    runner = _runner(tmp_path, faults=faults)
    supervisor = SweepSupervisor(
        runner, tmp_path / "sweep",
        checkpoint_every=300, heartbeat_seconds=0.1,
        stall_timeout=2.0, poll_seconds=0.05,
    )
    start = time.monotonic()
    results = supervisor.run([request], jobs=1)
    elapsed = time.monotonic() - start

    assert supervisor.kills >= 1, "watchdog never fired"
    assert supervisor.resumes.get(request, 0) >= 1, "retry did not resume"
    assert elapsed < 40.0, "watchdog waited out the stall instead of killing"

    # Stalls affect liveness only: metrics equal a plain unsupervised run.
    reference = _runner(
        tmp_path, cache_dir=tmp_path / "cache_ref"
    ).run(*request)
    assert _metric_dict(results[request]) == _metric_dict(reference)


def test_sweep_resume_skips_completed_requests(tmp_path):
    requests = [("pageseer", "lbmx4", "default"), ("mempod", "streamx4", "default")]
    root = tmp_path / "sweep"
    first = SweepSupervisor(
        _runner(tmp_path), root, heartbeat_seconds=0.1, poll_seconds=0.05
    ).run(requests, jobs=2)
    assert set(first) == set(requests)

    manifest = json.loads((root / "manifest.json").read_text())
    assert manifest["manifest_version"] == 1
    assert sorted(manifest["completed"]) == sorted(
        "/".join(request) for request in requests
    )

    # A fresh supervisor (fresh runner, same cache + manifest) resumes the
    # sweep without relaunching any worker for the completed requests.
    resumer = SweepSupervisor(
        _runner(tmp_path), root, heartbeat_seconds=0.1, poll_seconds=0.05
    )
    second = resumer.resume(jobs=2)
    assert resumer.attempts == {}, "completed requests were re-run"
    assert {
        request: _metric_dict(metrics) for request, metrics in second.items()
    } == {
        request: _metric_dict(metrics) for request, metrics in first.items()
    }


# -- the batched engine under the cut-point protocol ---------------------------


def test_batched_mid_batch_cuts_resume_bit_identical(tmp_path):
    """A checkpoint cut mid-batch under ``--engine batched`` must resume
    bit-identical — against the *scalar* engine's uninterrupted run.

    The cut points (500/2000 scheduler steps) land inside the batched
    engine's free-running drain windows, so this pins the engine's
    checkpoint contract: the poll boundary where the cut is taken is a
    real quiescent point (pending ops re-stashed, per-core state flushed),
    and the resumed half reproduces the scalar reference exactly.
    """
    from repro.bench import stats_digest
    from repro.sim.system import build_system

    def fresh(engine):
        return build_system(
            "pageseer",
            workload_by_name("lbmx4"),
            scale=GOLDEN_SIZING["scale"],
            seed=GOLDEN_SIZING["seed"],
            engine=engine,
        )

    reference = fresh("scalar")
    reference.run(GOLDEN_SIZING["measure_ops"], GOLDEN_SIZING["warmup_ops"])
    reference_digest = stats_digest(reference)

    victim = fresh("batched")
    Checkpointer(tmp_path, cut_points=[WARMUP_CUT, MEASURE_CUT]).arm(victim)
    victim.run(GOLDEN_SIZING["measure_ops"], GOLDEN_SIZING["warmup_ops"])
    assert stats_digest(victim) == reference_digest

    for cut in (WARMUP_CUT, MEASURE_CUT):
        path = tmp_path / f"cut_{cut}.ckpt"
        assert path.exists(), f"cut at step {cut} was not written"
        restored = load_checkpoint(path)
        assert restored.engine == "batched"
        restored.resume_run()
        assert stats_digest(restored) == reference_digest, (
            f"batched resume from step {cut} diverged from scalar reference"
        )


def test_chunked_stream_two_interior_cuts_resume_bit_identical(tmp_path):
    """Two interior cuts of a chunked-stream run resume bit-identical —
    against a *per-op*-stream scalar reference.

    The chunked stream buffers :class:`~repro.workloads.chunks.OpChunk`
    batches, so both cut points land mid-chunk with near certainty; the
    resumed stream must fast-forward through whole chunks and re-enter the
    final one at the recorded interior offset (REPRO-CKPT consumption
    accounting).  Comparing against ``stream="perop"`` additionally pins
    the stream-mode equivalence end to end at the system level, not just
    at the generator layer (tests/property/test_chunk_streams.py).
    """
    from repro.bench import stats_digest
    from repro.sim.system import build_system

    def fresh(stream_mode, engine):
        return build_system(
            "pageseer",
            workload_by_name("lbmx4"),
            scale=GOLDEN_SIZING["scale"],
            seed=GOLDEN_SIZING["seed"],
            config_mutator=lambda c: dataclasses.replace(c, stream=stream_mode),
            engine=engine,
        )

    reference = fresh("perop", "scalar")
    reference.run(GOLDEN_SIZING["measure_ops"], GOLDEN_SIZING["warmup_ops"])
    reference_digest = stats_digest(reference)

    victim = fresh("chunked", "batched")
    Checkpointer(tmp_path, cut_points=[WARMUP_CUT, MEASURE_CUT]).arm(victim)
    victim.run(GOLDEN_SIZING["measure_ops"], GOLDEN_SIZING["warmup_ops"])
    assert stats_digest(victim) == reference_digest, (
        "chunked-stream batched run diverged from per-op scalar reference"
    )

    for cut in (WARMUP_CUT, MEASURE_CUT):
        path = tmp_path / f"cut_{cut}.ckpt"
        assert path.exists(), f"interior cut at step {cut} was not written"
        restored = load_checkpoint(path)
        stream = restored.cores[0].ops
        assert stream.mode == "chunked", "stream mode must survive the cut"
        restored.resume_run()
        assert stats_digest(restored) == reference_digest, (
            f"chunked-stream resume from interior cut {cut} diverged"
        )


def test_numpy_array_state_round_trips_checkpoint(tmp_path):
    """RL006 snapshot safety for numpy-backed state (REPRO-CKPT v1).

    The system graph now carries numpy struct-of-arrays members (each
    process's :class:`repro.vm.mmu.DenseVpnCache`); the checkpoint store
    must round-trip them exactly — same dtype, same values, still
    *usable* (the resumed run keeps translating through the array)."""
    import numpy as np

    from repro.bench import stats_digest
    from repro.sim.system import build_system
    from repro.snapshot import save_checkpoint
    from repro.vm.mmu import DenseVpnCache

    system = build_system(
        "pageseer", workload_by_name("lbmx4"), scale=1024, seed=0
    )
    system.run_ops(300)
    table = system.cores[0].process.page_table
    cache = table._vpn_cache
    assert isinstance(cache, DenseVpnCache), (
        "the OS model should install the numpy-backed VPN cache"
    )
    assert len(cache) > 0, "warm-up must have populated the dense window"

    path = save_checkpoint(system, tmp_path / "numpy.ckpt")
    restored = load_checkpoint(path)
    restored_cache = restored.cores[0].process.page_table._vpn_cache
    assert isinstance(restored_cache, DenseVpnCache)
    assert restored_cache._ppns.dtype == np.int64
    assert np.array_equal(restored_cache._ppns, cache._ppns)
    assert restored_cache._overflow == cache._overflow
    assert restored_cache.base_vpn == cache.base_vpn

    # The restored array is live state, not a display copy: both halves
    # must keep running and agree bit-for-bit.
    system.run_ops(300)
    restored.run_ops(300)
    assert stats_digest(restored) == stats_digest(system)


def test_soa_timeline_round_trips_codec():
    """SoaBankedTimeline state survives the snapshot codec layer."""
    import numpy as np

    from repro.common.timeline import SoaBankedTimeline
    from repro.snapshot import codec

    soa = SoaBankedTimeline(6)
    soa.reserve(2, 10, 7)
    soa.reserve_all(20, 3)
    restored = codec.loads(codec.dumps(soa))
    assert np.array_equal(restored.busy_until, soa.busy_until)
    assert np.array_equal(restored.total_busy, soa.total_busy)
    assert restored.busy_until.dtype == np.int64
