"""Model validation: the simulator against closed-form expectations.

These tests pin the timing model to quantities that can be computed by
hand from Table I, so modelling regressions (double-charged latencies,
broken clock conversions, inverted priorities) surface as test failures
rather than silently skewed figures.
"""

import dataclasses

import pytest

from repro.baselines.static import all_dram_config, all_nvm_config
from repro.common.addr import LINES_PER_PAGE
from repro.common.config import (
    CYCLES_PER_MEMORY_CYCLE,
    default_system_config,
)
from repro.common.stats import StatsRegistry
from repro.mem.main_memory import MainMemory
from repro.sim.system import build_system
from repro.workloads import workload_by_name


class TestClosedFormLatencies:
    def test_dram_cold_read_latency(self):
        """A cold DRAM read = (tRCD + tCAS) * 2 + burst, exactly."""
        config = default_system_config(scale=1024)
        memory = MainMemory(config.memory, StatsRegistry(), model_contention=False)
        result = memory.access(0, 0, is_write=False)
        dram = config.memory.dram
        expected = (dram.t_rcd + dram.t_cas) * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == expected

    def test_nvm_cold_read_latency(self):
        config = default_system_config(scale=1024)
        memory = MainMemory(config.memory, StatsRegistry(), model_contention=False)
        dram_lines = config.memory.dram_pages * LINES_PER_PAGE
        result = memory.access(0, dram_lines, is_write=False)
        nvm = config.memory.nvm
        expected = (nvm.t_rcd + nvm.t_cas) * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == expected

    def test_nvm_dram_activation_gap(self):
        """The NVM/DRAM cold-read gap is exactly (58-11)*2 cycles."""
        config = default_system_config(scale=1024)
        memory = MainMemory(config.memory, StatsRegistry(), model_contention=False)
        dram_lines = config.memory.dram_pages * LINES_PER_PAGE
        dram_result = memory.access(0, 0, False)
        nvm_result = memory.access(0, dram_lines, False)
        gap = (nvm_result.finish - nvm_result.start) - (
            dram_result.finish - dram_result.start
        )
        assert gap == (58 - 11) * CYCLES_PER_MEMORY_CYCLE

    def test_page_transfer_bus_bound(self):
        """An uncontended DRAM page read is bus-bound: >= 64 lines / 4 ch."""
        config = default_system_config(scale=1024)
        memory = MainMemory(config.memory, StatsRegistry(), model_contention=False)
        finish = memory.read_page(0, 10)
        lines_per_channel = LINES_PER_PAGE // config.memory.dram.channels
        min_bus_cycles = lines_per_channel * config.memory.dram.line_transfer_cycles
        assert finish >= min_bus_cycles


class TestBoundingConfigurations:
    def run_with(self, mutator, workload="milcx4"):
        system = build_system(
            "noswap", workload_by_name(workload), scale=1024, config_mutator=mutator
        )
        return system.run(1500, 2000)

    def test_all_dram_bounds_hybrid_from_above(self):
        hybrid = self.run_with(None)
        ceiling = self.run_with(all_dram_config)
        assert ceiling.ipc >= hybrid.ipc
        assert ceiling.ammat <= hybrid.ammat

    def test_all_nvm_bounds_hybrid_from_below(self):
        # Use the bandwidth-bound stream: for cache-friendly workloads the
        # self-throttling queueing equilibrium can blur the bound slightly.
        hybrid = self.run_with(None, workload="lbmx4")
        floor = self.run_with(all_nvm_config, workload="lbmx4")
        assert floor.ipc <= hybrid.ipc * 1.02

    def test_pageseer_between_bounds(self):
        system = build_system("pageseer", workload_by_name("milcx4"), scale=1024)
        pageseer = system.run(1500, 2000)
        ceiling = self.run_with(all_dram_config)
        floor = self.run_with(all_nvm_config)
        assert floor.ipc * 0.9 <= pageseer.ipc <= ceiling.ipc * 1.1


class TestMonotonicity:
    def test_contention_increases_ammat(self):
        def free(config):
            return dataclasses.replace(config, model_contention=False)

        contended = build_system(
            "noswap", workload_by_name("lbmx4"), scale=1024
        ).run(1200, 1200)
        uncontended = build_system(
            "noswap", workload_by_name("lbmx4"), scale=1024, config_mutator=free
        ).run(1200, 1200)
        assert contended.ammat >= uncontended.ammat

    def test_slower_nvm_hurts(self):
        def much_slower(config):
            nvm = dataclasses.replace(config.memory.nvm, t_rcd=200, t_wr=400)
            return dataclasses.replace(
                config, memory=dataclasses.replace(config.memory, nvm=nvm)
            )

        base = build_system("noswap", workload_by_name("lbmx4"), scale=1024)
        slow = build_system(
            "noswap", workload_by_name("lbmx4"), scale=1024,
            config_mutator=much_slower,
        )
        assert slow.run(1200, 1200).ipc < base.run(1200, 1200).ipc

    def test_higher_mlp_raises_ipc(self):
        def more_mlp(config):
            return dataclasses.replace(
                config,
                core=dataclasses.replace(config.core, memory_level_parallelism=8.0),
            )

        base = build_system("noswap", workload_by_name("lbmx4"), scale=1024)
        wide = build_system(
            "noswap", workload_by_name("lbmx4"), scale=1024, config_mutator=more_mlp
        )
        assert wide.run(1200, 1200).ipc > base.run(1200, 1200).ipc


class TestAccountingConsistency:
    def test_serviced_counts_match_classification(self):
        system = build_system("pageseer", workload_by_name("lbmx4"), scale=1024)
        metrics = system.run(2000, 3000)
        classified = (
            metrics.positive_accesses
            + metrics.negative_accesses
            + metrics.neutral_accesses
        )
        assert classified == metrics.total_serviced

    def test_noswap_ammat_matches_device_latencies(self):
        """With no swaps, AMMAT must sit between pure DRAM and pure NVM hits."""
        system = build_system("noswap", workload_by_name("milcx4"), scale=1024)
        metrics = system.run(1500, 1500)
        dram = system.config.memory.dram
        nvm = system.config.memory.nvm
        floor = dram.t_cas * CYCLES_PER_MEMORY_CYCLE  # row-hit DRAM read
        ceiling = (
            (nvm.t_rp + nvm.t_rcd + nvm.t_cas + nvm.t_wr)
            * CYCLES_PER_MEMORY_CYCLE
            * 10  # generous queueing allowance
        )
        assert floor < metrics.ammat < ceiling
