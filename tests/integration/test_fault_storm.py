"""Integration: fault storms complete, check clean, and reproduce exactly.

The acceptance bar for the fault-injection subsystem (docs/FAULTS.md):

* a seeded fault storm runs to completion with the sanitizer at level
  "full" and zero violations;
* re-running the identical configuration reproduces every metric and
  every fault counter bit-for-bit;
* the sweep runner survives injected worker crashes and timeouts,
  returning a result for every request via retry and salvage.
"""

import dataclasses
import json
import warnings
from pathlib import Path

import pytest

from repro.common.config import CheckConfig, FaultConfig
from repro.common.errors import SweepError
from repro.experiments.runner import ExperimentRunner
from repro.faults import resolve_profile
from repro.sim.system import build_system
from repro.workloads import workload_by_name

SIZING = dict(scale=1024, seed=0)
OPS = dict(measure_ops=1500, warmup_ops=1500)


def run_storm(fault_seed, check_level="full"):
    faults = resolve_profile("storm", fault_seed=fault_seed)
    # Device faults only: the worker knobs belong to the sweep runner.
    faults = dataclasses.replace(
        faults, worker_crash_rate=0.0, worker_stall_rate=0.0,
        worker_stall_seconds=0.0,
    )
    system = build_system(
        "pageseer",
        workload_by_name("lbmx4"),
        check=CheckConfig(level=check_level),
        faults=faults,
        **SIZING,
    )
    metrics = system.run(**OPS)
    return system, metrics


class TestFaultStorm:
    def test_storm_completes_clean_at_check_full(self):
        system, metrics = run_storm(fault_seed=7)
        report = system.checker.report()
        assert report.violations == []
        assert report.sweeps > 0
        # The storm actually stormed: every fault family fired.
        assert metrics.faults_injected > 0
        assert metrics.fault_retries > 0
        assert metrics.degraded_services > 0
        assert metrics.quarantined_pages > 0
        # ...and the workload still made full progress.
        assert metrics.instructions > 0
        assert metrics.ipc > 0

    def test_storm_is_bit_for_bit_reproducible(self):
        _, first = run_storm(fault_seed=7)
        _, second = run_storm(fault_seed=7)
        assert first == second  # includes raw stats and fault counters

    def test_different_fault_seed_differs(self):
        _, first = run_storm(fault_seed=7)
        _, second = run_storm(fault_seed=8)
        assert first.raw != second.raw

    def test_faults_off_is_identical_to_no_fault_config(self):
        """Zero-cost-off: a disabled FaultConfig changes nothing at all."""
        base = build_system(
            "pageseer", workload_by_name("lbmx4"),
            check=CheckConfig(level="full"), **SIZING,
        ).run(**OPS)
        disabled = build_system(
            "pageseer", workload_by_name("lbmx4"),
            check=CheckConfig(level="full"),
            faults=FaultConfig(enabled=False), **SIZING,
        ).run(**OPS)
        assert base == disabled
        assert base.faults_injected == 0
        assert base.swap_aborts == 0


class TestSweepResilience:
    def make_runner(self, tmp_path, **overrides):
        settings = dict(
            scale=1024, measure_ops=300, warmup_ops=300,
            cache_dir=tmp_path / "cache", worker_check_level="off",
        )
        settings.update(overrides)
        return ExperimentRunner(**settings)

    def test_worker_crashes_are_retried_to_success(self, tmp_path):
        # crash rate 0.9: attempt-indexed RNG streams let retries pass.
        faults = FaultConfig(
            enabled=True, worker_crash_rate=0.9, fault_seed=5
        )
        runner = self.make_runner(tmp_path, faults=faults, max_attempts=25)
        requests = [
            ("noswap", "lbmx4", "default"),
            ("pageseer", "lbmx4", "default"),
        ]
        results = runner.run_many(requests, jobs=2)
        assert set(results) == set(requests)

    def test_serial_path_retries_and_reports_attempts(self, tmp_path):
        faults = FaultConfig(
            enabled=True, worker_crash_rate=1.0, fault_seed=5
        )
        runner = self.make_runner(tmp_path, faults=faults, max_attempts=3)
        with pytest.raises(SweepError) as info:
            runner.run_many([("noswap", "lbmx4", "default")], jobs=1)
        assert "failed on all 3 attempts, retries exhausted" in str(info.value)
        assert info.value.attempts[("noswap", "lbmx4", "default")] == 3

    def test_genuine_bugs_fail_fast_without_retry(self, tmp_path):
        runner = self.make_runner(tmp_path, max_attempts=5)
        with pytest.raises(SweepError) as info:
            runner.run_many([("pageseer", "no-such-workload", "default")],
                            jobs=1)
        assert "failed on first attempt, not retried" in str(info.value)

    def test_timeout_with_salvage_returns_every_result(self, tmp_path):
        # Every attempt stalls past the request timeout, so the parent
        # times each one out — but stalled workers are sleeping, not dead:
        # the first finishes after its stall and its result is salvaged.
        faults = FaultConfig(
            enabled=True, worker_stall_rate=1.0, worker_stall_seconds=3.0,
            fault_seed=5,
        )
        runner = self.make_runner(
            tmp_path, faults=faults, request_timeout=0.5, max_attempts=2,
        )
        requests = [("noswap", "lbmx4", "default")]
        results = runner.run_many(requests, jobs=2)
        assert set(results) == set(requests)

    def test_sweep_with_crash_and_timeout_completes(self, tmp_path):
        """The acceptance scenario: one crashy sweep, generous retries."""
        faults = FaultConfig(
            enabled=True, worker_crash_rate=0.5, worker_stall_rate=0.2,
            worker_stall_seconds=0.1, fault_seed=11,
        )
        runner = self.make_runner(
            tmp_path, faults=faults, request_timeout=60.0, max_attempts=20,
        )
        requests = [
            ("noswap", "lbmx4", "default"),
            ("noswap", "streamx4", "default"),
            ("pageseer", "lbmx4", "default"),
            ("pageseer", "streamx4", "default"),
        ]
        results = runner.run_many(requests, jobs=2)
        assert set(results) == set(requests)
        # A rerun is served entirely from the (atomically written) cache.
        fresh = self.make_runner(tmp_path, faults=faults)
        again = fresh.run_many(requests, jobs=1)
        assert again == results


class TestCacheRobustness:
    def make_runner(self, tmp_path):
        return ExperimentRunner(
            scale=1024, measure_ops=300, warmup_ops=300,
            cache_dir=tmp_path / "cache",
        )

    def test_store_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        runner = self.make_runner(tmp_path)
        runner.run("noswap", "lbmx4")
        entries = list((tmp_path / "cache").iterdir())
        assert len(entries) == 1
        assert entries[0].suffix == ".json"
        json.loads(entries[0].read_text())  # complete, parseable JSON

    def test_torn_cache_entry_warns_and_misses(self, tmp_path):
        runner = self.make_runner(tmp_path)
        metrics = runner.run("noswap", "lbmx4")
        key = runner._key("noswap", "lbmx4", "default")
        path = runner._cache_path(key)
        path.write_text('{"scheme": "noswap", "workl')  # torn mid-write
        fresh = self.make_runner(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            recomputed = fresh.run("noswap", "lbmx4")
        assert any("cache miss" in str(w.message) for w in caught)
        assert dataclasses.replace(recomputed, raw={}) == \
            dataclasses.replace(metrics, raw={})
        # The recomputation healed the cache entry.
        json.loads(path.read_text())

    def test_missing_fields_treated_as_schema_change(self, tmp_path):
        runner = self.make_runner(tmp_path)
        runner.run("noswap", "lbmx4")
        key = runner._key("noswap", "lbmx4", "default")
        path = runner._cache_path(key)
        payload = json.loads(path.read_text())
        del payload["faults_injected"]  # pretend an older schema wrote it
        path.write_text(json.dumps(payload))
        fresh = self.make_runner(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert fresh._load(key) is None
        assert any("cache miss" in str(w.message) for w in caught)

    def test_fault_config_fragments_the_cache_key(self, tmp_path):
        plain = self.make_runner(tmp_path)
        faulty = ExperimentRunner(
            scale=1024, measure_ops=300, warmup_ops=300,
            cache_dir=tmp_path / "cache",
            faults=FaultConfig(enabled=True, transient_rate=0.01),
        )
        assert plain._key("noswap", "lbmx4", "default") != \
            faulty._key("noswap", "lbmx4", "default")
        # Worker-only knobs do NOT fragment: results are attempt-invariant.
        crashy = ExperimentRunner(
            scale=1024, measure_ops=300, warmup_ops=300,
            cache_dir=tmp_path / "cache",
            faults=FaultConfig(
                enabled=True, transient_rate=0.01, worker_crash_rate=0.5,
            ),
        )
        assert faulty._key("noswap", "lbmx4", "default") == \
            crashy._key("noswap", "lbmx4", "default")
