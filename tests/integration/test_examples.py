"""The example scripts must run end to end (they are documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example(
            "quickstart.py",
            "--scale", "1024", "--measure-ops", "800", "--warmup-ops", "800",
        )
        assert result.returncode == 0, result.stderr
        assert "IPC" in result.stdout
        assert "swap buffers" in result.stdout

    def test_quickstart_other_workload(self):
        result = run_example(
            "quickstart.py",
            "--workload", "mix2",
            "--scale", "1024", "--measure-ops", "500", "--warmup-ops", "500",
        )
        assert result.returncode == 0, result.stderr
        assert "mix2" in result.stdout

    def test_compare_schemes(self):
        result = run_example(
            "compare_schemes.py",
            "--workloads", "milcx4",
            "--scale", "1024", "--measure-ops", "800", "--warmup-ops", "1200",
        )
        assert result.returncode == 0, result.stderr
        for scheme in ("noswap", "mempod", "pom", "pageseer"):
            assert scheme in result.stdout

    def test_hint_anatomy(self):
        result = run_example("hint_anatomy.py")
        assert result.returncode == 0, result.stderr
        assert "MMU-triggered prefetch swap started" in result.stdout
        assert "Step 5" in result.stdout

    def test_extensions_tour(self):
        result = run_example(
            "extensions_tour.py",
            "--scale", "1024", "--measure-ops", "600", "--warmup-ops", "800",
        )
        assert result.returncode == 0, result.stderr
        assert "CAMEO" in result.stdout or "cameo" in result.stdout
        assert "DMA freeze" in result.stdout
        assert "total structure area" in result.stdout

    def test_analysis_deep_dive(self):
        result = run_example(
            "analysis_deep_dive.py", "--scale", "1024", "--ops", "1500",
        )
        assert result.returncode == 0, result.stderr
        assert "Swap lead times" in result.stdout
        assert "AMMAT decomposition" in result.stdout

    def test_full_evaluation_quick(self, tmp_path):
        env_cache = tmp_path / "cache"
        import os

        result = subprocess.run(
            [
                sys.executable, str(EXAMPLES / "full_evaluation.py"),
                "--quick", "--scale", "1024",
                "--measure-ops", "600", "--warmup-ops", "900",
                "--out", str(tmp_path / "report.txt"),
            ],
            capture_output=True,
            text=True,
            timeout=900,
            env={**os.environ, "REPRO_CACHE_DIR": str(env_cache)},
        )
        assert result.returncode == 0, result.stderr
        report = (tmp_path / "report.txt").read_text()
        assert "Figure 14" in report
        assert "Table III" in report
