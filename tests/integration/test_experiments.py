"""Integration tests for the experiment runner and figure harness."""

import json

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments import (
    ablation_hints,
    ablation_nocorr,
    ablation_partial,
    fig7_access_breakdown,
    fig8_swap_effectiveness,
    fig9_prefetch_accuracy,
    fig10_swap_mix,
    fig11_swap_rate,
    fig12_pte_miss,
    fig13_prtc_wait,
    fig14_performance,
    tables,
)
from repro.experiments.figures import FigureResult, geometric_mean
from repro.experiments.report import compute_all, generate_report

WORKLOADS = ["lbmx4", "milcx4"]


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(
        scale=1024,
        measure_ops=1500,
        warmup_ops=2500,
        cache_dir=tmp_path_factory.mktemp("cache"),
        workloads=WORKLOADS,
    )


class TestRunnerCaching:
    def test_results_cached_on_disk(self, runner):
        runner.run("noswap", "lbmx4")
        files = list(runner.cache_dir.glob("*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["scheme"] == "noswap"

    def test_cache_hit_returns_equal_metrics(self, runner):
        first = runner.run("noswap", "lbmx4")
        second = runner.run("noswap", "lbmx4")
        assert first.ipc == second.ipc
        assert first.ammat == second.ammat

    def test_cache_survives_new_runner(self, runner):
        runner.run("noswap", "milcx4")
        fresh = ExperimentRunner(
            scale=runner.scale,
            measure_ops=runner.measure_ops,
            warmup_ops=runner.warmup_ops,
            cache_dir=runner.cache_dir,
            workloads=WORKLOADS,
        )
        cached = fresh.run("noswap", "milcx4")
        assert cached.scheme == "noswap"

    def test_variants_cached_separately(self, runner):
        default = runner.run("pageseer", "milcx4")
        nobw = runner.run("pageseer", "milcx4", variant="nobw")
        keys = {p.name for p in runner.cache_dir.glob("*pageseer_milcx4*")}
        assert len(keys) == 2

    def test_unknown_scheme_rejected(self, runner):
        with pytest.raises(Exception):
            runner.run("bogus", "lbmx4")

    def test_matrix_shape(self, runner):
        matrix = runner.run_matrix(["noswap"])
        assert set(matrix["noswap"]) == set(WORKLOADS)


class TestFigureComputations:
    @pytest.mark.parametrize(
        "module",
        [
            fig7_access_breakdown,
            fig8_swap_effectiveness,
            fig9_prefetch_accuracy,
            fig10_swap_mix,
            fig11_swap_rate,
            fig12_pte_miss,
            fig13_prtc_wait,
            fig14_performance,
            ablation_nocorr,
            ablation_hints,
            ablation_partial,
        ],
    )
    def test_compute_returns_wellformed_figure(self, runner, module):
        result = module.compute(runner)
        assert isinstance(result, FigureResult)
        assert result.rows
        for row in result.rows:
            assert len(row) == len(result.columns)
        rendered = result.render()
        assert result.figure_id in rendered

    def test_fig7_percentages_sum(self, runner):
        result = fig7_access_breakdown.compute(runner)
        for row in result.rows:
            if row[0] in ("SPEC CPU2006", "AVERAGE"):
                assert row[2] + row[3] + row[4] == pytest.approx(100.0, abs=0.1)

    def test_fig14_normalisation(self, runner):
        result = fig14_performance.compute(runner)
        row = result.row_map()["lbmx4"]
        matrix = runner.run_matrix(["pom", "mempod", "pageseer"])
        expected = matrix["pom"]["lbmx4"].ipc / matrix["mempod"]["lbmx4"].ipc
        assert row[1] == pytest.approx(expected)

    def test_fig13_reduction_definition(self, runner):
        result = fig13_prtc_wait.compute(runner)
        row = result.row_map()["lbmx4"]
        ps_wait, pom_wait, reduction = row[1], row[2], row[3]
        if pom_wait > 0:
            assert reduction == pytest.approx(100 * (1 - ps_wait / pom_wait))


class TestTables:
    def test_table1_reports_paper_values(self):
        result = tables.table1()
        rendered = result.render()
        assert "11-58-80" in rendered  # NVM tCAS-tRCD-tRAS
        assert "512 MB" in rendered

    def test_table2_reports_thresholds(self):
        rendered = tables.table2().render()
        assert "14" in rendered
        assert "4-way" in rendered

    def test_table3_lists_26_workloads(self):
        result = tables.table3(scale=512)
        assert len(result.rows) == 26

    def test_table3_consistency_check(self):
        assert tables.paper_table3_consistency()


class TestReport:
    def test_report_contains_all_sections(self, runner):
        report = generate_report(runner)
        for section in ("Table I", "Table II", "Table III", "Figure 7",
                        "Figure 14", "Section V-C"):
            assert section in report

    def test_compute_all_counts(self, runner):
        assert len(compute_all(runner)) == 14


class TestHelpers:
    def test_geomean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_geomean_ignores_nonpositive(self):
        assert geometric_mean([0, 4]) == pytest.approx(4.0)

    def test_geomean_empty(self):
        assert geometric_mean([]) == 0.0
