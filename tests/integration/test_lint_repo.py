"""The repository itself stays lint-clean, and violations are caught.

These run ``python -m repro lint`` as a subprocess — the same invocation
CI and developers use — so they cover the CLI wiring, the baseline file,
and the rule set end to end.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_repository_tip_is_lint_clean():
    result = run_lint()
    assert result.returncode == 0, result.stdout + result.stderr


def test_json_format_is_parseable_and_consistent():
    result = run_lint("--format", "json")
    assert result.returncode == 0, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["exit_code"] == 0
    assert document["failing"] == 0
    assert document["files_checked"] > 50


def test_baseline_entries_all_carry_justifications():
    document = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    # The baseline may legitimately be empty (every grandfathered finding
    # has been fixed); any entry that remains needs a real justification.
    assert document["version"] == 1
    for entry in document["findings"]:
        assert entry["comment"], f"baseline entry {entry['fingerprint']} needs a comment"
        assert "TODO" not in entry["comment"]


def test_repository_tip_is_program_clean():
    """`repro lint --program` is clean at repo tip (modulo baseline)."""
    result = run_lint("--program", "--no-cache", "--format", "json")
    assert result.returncode == 0, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["failing"] == 0
    # RL103's reachability proof ran: zero unsuppressed violations.
    assert not [
        f for f in document["findings"] if f["rule"] == "RL103"
    ], "checkpoint-reachability proof regressed"


def test_program_mode_dedupes_rl002_liveness():
    """The same liveness defect never reports under two rule ids."""
    result = run_lint("--program", "--no-cache", "--format", "json")
    document = json.loads(result.stdout)
    liveness_rules = {
        f["rule"] for f in document["findings"]
        if "recorded but never read" in f["message"]
        or "read but never recorded" in f["message"]
        or "read here but recorded nowhere" in f["message"]
    }
    assert "RL002" not in liveness_rules


def test_program_graph_dot_dump():
    result = run_lint("--program", "--no-cache", "--graph", "dot")
    assert result.returncode == 0, result.stdout + result.stderr
    assert result.stdout.startswith("digraph callgraph {")
    assert '"repro.sim.system:System.__init__"' in result.stdout


def test_program_cache_round_trip_is_stable(tmp_path):
    cache = tmp_path / "cache.json"
    cold = run_lint("--program", "--cache", str(cache), "--format", "json")
    warm = run_lint("--program", "--cache", str(cache), "--format", "json")
    assert cold.returncode == 0 and warm.returncode == 0
    assert json.loads(cold.stdout)["findings"] == json.loads(warm.stdout)["findings"]
    assert cache.exists()


def test_seeded_program_violation_fails_the_lint(tmp_path):
    producer = tmp_path / "sim" / "model.py"
    producer.parent.mkdir(parents=True)
    producer.write_text(
        "def tick(stats):\n"
        "    stats.add('sim/requests', 1)\n"
    )
    consumer = tmp_path / "report" / "figs.py"
    consumer.parent.mkdir(parents=True)
    consumer.write_text(
        "def table(stats):\n"
        "    return stats.get('sim/reqests')\n"
    )
    result = run_lint(
        "--program", "--no-cache", "--no-baseline", "--root", str(tmp_path),
        "sim", "report",
    )
    assert result.returncode == 1, result.stdout + result.stderr
    assert "RL101" in result.stdout
    assert 'did you mean "sim/requests"?' in result.stdout


def test_seeded_violations_fail_the_lint(tmp_path):
    bad = tmp_path / "sim" / "model.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import random\n"
        "def tick(stats, kind):\n"
        "    stats.add(f'hmc/req_{kind}')\n"
    )
    result = run_lint("--no-baseline", "--root", str(tmp_path), "sim")
    assert result.returncode == 1, result.stdout + result.stderr
    assert "RL001" in result.stdout
    assert "RL002" in result.stdout


def test_seeded_violation_report_in_json(tmp_path):
    bad = tmp_path / "mem" / "pool.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(now: Cycles, size: Bytes):\n    return now + size\n")
    result = run_lint(
        "--no-baseline", "--root", str(tmp_path), "--format", "json", "mem"
    )
    assert result.returncode == 1
    document = json.loads(result.stdout)
    assert [f["rule"] for f in document["findings"]] == ["RL004"]
