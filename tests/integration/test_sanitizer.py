"""Integration tests for the sanitizer over whole simulations.

Two halves of the acceptance story: every scheme completes a full small
run with zero violations, and a deliberately injected PRT corruption is
caught and reported with the violating page and frame.
"""

import pytest

from repro.common.config import CheckConfig
from repro.common.errors import CheckViolationError
from repro.sim.system import build_system
from repro.workloads import workload_by_name


def checked_system(scheme, level="full", interval=64, fail_fast=True):
    return build_system(
        scheme,
        workload_by_name("lbmx4"),
        scale=1024,
        check=CheckConfig(level=level, interval_ops=interval, fail_fast=fail_fast),
    )


class TestCleanRuns:
    @pytest.mark.parametrize("scheme", ["pageseer", "pom", "mempod"])
    def test_full_check_run_is_clean(self, scheme):
        system = checked_system(scheme)
        system.run(400, 400)
        report = system.checker.report()
        assert report.clean, [str(v) for v in report.violations]
        assert report.accesses_observed > 0
        assert report.sweeps > 0

    def test_pageseer_shadow_actually_exercised(self):
        """The oracle must have replayed swaps and checked accesses —
        a clean report with zero shadow activity would prove nothing."""
        system = checked_system("pageseer")
        system.run(400, 400)
        report = system.checker.report()
        assert report.shadow_accesses_checked > 0
        assert report.shadow_swaps_replayed > 0

    def test_invariants_level_skips_shadow(self):
        system = checked_system("pageseer", level="invariants")
        system.run(400, 400)
        report = system.checker.report()
        assert report.clean
        assert report.shadow_accesses_checked == 0


class TestInjectedCorruption:
    def _corrupt(self, system):
        """Plant a forward PRT entry with no inverse; returns (page, frame)."""
        prt = system.hmc.prt
        nvm = prt.dram_pages + prt.num_colours * 3 + 1
        frame = prt.dram_frames_of_colour(prt.colour_of(nvm))[0]
        prt._corrupt_for_test(nvm, frame)
        return nvm, frame

    def test_corruption_is_caught_and_located(self):
        system = checked_system("pageseer", interval=16)
        system.run_ops(400)
        page, frame = self._corrupt(system)
        with pytest.raises(CheckViolationError) as excinfo:
            system.run_ops(2000)
        text = str(excinfo.value)
        assert "prt-bijectivity" in text
        assert f"page={page}" in text
        assert f"frame={frame}" in text

    def test_collect_mode_raises_at_finalize(self):
        system = checked_system("pageseer", interval=16, fail_fast=False)
        system.run_ops(400)
        page, _frame = self._corrupt(system)
        with pytest.raises(CheckViolationError) as excinfo:
            system.run(400)
        assert any(v.page == page for v in excinfo.value.violations)
        # collect mode kept sweeping instead of dying on the first hit
        assert len(excinfo.value.violations) >= 1
        assert system.checker.sweeps > 1
