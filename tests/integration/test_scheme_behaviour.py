"""Integration tests of scheme-level behaviour (the paper's mechanisms)."""

import dataclasses
import functools

import pytest

from repro.sim.system import build_system
from repro.workloads import workload_by_name

# lbm at scale 1024 sweeps ~105 pages x 64 lines / 3 arrays ~= 6.7K ops per
# sweep; the warm-up must cover at least one full sweep so the PCT has
# history when measurement starts.
MEASURE = 5000
WARMUP = 9000


@functools.lru_cache(maxsize=None)
def _run_cached(scheme, workload, scale, overrides, measure, warmup):
    mutator = pageseer_mutator(**dict(overrides)) if overrides else None
    system = build_system(
        scheme, workload_by_name(workload), scale=scale, config_mutator=mutator
    )
    return system.run(measure, warmup)


def run(scheme, workload="lbmx4", scale=1024, measure=MEASURE, warmup=WARMUP,
        **overrides):
    return _run_cached(
        scheme, workload, scale, tuple(sorted(overrides.items())), measure, warmup
    )


def pageseer_mutator(**overrides):
    def mutate(config):
        return dataclasses.replace(
            config, pageseer=dataclasses.replace(config.pageseer, **overrides)
        )
    return mutate


class TestPageSeerMechanisms:
    def test_streaming_generates_mmu_swaps(self):
        metrics = run("pageseer")
        assert metrics.swaps_mmu > 0

    def test_mmu_swaps_dominate_prefetches_on_streams(self):
        metrics = run("pageseer")
        assert metrics.swaps_mmu >= metrics.swaps_pct

    def test_prefetch_accuracy_high_on_stable_streams(self):
        metrics = run("pageseer")
        assert metrics.prefetch_accuracy > 0.5

    def test_pointer_chase_starves_prefetch_swaps(self):
        metrics = run("pageseer", workload="mcfx8", measure=1000, warmup=1200)
        assert metrics.prefetch_swaps <= metrics.swaps_total
        assert metrics.swaps_mmu < 10

    def test_buffer_services_present_on_streams(self):
        metrics = run("pageseer")
        assert metrics.serviced_buffer > 0

    def test_mmu_driver_hit_rate_high(self):
        metrics = run("pageseer")
        assert metrics.mmu_driver_hit_rate > 0.9

    def test_negative_accesses_bounded(self):
        metrics = run("pageseer")
        assert metrics.negative_share < 0.3


class TestAblations:
    def test_nohints_kills_mmu_swaps(self):
        metrics = run("pageseer", mmu_hints_enabled=False)
        assert metrics.swaps_mmu == 0

    def test_nohints_keeps_other_swaps(self):
        metrics = run("pageseer", mmu_hints_enabled=False)
        assert metrics.swaps_total > 0

    def test_nobw_swaps_at_least_as_many(self):
        default = run("pageseer", workload="milcx4")
        nobw = run(
            "pageseer", workload="milcx4", bandwidth_heuristic_enabled=False
        )
        assert nobw.swaps_total >= default.swaps_total

    def test_nocorr_runs_clean(self):
        metrics = run("pageseer", correlation_enabled=False)
        assert metrics.instructions > 0


class TestBaselineMechanisms:
    def test_pom_swaps_on_streams(self):
        metrics = run("pom")
        assert metrics.swaps_total > 0
        assert metrics.swaps_mmu == 0

    def test_mempod_migrates_on_hot_sets(self):
        metrics = run("mempod", workload="milcx4")
        assert metrics.swaps_total > 0

    def test_mempod_interval_bounded_migrations(self):
        """Migrations happen in interval bursts, bounded per interval."""
        system = build_system("mempod", workload_by_name("milcx4"), scale=1024)
        metrics = system.run(MEASURE, WARMUP)
        intervals = max(
            1.0,
            (metrics.cycles * 2) / system.config.mempod.interval_cycles,
        )
        per_interval_cap = (
            system.hmc.migrations_per_interval * len(system.hmc._pods)
        )
        assert metrics.swaps_total <= intervals * per_interval_cap * 2


class TestHeadlineShape:
    """The paper's core comparison, on one representative workload each."""

    def test_pageseer_highest_dram_share_on_streams(self):
        shares = {
            scheme: run(scheme).dram_share + run(scheme).buffer_share
            for scheme in ("pageseer", "pom", "mempod")
        }
        assert shares["pageseer"] >= shares["mempod"]

    def test_pageseer_beats_mempod_ipc_on_streams(self):
        assert run("pageseer").ipc > run("mempod").ipc

    def test_pageseer_lowest_ammat_on_hot_cold(self):
        ammat = {
            scheme: run(scheme, workload="milcx4").ammat
            for scheme in ("pageseer", "pom", "mempod", "noswap")
        }
        assert ammat["pageseer"] < ammat["noswap"]

    def test_swapping_beats_noswap_on_hot_cold(self):
        assert run("pageseer", workload="milcx4").ipc > run(
            "noswap", workload="milcx4"
        ).ipc
