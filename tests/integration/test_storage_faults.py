"""Crash-consistency matrix: persistence sites × storage-fault classes.

The invariants, asserted for every profile (ENOSPC, EIO/fsync, torn
writes, bit-rot, and the combined storm):

* storage faults perturb *durability*, never *results* — a faulted run
  finishes with metrics identical to a clean run;
* a resumed job whose ``latest.ckpt`` silently rotted falls back to a
  preserved generation and still lands the clean-run metrics;
* a supervised sweep under an inherited environment storm loses no
  acknowledged result;
* ``repro fsck --repair`` leaves every faulted directory clean — and a
  rescan agrees.
"""

import pytest

from repro import persist
from repro.check.golden import GOLDEN_SIZING
from repro.experiments.jobcore import execute_job
from repro.experiments.runner import _METRIC_FIELDS, ExperimentRunner
from repro.experiments.supervisor import SweepSupervisor
from repro.faults.storage import (
    STORAGE_FAULTS_ENV,
    StorageFaultInjector,
    resolve_storage_profile,
)
from repro.fsck import run_fsck
from repro.snapshot.checkpoint import LATEST_NAME, generation_files

REQUEST = ("pageseer", "lbmx4", "default")
SIZING = (
    GOLDEN_SIZING["scale"],
    GOLDEN_SIZING["measure_ops"],
    GOLDEN_SIZING["warmup_ops"],
    GOLDEN_SIZING["seed"],
    "off",
)
CHECKPOINT_EVERY = 100  # small, so every profile gets many persist writes

PROFILES = ["enospc", "eio", "torn", "bitrot", "storm"]


@pytest.fixture(autouse=True)
def _disarmed():
    persist.install_storage_faults(None)
    yield
    persist.install_storage_faults(None)


def _run_job(directory):
    return execute_job(
        REQUEST, SIZING, None, 0, directory,
        checkpoint_every=CHECKPOINT_EVERY, heartbeat_seconds=60.0,
    )


def _metrics(payload):
    return {name: payload[name] for name in _METRIC_FIELDS}


@pytest.fixture(scope="module")
def clean_payload(tmp_path_factory):
    return _run_job(tmp_path_factory.mktemp("clean") / "job")


class TestJobUnderEveryProfile:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_faulted_job_lands_clean_metrics(self, profile, tmp_path,
                                             clean_payload):
        injector = StorageFaultInjector(
            resolve_storage_profile(profile, storage_seed=7)
        )
        persist.install_storage_faults(injector)
        try:
            payload = _run_job(tmp_path / "job")
        finally:
            persist.install_storage_faults(None)
        assert injector.injected, (
            f"profile {profile} never fired — the run exercised nothing"
        )
        assert _metrics(payload) == _metrics(clean_payload)

    @pytest.mark.parametrize("profile", PROFILES)
    def test_fsck_repair_converges_after_the_storm(self, profile, tmp_path,
                                                   clean_payload):
        directory = tmp_path / "job"
        injector = StorageFaultInjector(
            resolve_storage_profile(profile, storage_seed=7)
        )
        persist.install_storage_faults(injector)
        try:
            _run_job(directory)
        finally:
            persist.install_storage_faults(None)
        # Whatever silent damage the profile left behind, one repair pass
        # quarantines/promotes it and a rescan finds nothing wrong.
        run_fsck([directory], repair=True)
        findings, exit_code = run_fsck([directory])
        assert exit_code == 0
        assert all(f.status in ("ok", "legacy") for f in findings)


class TestGenerationFallbackResume:
    def test_rotted_latest_resumes_from_generation(self, tmp_path,
                                                   clean_payload):
        directory = tmp_path / "job"
        _run_job(directory)
        generations = generation_files(directory)
        assert generations, "the checkpointer kept no generations"
        # Silently rot the newest checkpoint, as a lying disk would.
        latest = directory / LATEST_NAME
        raw = bytearray(latest.read_bytes())
        raw[-20] ^= 0x40
        latest.write_bytes(bytes(raw))
        payload = _run_job(directory)
        assert payload["resumed_at_ops"] > 0
        assert _metrics(payload) == _metrics(clean_payload)

    def test_everything_rotted_restarts_and_still_agrees(self, tmp_path,
                                                         clean_payload):
        directory = tmp_path / "job"
        _run_job(directory)
        for path in [directory / LATEST_NAME] + generation_files(directory):
            path.write_bytes(b"REPRO-CKPT rot")
        payload = _run_job(directory)
        assert payload["resumed_at_ops"] == 0  # fresh build, not a crash
        assert _metrics(payload) == _metrics(clean_payload)


class TestSupervisedSweepUnderStorm:
    REQUESTS = [
        ("pageseer", "lbmx4", "default"),
        ("pom", "lbmx4", "default"),
    ]

    def _runner(self, cache_dir):
        return ExperimentRunner(
            scale=GOLDEN_SIZING["scale"],
            measure_ops=GOLDEN_SIZING["measure_ops"],
            warmup_ops=GOLDEN_SIZING["warmup_ops"],
            seed=GOLDEN_SIZING["seed"],
            worker_check_level="off",
            cache_dir=cache_dir,
        )

    def test_no_acknowledged_result_lost(self, tmp_path, monkeypatch):
        reference = {
            request: self._runner(tmp_path / "cache_ref").run(*request)
            for request in self.REQUESTS
        }
        # Arm through the environment: forked sweep workers inherit it,
        # which is exactly how `repro sweep --storage-faults storm` storms
        # every process.
        monkeypatch.setenv(STORAGE_FAULTS_ENV, "storm:3")
        persist.reset_storage_faults()
        root = tmp_path / "sweep"
        try:
            supervisor = SweepSupervisor(
                self._runner(tmp_path / "cache"), root,
                checkpoint_every=200, heartbeat_seconds=0.1,
                poll_seconds=0.05,
            )
            results = supervisor.run(list(self.REQUESTS), jobs=2)
        finally:
            monkeypatch.delenv(STORAGE_FAULTS_ENV, raising=False)
            persist.install_storage_faults(None)
        assert set(results) == set(self.REQUESTS), "a sweep result was lost"
        for request in self.REQUESTS:
            assert {
                name: getattr(results[request], name)
                for name in _METRIC_FIELDS
            } == {
                name: getattr(reference[request], name)
                for name in _METRIC_FIELDS
            }
        # The storm may have left silent damage on disk; repair converges.
        run_fsck([root], repair=True)
        _, exit_code = run_fsck([root])
        assert exit_code == 0
