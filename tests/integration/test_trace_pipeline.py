"""Integration: trace round trips reproduce generator-driven runs exactly."""

import pytest

from repro.common.config import default_system_config
from repro.sim.system import System, build_system
from repro.workloads import workload_by_name
from repro.workloads.trace import record_trace, trace_workload

OPS = 600


class TestTraceEquivalence:
    @pytest.mark.parametrize("scheme", ["noswap", "pageseer"])
    def test_replay_matches_generator_run(self, scheme, tmp_path):
        """A run over recorded traces is bit-identical to the source run.

        This is the strongest end-to-end determinism statement the
        simulator makes: the op stream fully determines the outcome.
        """
        source_spec = workload_by_name("milcx4")

        paths = []
        for core in range(source_spec.cores):
            path = tmp_path / f"core{core}.trace"
            # Record enough ops to cover warm-up plus measurement.
            record_trace(source_spec, core, 2 * OPS + 100, path, scale=1024)
            paths.append(path)
        traced_spec = trace_workload("replay", paths)

        source = build_system(scheme, source_spec, scale=1024)
        source_metrics = source.run(OPS, OPS)

        config = default_system_config(scale=1024, cores=traced_spec.cores)
        replay = System(config, scheme, traced_spec, 1024)
        replay_metrics = replay.run(OPS, OPS)

        assert replay_metrics.ipc == source_metrics.ipc
        assert replay_metrics.ammat == source_metrics.ammat
        assert replay_metrics.swaps_total == source_metrics.swaps_total
        assert replay_metrics.serviced_dram == source_metrics.serviced_dram
        assert replay_metrics.tlb_misses == source_metrics.tlb_misses

    def test_trace_cores_can_differ_from_source(self, tmp_path):
        """Any subset of recorded cores forms a valid (smaller) workload."""
        source_spec = workload_by_name("milcx4")
        path = tmp_path / "solo.trace"
        record_trace(source_spec, 0, 800, path, scale=1024)
        solo = trace_workload("solo", [path])
        config = default_system_config(scale=1024, cores=1)
        system = System(config, "pageseer", solo, 1024)
        metrics = system.run(300, 300)
        assert metrics.instructions > 0
