"""Chaos matrix for the distributed sweep service (satellite of the
sweep-service PR).

Each scenario injects a different failure — lossy/duplicating/reordering
transport, a SIGKILLed worker mid-simulation, a SIGKILLed-and-relaunched
server mid-sweep, and all of them at once — and asserts the same
invariants every time:

* the aggregated result set is bit-identical to a serial run,
* zero results are lost (every request resolves),
* zero results are duplicated (at most one ``stored`` aggregator-log
  entry per job, never a ``divergent`` one).
"""

import json

import pytest

from repro.check.golden import GOLDEN_SIZING
from repro.experiments.runner import _METRIC_FIELDS, ExperimentRunner
from repro.faults.chaos import ChaosConfig, FleetChaos
from repro.sweepd.aggregator import AGGREGATOR_LOG
from repro.sweepd.fleet import run_distributed_sweep

REQUESTS = [
    ("pageseer", "lbmx4", "default"),
    ("pageseer", "milcx4", "default"),
    ("pom", "lbmx4", "default"),
]

MESSAGE_CHAOS = ChaosConfig(
    enabled=True,
    chaos_seed=7,
    drop_rate=0.08,
    duplicate_rate=0.08,
    reorder_rate=0.1,
)


def _runner(cache_dir):
    return ExperimentRunner(
        scale=GOLDEN_SIZING["scale"],
        measure_ops=GOLDEN_SIZING["measure_ops"],
        warmup_ops=GOLDEN_SIZING["warmup_ops"],
        seed=GOLDEN_SIZING["seed"],
        worker_check_level="off",
        cache_dir=cache_dir,
    )


def _payloads(results):
    return {
        "/".join(request): {
            name: getattr(metrics, name) for name in _METRIC_FIELDS
        }
        for request, metrics in results.items()
    }


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    runner = _runner(tmp_path_factory.mktemp("serial") / "cache")
    return _payloads(
        {request: runner.run(*request) for request in REQUESTS}
    )


def _chaotic_sweep(tmp_path, *, chaos=None, fleet_chaos=None, workers=2):
    root = tmp_path / "svc"
    results, report = run_distributed_sweep(
        _runner(tmp_path / "cache"), list(REQUESTS), root,
        workers=workers,
        chaos=chaos,
        fleet_chaos=fleet_chaos,
        lease_seconds=2.0,
        checkpoint_every=200,
        heartbeat_seconds=0.05,
        timeout=180.0,
    )
    return results, report, root


def _aggregator_entries(root):
    return [
        json.loads(line)
        for line in (root / AGGREGATOR_LOG).read_text().splitlines()
    ]


def _assert_exactly_once(root, *, allow_missing_stored=False):
    """No job may be stored twice or diverge; normally each is stored once.

    ``allow_missing_stored`` covers server-SIGKILL scenarios, where the
    kill can land between the atomic cache write and the log append —
    the result still counts exactly once (the restarted server adopts it
    from the cache), it just has no ``stored`` line.
    """
    stored = {}
    for entry in _aggregator_entries(root):
        assert entry["verdict"] != "divergent", entry
        if entry["verdict"] == "stored":
            stored[entry["job_id"]] = stored.get(entry["job_id"], 0) + 1
    assert all(count == 1 for count in stored.values()), stored
    if not allow_missing_stored:
        assert len(stored) == len(REQUESTS), stored


def test_lossy_duplicating_reordering_transport(tmp_path, serial_reference):
    results, report, root = _chaotic_sweep(tmp_path, chaos=MESSAGE_CHAOS)
    assert _payloads(results) == serial_reference
    assert report.quarantined == []
    _assert_exactly_once(root)


def test_worker_sigkilled_mid_job_is_reclaimed(tmp_path, serial_reference):
    results, report, root = _chaotic_sweep(
        tmp_path,
        fleet_chaos=FleetChaos(kill_worker_mid_job={0: 200}),
    )
    assert _payloads(results) == serial_reference
    assert report.chaos_worker_kills == 1
    assert report.worker_relaunches >= 1
    assert report.quarantined == []
    _assert_exactly_once(root)


def test_server_sigkilled_and_restarted_mid_sweep(tmp_path, serial_reference):
    results, report, root = _chaotic_sweep(
        tmp_path,
        fleet_chaos=FleetChaos(restart_server_after_results=1),
    )
    assert _payloads(results) == serial_reference
    assert report.chaos_server_restarts == 1
    assert report.quarantined == []
    _assert_exactly_once(root, allow_missing_stored=True)


def test_full_chaos_matrix(tmp_path, serial_reference):
    """Everything at once: lossy transport, a worker SIGKILL, and a
    server SIGKILL+restart in the same sweep."""
    results, report, root = _chaotic_sweep(
        tmp_path,
        chaos=MESSAGE_CHAOS,
        fleet_chaos=FleetChaos(
            kill_worker_mid_job={0: 200},
            restart_server_after_results=1,
        ),
    )
    assert _payloads(results) == serial_reference
    assert report.chaos_worker_kills == 1
    assert report.chaos_server_restarts == 1
    assert report.quarantined == []
    _assert_exactly_once(root, allow_missing_stored=True)


def test_poison_job_is_quarantined_not_retried_forever(tmp_path):
    """A job that always crashes must land in quarantine after
    max_attempts instead of looping forever, and the sweep must still
    drain and name the poison request."""
    from repro.common.config import FaultConfig
    from repro.common.errors import SweepError

    runner = _runner(tmp_path / "cache")
    runner.faults = FaultConfig(enabled=True, worker_crash_rate=1.0)
    with pytest.raises(SweepError) as excinfo:
        run_distributed_sweep(
            runner, [REQUESTS[0]], tmp_path / "svc",
            workers=1,
            lease_seconds=2.0,
            checkpoint_every=200,
            heartbeat_seconds=0.05,
            timeout=120.0,
        )
    assert excinfo.value.failures
    assert "/".join(REQUESTS[0]) in str(excinfo.value)
