"""Determinism guarantees the golden harness depends on.

Goldens pin exact metric values, so the simulator must be reproducible:
the same seed must give byte-identical results run to run, the sanitizer
must not perturb the simulation it observes, and the parallel sweep path
must agree with the serial one.
"""

import dataclasses

from repro.common.config import CheckConfig
from repro.experiments.runner import ExperimentRunner, _METRIC_FIELDS
from repro.sim.system import build_system
from repro.workloads import workload_by_name


def run_once(scheme="pageseer", seed=0, check=None):
    system = build_system(
        scheme, workload_by_name("lbmx4"), scale=1024, seed=seed, check=check
    )
    return system.run(400, 400)


class TestSeedDeterminism:
    def test_same_seed_is_byte_identical(self):
        a = run_once()
        b = run_once()
        # Full equality including ``raw`` — every counter, not just the
        # headline numbers.
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_different_seed_differs(self):
        a = run_once(seed=0)
        b = run_once(seed=1)
        assert dataclasses.asdict(a) != dataclasses.asdict(b)

    def test_sanitizer_does_not_perturb_metrics(self):
        """Checkers are pure observers: full checking must leave every
        metric — including raw counters — exactly as an unchecked run."""
        plain = run_once()
        checked = run_once(check=CheckConfig(level="full", interval_ops=64))
        assert dataclasses.asdict(plain) == dataclasses.asdict(checked)


class TestSweepDeterminism:
    def test_serial_and_parallel_sweeps_agree(self, tmp_path):
        """run_many(jobs=1) and run_many(jobs=2) must produce identical
        metrics from separate caches (the pool path also runs the
        sanitizer at level full, so this doubles as an end-to-end
        metrics-neutrality proof)."""
        requests = [
            ("pageseer", "lbmx4", "default"),
            ("pom", "lbmx4", "default"),
        ]
        serial = ExperimentRunner(
            scale=1024, measure_ops=300, warmup_ops=300,
            cache_dir=tmp_path / "serial",
        ).run_many(requests, jobs=1)
        parallel = ExperimentRunner(
            scale=1024, measure_ops=300, warmup_ops=300,
            cache_dir=tmp_path / "parallel",
        ).run_many(requests, jobs=2)
        assert set(serial) == set(parallel) == set(requests)
        for request in requests:
            for name in _METRIC_FIELDS:
                assert getattr(serial[request], name) == getattr(
                    parallel[request], name
                ), f"{'/'.join(request)} diverges on {name}"
