"""The differential harness proving the batched engine scalar-equivalent.

The batched engine (``repro.sim.engine``) drains independent operations
per core between shared events; its equivalence contract says the result
is *bit-identical* to the scalar reference scheduler, not statistically
close.  This suite is the proof obligation:

* every scheme × representative workload runs under both engines and must
  produce identical stats snapshots (the full dict, not just a digest),
  identical per-core end states, and the identical *sequence* of swap
  transfers (page/segment moves with their timestamps and directions);
* a hypothesis harness samples configurations — scheme, workload, seed,
  ablation variant, and the chunking of ``run_ops`` calls — and compares
  the two engines op-for-op at every chunk boundary, so a divergence is
  pinned to the first chunk it appears in rather than the end of a run.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import stats_digest
from repro.experiments.runner import VARIANTS
from repro.faults import resolve_profile
from repro.sim.system import SCHEMES, build_system
from repro.workloads import workload_by_name

ALL_SCHEMES = sorted(SCHEMES)

#: Representative coverage: a pointer-chasing, a streaming, and a
#: hot/cold workload — together they exercise swaps, write-backs, page
#: walks, and every hit class on all five schemes.
WORKLOADS = ["lbmx4", "streamx4", "milcx4"]


def _record_swap_events(system):
    """Instrument the memory so every swap transfer lands in a list.

    All swap machinery (PageSeer's swap driver, PoM/MemPod fast swaps,
    CAMEO line swaps) moves data through ``MainMemory.read_page`` /
    ``write_page`` / ``transfer_segment``; demand traffic does not.
    Wrapping the instance methods therefore captures the complete swap
    event sequence without touching scheme internals.
    """
    events = []
    memory = system.hmc.memory
    for name in ("read_page", "write_page", "transfer_segment"):
        original = getattr(memory, name)

        def wrapper(*args, _name=name, _original=original, **kwargs):
            events.append((_name, args, tuple(sorted(kwargs.items()))))
            return _original(*args, **kwargs)

        setattr(memory, name, wrapper)
    return events


def _run(scheme, workload_name, engine, *, ops=1200, seed=0, scale=1024,
         variant="default", chunks=None, config_mutator=None, faults=None):
    system = build_system(
        scheme,
        workload_by_name(workload_name),
        scale=scale,
        seed=seed,
        config_mutator=config_mutator or VARIANTS[variant],
        faults=faults,
        engine=engine,
    )
    events = _record_swap_events(system)
    checkpoints = []
    remaining = list(chunks) if chunks else [ops]
    for chunk in remaining:
        system.run_ops(chunk)
        checkpoints.append(_core_state(system))
    return {
        "stats": system.stats.as_dict(),
        "digest": stats_digest(system),
        "cores": _core_state(system),
        "checkpoints": checkpoints,
        "events": events,
    }


def _core_state(system):
    return [
        (core.core_id, core.clock, core.instructions, core.ops_executed)
        for core in system.cores
    ]


class TestEngineEquivalence:
    """Scalar vs batched on the full scheme grid."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_identical_stats_cores_and_swap_sequence(self, scheme, workload):
        scalar = _run(scheme, workload, "scalar")
        batched = _run(scheme, workload, "batched")
        assert scalar["digest"] == batched["digest"]
        assert scalar["stats"] == batched["stats"]
        assert scalar["cores"] == batched["cores"]
        assert scalar["events"] == batched["events"]

    @pytest.mark.parametrize("scheme", ["pageseer", "pom"])
    def test_equivalence_survives_ablation_variants(self, scheme):
        for variant in sorted(VARIANTS):
            scalar = _run(scheme, "milcx4", "scalar", ops=800,
                          variant=variant)
            batched = _run(scheme, "milcx4", "batched", ops=800,
                           variant=variant)
            assert scalar["digest"] == batched["digest"], variant
            assert scalar["events"] == batched["events"], variant


class TestEngineEquivalenceFuzz:
    """Hypothesis over sampled configurations, compared op-for-op."""

    @settings(max_examples=15, deadline=None)
    @given(
        scheme=st.sampled_from(ALL_SCHEMES),
        workload=st.sampled_from(WORKLOADS),
        seed=st.integers(min_value=0, max_value=3),
        variant=st.sampled_from(sorted(VARIANTS)),
        chunks=st.lists(st.integers(min_value=1, max_value=300),
                        min_size=1, max_size=5),
    )
    def test_chunked_runs_agree_at_every_boundary(
        self, scheme, workload, seed, variant, chunks
    ):
        scalar = _run(scheme, workload, "scalar", seed=seed,
                      variant=variant, chunks=chunks)
        batched = _run(scheme, workload, "batched", seed=seed,
                       variant=variant, chunks=chunks)
        # Op-for-op: per-core clocks/instruction counts must already agree
        # at every chunk boundary, not merely at the end.
        assert scalar["checkpoints"] == batched["checkpoints"]
        assert scalar["digest"] == batched["digest"]
        assert scalar["events"] == batched["events"]

    @settings(max_examples=8, deadline=None)
    @given(
        scheme=st.sampled_from(ALL_SCHEMES),
        seed=st.integers(min_value=0, max_value=2),
        scale=st.sampled_from([512, 1024]),
    )
    def test_scale_and_seed_sweep(self, scheme, seed, scale):
        scalar = _run(scheme, "milcx4", "scalar", ops=500, seed=seed,
                      scale=scale)
        batched = _run(scheme, "milcx4", "batched", ops=500, seed=seed,
                       scale=scale)
        assert scalar["digest"] == batched["digest"]
        assert scalar["cores"] == batched["cores"]

    @settings(max_examples=10, deadline=None)
    @given(
        scheme=st.sampled_from(ALL_SCHEMES),
        dram_shrink=st.sampled_from([1, 2]),
        hpt_threshold=st.integers(min_value=2, max_value=10),
        pct_threshold=st.integers(min_value=4, max_value=20),
        fault_profile=st.sampled_from(
            [None, "transient", "uncorrectable", "storm"]
        ),
        fault_seed=st.integers(min_value=0, max_value=3),
    )
    def test_random_configs_agree(
        self, scheme, dram_shrink, hpt_threshold, pct_threshold,
        fault_profile, fault_seed,
    ):
        """Equivalence over sampled *configurations*: the DRAM:NVM ratio,
        the swap/prefetch thresholds, and the fault-injection profile all
        shift where the batch boundaries fall (more swaps, more rescue
        transfers, different PRT pressure) — none of it may change what
        the batched engine computes."""
        def mutate(config):
            memory = dataclasses.replace(
                config.memory,
                dram=dataclasses.replace(
                    config.memory.dram,
                    capacity_bytes=(
                        config.memory.dram.capacity_bytes // dram_shrink
                    ),
                ),
            )
            pageseer = dataclasses.replace(
                config.pageseer,
                hpt_swap_threshold=hpt_threshold,
                pct_prefetch_threshold=pct_threshold,
            )
            return dataclasses.replace(
                config, memory=memory, pageseer=pageseer
            )

        faults = (
            resolve_profile(fault_profile, fault_seed=fault_seed)
            if fault_profile else None
        )
        scalar = _run(scheme, "milcx4", "scalar", ops=600,
                      config_mutator=mutate, faults=faults)
        batched = _run(scheme, "milcx4", "batched", ops=600,
                       config_mutator=mutate, faults=faults)
        assert scalar["digest"] == batched["digest"]
        assert scalar["stats"] == batched["stats"]
        assert scalar["cores"] == batched["cores"]
        assert scalar["events"] == batched["events"]
