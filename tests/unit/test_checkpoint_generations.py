"""Generational checkpoint rotation and corrupt-``latest.ckpt`` fallback.

The recovery contract (docs/FAULTS.md): ``save_checkpoint(...,
keep_generations=N)`` preserves the previous ``latest.ckpt`` content as
``gen-<n>.ckpt`` before replacing it, pruned to the newest N; a reader
whose ``latest.ckpt`` fails validation falls back through those
generations newest-first and loses a few thousand re-executed ops — not
the run.
"""

import pytest

from repro.sim.system import build_system
from repro.snapshot import (
    DEFAULT_KEEP_GENERATIONS,
    load_checkpoint,
    save_checkpoint,
)
from repro.snapshot.checkpoint import (
    LATEST_NAME,
    generation_files,
    load_checkpoint_with_fallback,
    rotate_generations,
    verify_checkpoint,
)
from repro.workloads import workload_by_name


def _tiny_system():
    return build_system(
        "pageseer", workload_by_name("lbmx4"), scale=1024, seed=0
    )


@pytest.fixture(scope="module")
def staged(tmp_path_factory):
    """One run checkpointed four times with keep_generations=2.

    Returns ``(directory, steps)`` where ``steps[i]`` is the
    ``steps_total`` recorded by the i-th save (steps[-1] == latest).
    """
    directory = tmp_path_factory.mktemp("gens")
    system = _tiny_system()
    steps = []
    for _ in range(4):
        system.run_ops(10)
        save_checkpoint(system, directory / LATEST_NAME, keep_generations=2)
        steps.append(system.steps_total)
    return directory, steps


class TestRotation:
    def test_keeps_only_the_newest_generations(self, staged):
        directory, _ = staged
        names = [path.name for path in generation_files(directory)]
        # Four saves preserve three previous contents; pruned to 2.
        assert names == ["gen-00000002.ckpt", "gen-00000003.ckpt"]

    def test_generations_hold_the_previous_contents(self, staged):
        directory, steps = staged
        gen2, gen3 = generation_files(directory)
        assert load_checkpoint(gen2).steps_total == steps[1]
        assert load_checkpoint(gen3).steps_total == steps[2]
        assert load_checkpoint(directory / LATEST_NAME).steps_total == steps[3]

    def test_rotate_without_existing_file_is_a_no_op(self, tmp_path):
        assert rotate_generations(tmp_path / LATEST_NAME, keep=2) is None
        assert generation_files(tmp_path) == []

    def test_rotate_with_keep_zero_is_a_no_op(self, tmp_path):
        path = tmp_path / LATEST_NAME
        path.write_bytes(b"content")
        assert rotate_generations(path, keep=0) is None
        assert generation_files(tmp_path) == []

    def test_numbering_continues_after_pruning(self, tmp_path):
        path = tmp_path / LATEST_NAME
        for n in range(1, 5):
            path.write_bytes(b"v%d" % n)
            rotate_generations(path, keep=1)
        (only,) = generation_files(tmp_path)
        assert only.name == "gen-00000004.ckpt"  # monotonic, never reused
        assert only.read_bytes() == b"v4"

    def test_generation_files_of_missing_directory(self, tmp_path):
        assert generation_files(tmp_path / "absent") == []

    def test_checkpointer_default_keeps_generations(self):
        assert DEFAULT_KEEP_GENERATIONS >= 1


class TestVerify:
    def test_verdicts(self, staged, tmp_path):
        directory, _ = staged
        status, detail = verify_checkpoint(directory / LATEST_NAME)
        assert status == "ok"
        assert "step" in detail
        assert verify_checkpoint(tmp_path / "absent.ckpt")[0] == "missing"

    def test_truncation_is_corrupt(self, tmp_path):
        system = _tiny_system()
        system.run_ops(10)
        path = save_checkpoint(system, tmp_path / LATEST_NAME)
        path.write_bytes(path.read_bytes()[:-30])
        status, detail = verify_checkpoint(path)
        assert status == "corrupt"
        assert "truncation" in detail


class TestFallback:
    def _corrupt(self, path):
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF
        path.write_bytes(bytes(raw))

    def _staged_copy(self, staged, tmp_path):
        directory, steps = staged
        copy = tmp_path / "work"
        copy.mkdir()
        for path in directory.iterdir():
            (copy / path.name).write_bytes(path.read_bytes())
        return copy, steps

    def test_healthy_latest_wins(self, staged, tmp_path):
        directory, steps = self._staged_copy(staged, tmp_path)
        system, path, skipped = load_checkpoint_with_fallback(directory)
        assert path.name == LATEST_NAME
        assert system.steps_total == steps[3]
        assert skipped == []

    def test_corrupt_latest_falls_back_to_newest_generation(self, staged,
                                                            tmp_path):
        directory, steps = self._staged_copy(staged, tmp_path)
        self._corrupt(directory / LATEST_NAME)
        system, path, skipped = load_checkpoint_with_fallback(directory)
        assert path.name == "gen-00000003.ckpt"
        assert system.steps_total == steps[2]
        assert [p.name for p, _ in skipped] == [LATEST_NAME]

    def test_falls_back_past_a_corrupt_generation_too(self, staged, tmp_path):
        directory, steps = self._staged_copy(staged, tmp_path)
        self._corrupt(directory / LATEST_NAME)
        self._corrupt(directory / "gen-00000003.ckpt")
        system, path, skipped = load_checkpoint_with_fallback(directory)
        assert path.name == "gen-00000002.ckpt"
        assert system.steps_total == steps[1]
        assert len(skipped) == 2

    def test_everything_corrupt_returns_none_with_evidence(self, staged,
                                                           tmp_path):
        directory, _ = self._staged_copy(staged, tmp_path)
        for path in list(directory.iterdir()):
            self._corrupt(path)
        system, path, skipped = load_checkpoint_with_fallback(directory)
        assert system is None and path is None
        assert len(skipped) == 3

    def test_empty_directory(self, tmp_path):
        assert load_checkpoint_with_fallback(tmp_path) == (None, None, [])

    def test_fallback_resumes_to_the_same_metrics(self, tmp_path):
        """Losing latest.ckpt costs re-executed ops, never determinism.

        A checkpointed run whose ``latest.ckpt`` rots falls back to a
        generation and finishes with metrics bit-identical to the
        uninterrupted run (the docs/CHECKPOINTS.md contract, extended to
        the generation chain by docs/FAULTS.md).
        """
        from repro.experiments.runner import _METRIC_FIELDS
        from repro.snapshot import Checkpointer

        reference = _tiny_system().run(100, 50)
        directory = tmp_path / "ckpts"
        checkpointed = _tiny_system()
        Checkpointer(directory, every_ops=30).arm(checkpointed)
        checkpointed.run(100, 50)
        assert generation_files(directory)  # rotation actually happened
        self._corrupt(directory / LATEST_NAME)
        resumed, path, skipped = load_checkpoint_with_fallback(directory)
        assert path.name != LATEST_NAME
        assert [p.name for p, _ in skipped] == [LATEST_NAME]
        metrics = resumed.resume_run()
        for name in _METRIC_FIELDS:
            assert getattr(metrics, name) == getattr(reference, name), name
