"""Unit tests for the analytic core model (repro.sim.cpu)."""

import pytest

from repro.common.addr import LINES_PER_PAGE
from repro.sim.cpu import MemoryOp
from repro.workloads.synthetic import HEAP_BASE

from tests.conftest import make_system


def run_ops(system, core_id=0, count=10):
    core = system.cores[core_id]
    for _ in range(count):
        if not core.step():
            break
    return core


class TestStepping:
    def test_instructions_accumulate(self, tiny_system):
        core = run_ops(tiny_system, count=5)
        assert core.ops_executed == 5
        assert core.instructions >= 5

    def test_clock_advances(self, tiny_system):
        core = run_ops(tiny_system, count=5)
        assert core.clock > 0

    def test_ipc_positive(self, tiny_system):
        core = run_ops(tiny_system, count=20)
        assert 0 < core.ipc < 4

    def test_stream_end_sets_done(self):
        system = make_system("noswap")
        core = system.cores[0]
        core.ops = iter([MemoryOp(HEAP_BASE, False, 1)])
        assert core.step()
        assert not core.step()
        assert core.done


class TestMemoryInteraction:
    def test_llc_misses_reach_hmc(self, tiny_system):
        run_ops(tiny_system, count=30)
        assert tiny_system.stats.get("hmc/requests_demand") > 0

    def test_first_touch_maps_page(self, tiny_system):
        core = tiny_system.cores[0]
        before = core.process.page_table.mapped_pages
        core.step()
        assert core.process.page_table.mapped_pages == before + 1

    def test_tlb_miss_then_hits_within_page(self):
        system = make_system("noswap")
        core = system.cores[0]
        ops = [MemoryOp(HEAP_BASE + 64 * k, False, 1) for k in range(8)]
        core.ops = iter(ops)
        while core.step():
            pass
        assert system.stats.get("tlb/misses") == 1

    def test_cache_hit_cheaper_than_miss(self):
        system = make_system("noswap")
        core = system.cores[0]
        # Two accesses to the same line: miss then L1 hit.
        core.ops = iter([MemoryOp(HEAP_BASE, False, 0), MemoryOp(HEAP_BASE, False, 0)])
        core.step()
        after_miss = core.clock
        core.step()
        assert core.clock - after_miss < after_miss

    def test_write_stall_smaller_than_read(self):
        miss_read = make_system("noswap")
        miss_write = make_system("noswap")
        miss_read.cores[0].ops = iter([MemoryOp(HEAP_BASE, False, 0)])
        miss_write.cores[0].ops = iter([MemoryOp(HEAP_BASE, True, 0)])
        miss_read.cores[0].step()
        miss_write.cores[0].step()
        assert miss_write.cores[0].clock < miss_read.cores[0].clock

    def test_writebacks_do_not_stall(self):
        system = make_system("noswap")
        core = system.cores[0]
        # Touch many aliasing lines with writes to force dirty evictions.
        l1_sets = system.config.l1.num_sets
        ops = [
            MemoryOp(HEAP_BASE + 64 * l1_sets * k, True, 0) for k in range(40)
        ]
        core.ops = iter(ops)
        while core.step():
            pass
        assert system.stats.get("hmc/requests_writeback") > 0
