"""Unit tests for the TLB (repro.vm.tlb)."""

import pytest

from repro.common.config import TlbConfig
from repro.vm.tlb import Tlb


def make_tlb(entries=8, ways=2):
    return Tlb(TlbConfig("test", entries, ways, 1))


class TestLookup:
    def test_miss_on_empty(self):
        tlb = make_tlb()
        assert tlb.lookup(1, 100) is None

    def test_fill_then_hit(self):
        tlb = make_tlb()
        tlb.fill(1, 100, 555)
        assert tlb.lookup(1, 100) == 555

    def test_pid_isolation(self):
        tlb = make_tlb()
        tlb.fill(1, 100, 555)
        assert tlb.lookup(2, 100) is None

    def test_different_vpn_misses(self):
        tlb = make_tlb()
        tlb.fill(1, 100, 555)
        assert tlb.lookup(1, 101) is None


class TestEviction:
    def test_lru_within_set(self):
        tlb = make_tlb(entries=4, ways=2)  # 2 sets
        tlb.fill(1, 0, 10)   # set 0
        tlb.fill(1, 2, 20)   # set 0
        tlb.lookup(1, 0)     # refresh vpn 0
        victim = tlb.fill(1, 4, 30)  # set 0: evicts vpn 2
        assert victim == (1, 2)
        assert tlb.lookup(1, 2) is None
        assert tlb.lookup(1, 0) == 10

    def test_no_eviction_with_space(self):
        tlb = make_tlb()
        assert tlb.fill(1, 0, 10) is None

    def test_refill_updates_value(self):
        tlb = make_tlb()
        tlb.fill(1, 0, 10)
        tlb.fill(1, 0, 99)
        assert tlb.lookup(1, 0) == 99


class TestInvalidate:
    def test_invalidate_present(self):
        tlb = make_tlb()
        tlb.fill(1, 0, 10)
        assert tlb.invalidate(1, 0)
        assert tlb.lookup(1, 0) is None

    def test_invalidate_absent(self):
        tlb = make_tlb()
        assert not tlb.invalidate(1, 0)

    def test_flush(self):
        tlb = make_tlb()
        for vpn in range(4):
            tlb.fill(1, vpn, vpn)
        tlb.flush()
        assert tlb.occupancy == 0


class TestOccupancy:
    def test_counts_entries(self):
        tlb = make_tlb()
        tlb.fill(1, 0, 1)
        tlb.fill(2, 0, 2)
        assert tlb.occupancy == 2
