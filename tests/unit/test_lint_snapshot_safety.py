"""RL006 snapshot-safety: live sockets and selectors on checkpointable
classes (the failure mode the sweepd heartbeat plumbing makes easy)."""

from tests.unit.lint_program.helpers import findings_for, lint_project, write_project


def _findings(tmp_path, files):
    write_project(tmp_path, files)
    report, _ = lint_project(tmp_path, program=False)
    return findings_for(report, "RL006")


def test_socket_module_constructor_is_flagged(tmp_path):
    findings = _findings(tmp_path, {
        "sim/reporter.py": (
            "import socket\n"
            "class Reporter:\n"
            "    def __init__(self):\n"
            "        self.sock = socket.socket()\n"
        ),
    })
    assert len(findings) == 1
    assert "live socket" in findings[0].message
    assert "Reporter.__init__" in findings[0].message


def test_create_connection_and_friends_are_flagged(tmp_path):
    findings = _findings(tmp_path, {
        "sim/links.py": (
            "import socket\n"
            "class Links:\n"
            "    def connect(self):\n"
            "        self.conn = socket.create_connection(('h', 1))\n"
            "    def pair(self):\n"
            "        self.left = socket.socketpair()\n"
            "    def adopt(self, fd):\n"
            "        self.raw = socket.fromfd(fd, 2, 1)\n"
        ),
    })
    assert len(findings) == 3
    assert all("live socket" in finding.message for finding in findings)


def test_bare_socket_import_idiom_is_flagged(tmp_path):
    findings = _findings(tmp_path, {
        "sim/reporter.py": (
            "from socket import socket\n"
            "class Reporter:\n"
            "    def __init__(self):\n"
            "        self.sock = socket()\n"
        ),
    })
    assert len(findings) == 1
    assert "live socket" in findings[0].message


def test_selector_objects_are_flagged(tmp_path):
    findings = _findings(tmp_path, {
        "sim/loop.py": (
            "import selectors\n"
            "class Loop:\n"
            "    def __init__(self):\n"
            "        self.selector = selectors.DefaultSelector()\n"
        ),
        "sim/loop2.py": (
            "from selectors import EpollSelector\n"
            "class Loop2:\n"
            "    def __init__(self):\n"
            "        self.selector = EpollSelector()\n"
        ),
    })
    assert len(findings) == 2
    assert all("I/O selector" in finding.message for finding in findings)


def test_snapshot_detach_exempts_the_class(tmp_path):
    findings = _findings(tmp_path, {
        "sim/reporter.py": (
            "import socket\n"
            "class Reporter:\n"
            "    def __init__(self):\n"
            "        self.sock = socket.socket()\n"
            "    def snapshot_detach(self):\n"
            "        self.sock = None\n"
            "    def snapshot_reattach(self):\n"
            "        pass\n"
        ),
    })
    assert findings == []


def test_out_of_scope_packages_are_not_checked(tmp_path):
    # The service itself (sweepd) legitimately owns sockets and
    # selectors; it is never part of a pickled System graph.
    findings = _findings(tmp_path, {
        "sweepd/server.py": (
            "import selectors\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self.selector = selectors.DefaultSelector()\n"
        ),
    })
    assert findings == []


def test_plain_data_is_not_flagged(tmp_path):
    findings = _findings(tmp_path, {
        "sim/counters.py": (
            "class Counters:\n"
            "    def __init__(self):\n"
            "        self.hits = 0\n"
            "        self.names = ['a', 'b']\n"
        ),
    })
    assert findings == []
