"""Unit tests for the DMA freeze protocol (Section III-E)."""

import pytest

from repro.common.addr import LINES_PER_PAGE
from repro.core.pct import PctEntry

from tests.unit.test_pageseer_hmc import make_hmc, nvm_line


class TestFreeze:
    def test_freeze_blocks_swaps(self):
        hmc, config, stats = make_hmc()
        page = nvm_line(hmc) // LINES_PER_PAGE
        ready = hmc.dma_begin(0, page)
        assert ready == 0
        assert hmc.is_frozen(page)
        # Drive the page hot: the HPT would normally swap it.
        now = 0
        for k in range(config.pageseer.hpt_swap_threshold + 2):
            now = hmc.handle_request(now + 1, page * LINES_PER_PAGE + k, False, 1)
        assert not hmc.prt.is_swapped(page)
        assert stats.get("swap_driver/declined_frozen") >= 1

    def test_unfreeze_reenables_swaps(self):
        hmc, config, _ = make_hmc()
        page = nvm_line(hmc) // LINES_PER_PAGE
        hmc.dma_begin(0, page)
        hmc.dma_end(page)
        assert not hmc.is_frozen(page)
        hmc.pct.write(page, PctEntry(config.pageseer.pct_prefetch_threshold, None, 0))
        hmc.mmu_hint(10, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=page)
        assert hmc.prt.is_swapped(page)

    def test_dma_waits_for_inflight_swap(self):
        hmc, config, _ = make_hmc()
        page = nvm_line(hmc) // LINES_PER_PAGE
        hmc.pct.write(page, PctEntry(config.pageseer.pct_prefetch_threshold, None, 0))
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=page)
        record = hmc.swap_driver.records[0]
        mid = (record.start + record.end) // 2
        ready = hmc.dma_begin(mid, page)
        assert ready == record.end

    def test_frozen_frame_not_picked_as_victim(self):
        hmc, config, _ = make_hmc()
        # Freeze all frames of colour 0 and ask for a swap into that colour.
        target = nvm_line(hmc) // LINES_PER_PAGE
        colour = hmc.prt.colour_of(target)
        for frame in hmc.prt.dram_frames_of_colour(colour):
            hmc.dma_begin(0, frame)
        assert not hmc.swap_driver.request_swap(0, target, "regular", 0.0)

    def test_dma_requests_remap_through_prt(self):
        """DMA traffic goes through handle_request and sees the remapping."""
        hmc, config, stats = make_hmc()
        page = nvm_line(hmc) // LINES_PER_PAGE
        hmc.pct.write(page, PctEntry(config.pageseer.pct_prefetch_threshold, None, 0))
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=page)
        end = hmc.swap_driver.records[0].end
        ready = hmc.dma_begin(end + 1, page)
        hmc.handle_request(ready + 1, page * LINES_PER_PAGE, False, pid=0)
        # The page's data is in DRAM now; the DMA read was serviced there.
        assert stats.get("hmc/serviced_dram") >= 1
        hmc.dma_end(page)

    def test_double_freeze_and_end_idempotent(self):
        hmc, _, _ = make_hmc()
        page = nvm_line(hmc) // LINES_PER_PAGE
        hmc.dma_begin(0, page)
        hmc.dma_begin(5, page)
        hmc.dma_end(page)
        hmc.dma_end(page)
        assert not hmc.is_frozen(page)
