"""Units for the hardened persistence layer (``repro.persist``).

Covers the atomic write primitive, the checksummed JSON envelope (stamp
embedded on write, verified and stripped on read, legacy files pass
through), the ``.bak`` backup generation, and the deterministic
storage-fault injector that PR 10 plugs in underneath every write.
"""

import json
import os

import pytest

from repro import persist
from repro.common.errors import (
    ConfigError,
    CorruptPayloadError,
    PersistError,
    PersistWriteError,
)
from repro.faults.storage import (
    FAULT_KINDS,
    STORAGE_FAULTS_ENV,
    STORAGE_PROFILES,
    StorageFaultConfig,
    StorageFaultInjector,
    config_from_env,
    config_to_env,
    resolve_storage_profile,
)


@pytest.fixture(autouse=True)
def _clean_injector():
    """Every test starts and ends with fault injection disarmed."""
    persist.install_storage_faults(None)
    yield
    persist.install_storage_faults(None)


# -- atomic_write_bytes -------------------------------------------------------


class TestAtomicWriteBytes:
    def test_writes_and_returns_path(self, tmp_path):
        path = tmp_path / "blob.bin"
        result = persist.atomic_write_bytes(path, b"hello")
        assert result == path
        assert path.read_bytes() == b"hello"

    def test_replaces_previous_content(self, tmp_path):
        path = tmp_path / "blob.bin"
        persist.atomic_write_bytes(path, b"old")
        persist.atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "blob.bin"
        persist.atomic_write_bytes(path, b"x")
        assert path.read_bytes() == b"x"

    def test_leaves_no_temp_file_behind(self, tmp_path):
        path = tmp_path / "blob.bin"
        persist.atomic_write_bytes(path, b"data")
        assert os.listdir(tmp_path) == ["blob.bin"]


# -- checksummed JSON envelopes ----------------------------------------------


class TestJsonEnvelope:
    def test_round_trip_strips_stamp(self, tmp_path):
        path = tmp_path / "doc.json"
        payload = {"alpha": 1, "beta": [1, 2, 3], "gamma": {"x": "y"}}
        persist.write_json(path, payload)
        assert persist.read_json(path) == payload

    def test_stamp_lands_on_disk(self, tmp_path):
        path = tmp_path / "doc.json"
        persist.write_json(path, {"a": 1})
        on_disk = json.loads(path.read_text())
        stamp = on_disk[persist.PERSIST_KEY]
        assert stamp["format"] == persist.PERSIST_FORMAT_VERSION
        assert stamp["sha256"] == persist.payload_checksum({"a": 1})

    def test_indented_and_compact_share_a_checksum(self, tmp_path):
        """The stamp covers the canonical encoding, not the disk bytes."""
        compact = tmp_path / "compact.json"
        pretty = tmp_path / "pretty.json"
        persist.write_json(compact, {"a": 1, "b": 2})
        persist.write_json(pretty, {"a": 1, "b": 2}, indent=2)
        stamp = lambda p: json.loads(p.read_text())[persist.PERSIST_KEY]
        assert stamp(compact)["sha256"] == stamp(pretty)["sha256"]
        assert persist.read_json(pretty) == {"a": 1, "b": 2}

    def test_non_dict_payload_is_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            persist.write_json(tmp_path / "x.json", [1, 2, 3])

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            persist.read_json(tmp_path / "absent.json")

    def test_garbage_raises_corrupt_with_parse_check(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_bytes(b"\x00\xffnot json")
        with pytest.raises(CorruptPayloadError) as info:
            persist.read_json(path)
        assert info.value.check == "parse"

    def test_non_object_document_raises_schema_check(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CorruptPayloadError) as info:
            persist.read_json(path)
        assert info.value.check == "schema"

    def test_tampered_value_raises_checksum_check(self, tmp_path):
        path = tmp_path / "doc.json"
        persist.write_json(path, {"count": 10})
        path.write_text(path.read_text().replace('"count": 10', '"count": 99'))
        with pytest.raises(CorruptPayloadError) as info:
            persist.read_json(path)
        assert info.value.check == "checksum"
        assert info.value.hint == persist.FSCK_HINT

    def test_malformed_stamp_raises_stamp_check(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text(json.dumps({"a": 1, persist.PERSIST_KEY: "bogus"}))
        with pytest.raises(CorruptPayloadError) as info:
            persist.read_json(path)
        assert info.value.check == "stamp"

    def test_legacy_stampless_file_reads_fine(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"old": True}))
        assert persist.read_json(path) == {"old": True}

    def test_read_json_or_none_tolerates_everything(self, tmp_path):
        missing = tmp_path / "absent.json"
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_bytes(b"{{{")
        good = tmp_path / "good.json"
        persist.write_json(good, {"v": 1})
        assert persist.read_json_or_none(missing) is None
        assert persist.read_json_or_none(corrupt) is None
        assert persist.read_json_or_none(good) == {"v": 1}


class TestVerifyFile:
    def test_statuses(self, tmp_path):
        good = tmp_path / "good.json"
        persist.write_json(good, {"a": 1})
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps({"a": 1}))
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_bytes(b"nope")
        assert persist.verify_file(good)[0] == "ok"
        assert persist.verify_file(legacy)[0] == "legacy"
        assert persist.verify_file(corrupt)[0] == "corrupt"
        assert persist.verify_file(tmp_path / "absent.json")[0] == "missing"

    def test_tampered_stamped_file_is_corrupt(self, tmp_path):
        path = tmp_path / "doc.json"
        persist.write_json(path, {"n": 5})
        path.write_text(path.read_text().replace('"n": 5', '"n": 6'))
        status, detail = persist.verify_file(path)
        assert status == "corrupt"
        assert "checksum" in detail


class TestBackup:
    def test_backup_preserves_previous_generation(self, tmp_path):
        path = tmp_path / "manifest.json"
        persist.write_json(path, {"gen": 1}, backup=True)
        assert not persist.backup_path(path).exists()  # nothing to back up yet
        persist.write_json(path, {"gen": 2}, backup=True)
        assert persist.read_json(path) == {"gen": 2}
        assert persist.read_json(persist.backup_path(path)) == {"gen": 1}

    def test_backup_survives_primary_corruption(self, tmp_path):
        path = tmp_path / "manifest.json"
        persist.write_json(path, {"gen": 1}, backup=True)
        persist.write_json(path, {"gen": 2}, backup=True)
        path.write_bytes(b"trashed")
        assert persist.read_json_or_none(path) is None
        assert persist.read_json(persist.backup_path(path)) == {"gen": 1}


# -- storage-fault configuration ---------------------------------------------


class TestStorageFaultConfig:
    def test_rates_are_validated(self):
        with pytest.raises(ConfigError):
            StorageFaultConfig(enabled=True, enospc_rate=1.5)

    def test_active_requires_a_positive_rate(self):
        assert not StorageFaultConfig(enabled=True).active
        assert StorageFaultConfig(enabled=True, torn_write_rate=0.1).active
        assert not StorageFaultConfig(enabled=False, torn_write_rate=0.1).active

    def test_profiles_resolve_with_seed(self):
        config = resolve_storage_profile("storm", storage_seed=42)
        assert config.storage_seed == 42
        assert config.active

    def test_off_profile_resolves_to_none(self):
        assert resolve_storage_profile("off") is None

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigError):
            resolve_storage_profile("meteor")

    def test_env_round_trip(self):
        config = resolve_storage_profile("torn", storage_seed=9)
        value = config_to_env(config, "torn")
        assert value == "torn:9"
        assert config_from_env(value) == config
        assert config_from_env("") is None
        assert config_from_env("off") is None

    def test_env_bad_seed_raises(self):
        with pytest.raises(ConfigError):
            config_from_env("storm:banana")


# -- the injector -------------------------------------------------------------


def _plans(config, writes=40, site="site", nbytes=256):
    injector = StorageFaultInjector(config)
    return [injector.plan_write(site, f"f{i}", nbytes) for i in range(writes)]


class TestStorageFaultInjector:
    def test_schedule_is_deterministic(self):
        config = STORAGE_PROFILES["storm"]
        assert _plans(config) == _plans(config)

    def test_seed_changes_the_schedule(self):
        base = resolve_storage_profile("storm", storage_seed=1)
        other = resolve_storage_profile("storm", storage_seed=2)
        assert _plans(base) != _plans(other)

    def test_sites_draw_independent_streams(self):
        """Interleaving writes to another site must not perturb a site's
        schedule — two processes writing different sites stay aligned."""
        config = resolve_storage_profile("storm", storage_seed=3)
        solo = StorageFaultInjector(config)
        solo_plans = [solo.plan_write("a", f"f{i}", 128) for i in range(20)]
        mixed = StorageFaultInjector(config)
        mixed_plans = []
        for i in range(20):
            mixed.plan_write("b", f"g{i}", 128)
            mixed_plans.append(mixed.plan_write("a", f"f{i}", 128))
        assert solo_plans == mixed_plans

    def test_inactive_config_never_injects(self):
        plans = _plans(StorageFaultConfig())
        assert all(plan.kind is None for plan in plans)

    def test_counters_tally_injected_kinds(self):
        config = resolve_storage_profile("storm", storage_seed=5)
        injector = StorageFaultInjector(config)
        for i in range(200):
            injector.plan_write("s", f"f{i}", 64)
        counters = injector.counters()
        assert set(counters) == set(FAULT_KINDS)
        assert sum(counters.values()) == len(injector.injected)
        assert sum(counters.values()) > 0

    def test_torn_keeps_a_strict_prefix(self):
        config = StorageFaultConfig(enabled=True, torn_write_rate=1.0)
        injector = StorageFaultInjector(config)
        for i in range(50):
            plan = injector.plan_write("s", f"f{i}", 100)
            assert plan.kind == "torn"
            assert 0 <= plan.keep_bytes <= 90  # torn_keep_fraction_max

    def test_bitrot_flips_within_the_payload(self):
        config = StorageFaultConfig(enabled=True, bitrot_rate=1.0)
        injector = StorageFaultInjector(config)
        for i in range(50):
            plan = injector.plan_write("s", f"f{i}", 100)
            assert plan.kind == "bitrot"
            assert 0 <= plan.flip_bit < 800


# -- injection under the write path ------------------------------------------


def _arm(**rates):
    persist.install_storage_faults(
        StorageFaultInjector(StorageFaultConfig(enabled=True, **rates))
    )


class TestInjectedWrites:
    @pytest.mark.parametrize("rate_name", ["enospc_rate", "eio_rate",
                                           "fsync_fail_rate"])
    def test_hard_failures_raise_and_keep_old_content(self, tmp_path, rate_name):
        path = tmp_path / "doc.json"
        persist.write_json(path, {"gen": 1})
        _arm(**{rate_name: 1.0})
        with pytest.raises(PersistWriteError) as info:
            persist.write_json(path, {"gen": 2})
        assert info.value.hint  # every failure carries a remediation
        persist.install_storage_faults(None)
        assert persist.read_json(path) == {"gen": 1}

    def test_enospc_carries_errno_and_hint(self, tmp_path):
        _arm(enospc_rate=1.0)
        with pytest.raises(PersistWriteError) as info:
            persist.atomic_write_bytes(tmp_path / "x.bin", b"data")
        import errno
        assert info.value.errno == errno.ENOSPC
        assert "disk space" in info.value.hint

    def test_torn_write_is_silent_but_detected_on_read(self, tmp_path):
        path = tmp_path / "doc.json"
        _arm(torn_write_rate=1.0)
        persist.write_json(path, {"payload": list(range(50))})  # no error
        persist.install_storage_faults(None)
        assert path.exists()
        with pytest.raises(CorruptPayloadError):
            persist.read_json(path)
        assert persist.verify_file(path)[0] == "corrupt"

    def test_bitrot_is_silent_but_never_verifies_ok(self, tmp_path):
        path = tmp_path / "doc.json"
        _arm(bitrot_rate=1.0)
        persist.write_json(path, {"payload": list(range(50))})  # no error
        persist.install_storage_faults(None)
        # One flipped bit can at worst demote the file to "legacy" (if it
        # lands in the stamp key itself); it must never verify as "ok".
        assert persist.verify_file(path)[0] != "ok"

    def test_fault_failure_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "doc.json"
        _arm(eio_rate=1.0)
        with pytest.raises(PersistWriteError):
            persist.atomic_write_bytes(path, b"data")
        persist.install_storage_faults(None)
        assert os.listdir(tmp_path) == []


class TestEnvArming:
    def test_env_hook_arms_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORAGE_FAULTS_ENV, "enospc:11")
        persist.reset_storage_faults()
        injector = persist.active_injector()
        assert injector is not None
        assert injector.config.enospc_rate > 0
        assert injector.config.storage_seed == 11
        with pytest.raises(PersistWriteError):
            persist.write_json(tmp_path / "x.json", {"a": 1})

    def test_env_off_means_disarmed(self, monkeypatch):
        monkeypatch.setenv(STORAGE_FAULTS_ENV, "off")
        persist.reset_storage_faults()
        assert persist.active_injector() is None

    def test_install_none_suppresses_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORAGE_FAULTS_ENV, "enospc")
        persist.install_storage_faults(None)
        assert persist.active_injector() is None
        persist.write_json(tmp_path / "x.json", {"a": 1})  # no faults fire
