"""RL001: nondeterminism findings (and their absence on clean code)."""

from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.rules.determinism import DeterminismRule


def findings_for(tmp_path: Path, text: str, relpath: str = "sim/core.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    report = lint_paths(["."], root=tmp_path, rules=[DeterminismRule()])
    return report.findings


class TestRandomness:
    def test_import_random_flagged(self, tmp_path):
        (finding,) = findings_for(tmp_path, "import random\n")
        assert "DeterministicRng" in finding.message

    def test_from_random_import_flagged(self, tmp_path):
        assert findings_for(tmp_path, "from random import randint\n")

    def test_random_call_flagged(self, tmp_path):
        text = "def f(random):\n    return random.random()\n"
        assert findings_for(tmp_path, text)

    def test_deterministic_rng_is_clean(self, tmp_path):
        text = (
            "from repro.common.rng import DeterministicRng\n"
            "rng = DeterministicRng('victim', 7)\n"
            "x = rng.randint(0, 10)\n"
        )
        assert findings_for(tmp_path, text) == []


class TestWallClocks:
    def test_time_time_flagged(self, tmp_path):
        assert findings_for(tmp_path, "import time\nnow = time.time()\n")

    def test_perf_counter_from_import_flagged(self, tmp_path):
        text = "from time import perf_counter\nt = perf_counter()\n"
        assert findings_for(tmp_path, text)

    def test_datetime_now_flagged(self, tmp_path):
        text = "import datetime\nstamp = datetime.datetime.now()\n"
        assert findings_for(tmp_path, text)

    def test_os_urandom_flagged(self, tmp_path):
        assert findings_for(tmp_path, "import os\nseed = os.urandom(8)\n")

    def test_time_module_other_functions_clean(self, tmp_path):
        assert findings_for(tmp_path, "import time\ntime.sleep(0)\n") == []


class TestIdKeys:
    def test_id_as_subscript_key_flagged(self, tmp_path):
        text = "table = {}\ndef f(obj):\n    table[id(obj)] = 1\n"
        assert findings_for(tmp_path, text)

    def test_id_in_dict_literal_flagged(self, tmp_path):
        text = "def f(obj):\n    return {id(obj): 1}\n"
        assert findings_for(tmp_path, text)

    def test_id_in_dict_get_flagged(self, tmp_path):
        text = "def f(table, obj):\n    return table.get(id(obj))\n"
        assert findings_for(tmp_path, text)

    def test_stable_key_clean(self, tmp_path):
        text = "def f(table, page):\n    return table.get(page.number)\n"
        assert findings_for(tmp_path, text) == []


class TestSetIteration:
    def test_for_over_set_variable_flagged(self, tmp_path):
        text = "pages = {1, 2, 3}\nfor page in pages:\n    pass\n"
        assert findings_for(tmp_path, text)

    def test_for_over_set_call_flagged(self, tmp_path):
        text = "def f(items):\n    for x in set(items):\n        pass\n"
        assert findings_for(tmp_path, text)

    def test_comprehension_over_self_set_flagged(self, tmp_path):
        text = (
            "class T:\n"
            "    def __init__(self):\n"
            "        self.live = set()\n"
            "    def snapshot(self):\n"
            "        return [p for p in self.live]\n"
        )
        assert findings_for(tmp_path, text)

    def test_annotated_set_attribute_flagged(self, tmp_path):
        text = (
            "from typing import Set\n"
            "class T:\n"
            "    def __init__(self):\n"
            "        self.live: Set[int] = set()\n"
            "    def drain(self):\n"
            "        for p in self.live:\n"
            "            pass\n"
        )
        assert findings_for(tmp_path, text)

    def test_sorted_set_is_clean(self, tmp_path):
        text = "pages = {1, 2, 3}\nfor page in sorted(pages):\n    pass\n"
        assert findings_for(tmp_path, text) == []

    def test_dict_iteration_is_clean(self, tmp_path):
        text = "pages = {1: 'a'}\nfor page in pages:\n    pass\n"
        assert findings_for(tmp_path, text) == []

    def test_set_pop_flagged(self, tmp_path):
        text = "free = {1, 2}\ndef take():\n    return free.pop()\n"
        assert findings_for(tmp_path, text)

    def test_list_pop_is_clean(self, tmp_path):
        text = "free = [1, 2]\ndef take():\n    return free.pop()\n"
        assert findings_for(tmp_path, text) == []


class TestScoping:
    def test_outside_sim_packages_exempt(self, tmp_path):
        text = "import random\nimport time\nnow = time.time()\n"
        assert findings_for(tmp_path, text, relpath="analysis/plot.py") == []

    def test_all_sim_packages_covered(self, tmp_path):
        for package in ("sim", "mem", "core", "vm", "cache", "baselines"):
            found = findings_for(
                tmp_path, "import random\n", relpath=f"src/repro/{package}/m.py"
            )
            assert found, f"package {package} not covered"
