"""Units for ``repro fsck`` (``repro.fsck``): scan, verify, repair.

Fixtures hand-assemble the three persisted file classes — REPRO-CKPT
checkpoints, stamped JSON envelopes, JSONL journals — corrupt them in
controlled ways, and assert the scanner's verdicts and the repair
actions (quarantine, generation promotion, ``.bak`` restore, torn-tail
truncation).
"""

import argparse
import hashlib
import json
import zlib
from pathlib import Path

import pytest

from repro import persist
from repro.fsck import (
    QUARANTINE_DIRNAME,
    _classify,
    _probe_journal,
    _quarantine,
    command_fsck,
    run_fsck,
    scan_directory,
    summarize,
)
from repro.snapshot.checkpoint import LATEST_NAME, MAGIC, verify_checkpoint


def make_checkpoint(path: Path, payload: bytes = b"system state") -> Path:
    """A minimal valid REPRO-CKPT file (fsck never unpickles payloads)."""
    compressed = zlib.compress(payload)
    header = {
        "format_version": 1,
        "checksum_sha256": hashlib.sha256(compressed).hexdigest(),
        "payload_bytes": len(compressed),
        "ops_executed": [3, 4],
    }
    blob = (
        MAGIC
        + json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        + b"\n"
        + compressed
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)
    return path


def corrupt_tail(path: Path, drop: int = 5) -> None:
    raw = path.read_bytes()
    path.write_bytes(raw[:-drop])


def journal_lines(*records) -> bytes:
    return b"".join(
        json.dumps(record).encode() + b"\n" for record in records
    )


def by_name(findings):
    return {finding.path.name: finding for finding in findings}


# -- classification -----------------------------------------------------------


class TestClassify:
    @pytest.mark.parametrize("name,kind", [
        ("latest.ckpt", "checkpoint"),
        ("gen-00000001.ckpt", "checkpoint"),
        ("result.json", "json"),
        ("manifest.json.bak", "json"),
        ("aggregator.jsonl", "journal"),
        ("heartbeat", None),
        ("result.json.1234.tmp", None),
        ("notes.txt", None),
    ])
    def test_kinds(self, tmp_path, name, kind):
        assert _classify(tmp_path / name) == kind


# -- scanning -----------------------------------------------------------------


class TestScan:
    def test_clean_directory_is_all_ok(self, tmp_path):
        make_checkpoint(tmp_path / LATEST_NAME)
        persist.write_json(tmp_path / "result.json", {"ipc": 1.0})
        (tmp_path / "log.jsonl").write_bytes(journal_lines({"a": 1}, {"b": 2}))
        findings = scan_directory(tmp_path)
        assert len(findings) == 3
        assert all(f.status == "ok" for f in findings)

    def test_legacy_json_is_reported_not_flagged(self, tmp_path):
        (tmp_path / "old.json").write_text(json.dumps({"v": 1}))
        (finding,) = scan_directory(tmp_path)
        assert finding.status == "legacy"
        assert not finding.problem

    def test_corruption_is_detected_per_class(self, tmp_path):
        corrupt_tail(make_checkpoint(tmp_path / LATEST_NAME))
        persist.write_json(tmp_path / "result.json", {"ipc": 1.0})
        raw = (tmp_path / "result.json").read_text()
        (tmp_path / "result.json").write_text(raw.replace("1.0", "2.0"))
        (tmp_path / "log.jsonl").write_bytes(
            journal_lines({"a": 1}) + b'{"torn": '
        )
        findings = by_name(scan_directory(tmp_path))
        assert findings[LATEST_NAME].status == "corrupt"
        assert "truncation" in findings[LATEST_NAME].detail
        assert findings["result.json"].status == "corrupt"
        assert findings["log.jsonl"].status == "corrupt"
        assert "torn tail" in findings["log.jsonl"].detail

    def test_quarantine_directory_is_never_rescanned(self, tmp_path):
        corrupt = tmp_path / QUARANTINE_DIRNAME / "bad.json"
        corrupt.parent.mkdir()
        corrupt.write_bytes(b"garbage")
        assert scan_directory(tmp_path) == []

    def test_ignored_names_are_skipped(self, tmp_path):
        (tmp_path / "heartbeat").write_text("12345")
        (tmp_path / "doc.json.999.tmp").write_bytes(b"partial")
        assert scan_directory(tmp_path) == []


# -- journal probing ----------------------------------------------------------


class TestJournalProbe:
    def test_clean_journal(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(journal_lines({"a": 1}, {"b": 2}, {"c": 3}))
        status, detail, offset = _probe_journal(path)
        assert status == "ok"
        assert "3 records" in detail
        assert offset == -1

    def test_torn_final_line_is_recoverable(self, tmp_path):
        good = journal_lines({"a": 1}, {"b": 2})
        path = tmp_path / "log.jsonl"
        path.write_bytes(good + b'{"c": 3')  # crash mid-append, no newline
        status, detail, offset = _probe_journal(path)
        assert status == "corrupt"
        assert "torn tail" in detail
        assert offset == len(good)

    def test_mid_file_corruption_is_not_truncatable(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(
            journal_lines({"a": 1}) + b"garbage\n" + journal_lines({"c": 3})
        )
        status, detail, offset = _probe_journal(path)
        assert status == "corrupt"
        assert offset == -1


# -- repair -------------------------------------------------------------------


class TestRepair:
    def test_corrupt_latest_promotes_newest_good_generation(self, tmp_path):
        make_checkpoint(tmp_path / "gen-00000001.ckpt", b"older state")
        good = make_checkpoint(tmp_path / "gen-00000002.ckpt", b"newer state")
        corrupt_tail(make_checkpoint(tmp_path / LATEST_NAME, b"newest state"))
        findings = by_name(scan_directory(tmp_path, repair=True))
        latest = findings[LATEST_NAME]
        assert latest.status == "repaired"
        assert "promoted gen-00000002.ckpt" in latest.repair
        assert verify_checkpoint(tmp_path / LATEST_NAME)[0] == "ok"
        assert (tmp_path / LATEST_NAME).read_bytes() == good.read_bytes()
        assert (tmp_path / QUARANTINE_DIRNAME / LATEST_NAME).exists()

    def test_corrupt_generation_is_skipped_for_promotion(self, tmp_path):
        corrupt_tail(make_checkpoint(tmp_path / "gen-00000002.ckpt", b"bad"))
        good = make_checkpoint(tmp_path / "gen-00000001.ckpt", b"good")
        corrupt_tail(make_checkpoint(tmp_path / LATEST_NAME))
        findings = by_name(scan_directory(tmp_path, repair=True))
        assert "promoted gen-00000001.ckpt" in findings[LATEST_NAME].repair
        assert (tmp_path / LATEST_NAME).read_bytes() == good.read_bytes()

    def test_no_generation_means_restart_from_scratch(self, tmp_path):
        corrupt_tail(make_checkpoint(tmp_path / LATEST_NAME))
        findings = by_name(scan_directory(tmp_path, repair=True))
        assert findings[LATEST_NAME].status == "repaired"
        assert "no verifiable generation" in findings[LATEST_NAME].repair
        assert not (tmp_path / LATEST_NAME).exists()  # quarantined away

    def test_corrupt_non_latest_checkpoint_is_only_quarantined(self, tmp_path):
        corrupt_tail(make_checkpoint(tmp_path / "gen-00000001.ckpt"))
        make_checkpoint(tmp_path / LATEST_NAME)
        findings = by_name(scan_directory(tmp_path, repair=True))
        assert findings["gen-00000001.ckpt"].status == "repaired"
        assert "promoted" not in findings["gen-00000001.ckpt"].repair
        assert (tmp_path / QUARANTINE_DIRNAME / "gen-00000001.ckpt").exists()

    def test_corrupt_json_restores_from_backup(self, tmp_path):
        path = tmp_path / "manifest.json"
        persist.write_json(path, {"gen": 1}, backup=True)
        persist.write_json(path, {"gen": 2}, backup=True)
        path.write_bytes(b"trashed")
        findings = by_name(scan_directory(tmp_path, repair=True))
        assert findings["manifest.json"].status == "repaired"
        assert "restored from manifest.json.bak" in findings["manifest.json"].repair
        assert persist.read_json(path) == {"gen": 1}

    def test_corrupt_json_without_backup_is_quarantined(self, tmp_path):
        path = tmp_path / "result.json"
        path.write_bytes(b"trashed")
        findings = by_name(scan_directory(tmp_path, repair=True))
        assert findings["result.json"].status == "repaired"
        assert "restored" not in findings["result.json"].repair
        assert not path.exists()
        assert (tmp_path / QUARANTINE_DIRNAME / "result.json").exists()

    def test_torn_journal_tail_is_truncated(self, tmp_path):
        good = journal_lines({"a": 1}, {"b": 2})
        path = tmp_path / "aggregator.jsonl"
        path.write_bytes(good + b'{"c": ')
        findings = by_name(scan_directory(tmp_path, repair=True))
        assert findings["aggregator.jsonl"].status == "repaired"
        assert "truncated torn tail" in findings["aggregator.jsonl"].repair
        assert path.read_bytes() == good
        # Every surviving record still parses.
        records = [json.loads(l) for l in path.read_text().splitlines() if l]
        assert records == [{"a": 1}, {"b": 2}]

    def test_mid_corrupt_journal_is_quarantined(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(
            journal_lines({"a": 1}) + b"garbage\n" + journal_lines({"c": 3})
        )
        findings = by_name(scan_directory(tmp_path, repair=True))
        assert findings["log.jsonl"].status == "repaired"
        assert not path.exists()
        assert (tmp_path / QUARANTINE_DIRNAME / "log.jsonl").exists()

    def test_quarantine_never_overwrites(self, tmp_path):
        first = tmp_path / "x.json"
        first.write_bytes(b"one")
        moved_first = _quarantine(first)
        second = tmp_path / "x.json"
        second.write_bytes(b"two")
        moved_second = _quarantine(second)
        assert moved_first.name == "x.json"
        assert moved_second.name == "x.json.1"
        assert moved_first.read_bytes() == b"one"
        assert moved_second.read_bytes() == b"two"

    def test_repair_then_rescan_is_clean(self, tmp_path):
        make_checkpoint(tmp_path / "gen-00000001.ckpt")
        corrupt_tail(make_checkpoint(tmp_path / LATEST_NAME))
        persist.write_json(tmp_path / "m.json", {"gen": 1}, backup=True)
        persist.write_json(tmp_path / "m.json", {"gen": 2}, backup=True)
        (tmp_path / "m.json").write_bytes(b"bad")
        (tmp_path / "log.jsonl").write_bytes(
            journal_lines({"a": 1}) + b'{"torn'
        )
        _, first_exit = run_fsck([tmp_path], repair=True)
        assert first_exit == 0  # everything was repairable
        findings, second_exit = run_fsck([tmp_path])
        assert second_exit == 0
        assert all(f.status in ("ok", "legacy") for f in findings)


# -- exit codes and CLI glue --------------------------------------------------


def _args(dirs, repair=False, quiet=False):
    return argparse.Namespace(dirs=dirs, repair=repair, quiet=quiet)


class TestExitCodes:
    def test_run_fsck_flags_corruption(self, tmp_path):
        (tmp_path / "bad.json").write_bytes(b"nope")
        findings, exit_code = run_fsck([tmp_path])
        assert exit_code == 1
        assert summarize(findings)["corrupt"] == 1

    def test_command_clean_exits_zero(self, tmp_path, capsys):
        persist.write_json(tmp_path / "ok.json", {"a": 1})
        assert command_fsck(_args([str(tmp_path)])) == 0
        assert "1 ok" in capsys.readouterr().out

    def test_command_corrupt_exits_one_with_hint(self, tmp_path, capsys):
        (tmp_path / "bad.json").write_bytes(b"nope")
        assert command_fsck(_args([str(tmp_path)])) == 1
        captured = capsys.readouterr()
        assert "--repair" in captured.err

    def test_command_repair_exits_zero(self, tmp_path, capsys):
        (tmp_path / "bad.json").write_bytes(b"nope")
        assert command_fsck(_args([str(tmp_path)], repair=True)) == 0
        assert "1 repaired" in capsys.readouterr().out

    def test_explicit_missing_directory_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "absent"
        assert command_fsck(_args([str(missing)])) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_default_directories_are_skipped_quietly(self, tmp_path, capsys,
                                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert command_fsck(_args([])) == 0
        assert "scanned nothing" in capsys.readouterr().out

    def test_quiet_suppresses_healthy_lines(self, tmp_path, capsys):
        persist.write_json(tmp_path / "ok.json", {"a": 1})
        (tmp_path / "bad.json").write_bytes(b"nope")
        command_fsck(_args([str(tmp_path)], quiet=True))
        out = capsys.readouterr().out
        assert "bad.json" in out
        assert "ok.json" not in out
