"""RL007 persist-discipline: raw state-file writes inside the
persistence-owning packages must route through ``repro.persist``."""

import pytest

from tests.unit.lint_program.helpers import findings_for, lint_project, write_project


def _findings(tmp_path, files):
    write_project(tmp_path, files)
    report, _ = lint_project(tmp_path, program=False)
    return findings_for(report, "RL007")


@pytest.mark.parametrize("statement,shape", [
    ("open(path, 'w')", 'open(..., "w")'),
    ("open(path, 'wb')", 'open(..., "wb")'),
    ("open(path, 'a')", 'open(..., "a")'),
    ("open(path, 'r+')", 'open(..., "r+")'),
    ("open(path, mode='w')", 'open(..., "w")'),
    ("json.dump(payload, handle)", "json.dump(...)"),
    ("pickle.dump(payload, handle)", "pickle.dump(...)"),
    ("path.write_text('x')", ".write_text(...)"),
    ("path.write_bytes(b'x')", ".write_bytes(...)"),
    ("path.open('w')", '.open("w")'),
    ("path.open(mode='ab')", '.open("ab")'),
])
def test_raw_write_shapes_are_flagged(tmp_path, statement, shape):
    findings = _findings(tmp_path, {
        "snapshot/writer.py": (
            "import json\n"
            "import pickle\n"
            "def save(path, payload, handle):\n"
            f"    {statement}\n"
        ),
    })
    assert len(findings) == 1
    assert shape in findings[0].message
    assert "repro.persist" in findings[0].message


@pytest.mark.parametrize("statement", [
    "open(path)",                 # default mode is read
    "open(path, 'r')",
    "open(path, 'rb')",
    "path.open('r')",
    "path.open()",
    "path.read_text()",
    "json.dumps(payload)",        # string dump: no file handle involved
    "json.load(handle)",
    "pickle.loads(handle)",
    "open(path, mode)",           # non-literal mode: no evidence of writing
])
def test_read_shapes_are_not_flagged(tmp_path, statement):
    findings = _findings(tmp_path, {
        "sweepd/reader.py": (
            "import json\n"
            "import pickle\n"
            "def load(path, payload, handle, mode):\n"
            f"    return {statement}\n"
        ),
    })
    assert findings == []


@pytest.mark.parametrize("relpath", [
    "snapshot/checkpoint.py",
    "sweepd/manifest.py",
    "experiments/runner.py",
    "experiments/nested/deep.py",
    "bench.py",
])
def test_scope_covers_every_persistence_package(tmp_path, relpath):
    findings = _findings(tmp_path, {
        relpath: "def save(path):\n    open(path, 'w')\n",
    })
    assert len(findings) == 1
    assert findings[0].path == relpath


@pytest.mark.parametrize("relpath", [
    "sim/core.py",
    "util/io_helpers.py",
    "figures.py",
])
def test_out_of_scope_files_are_ignored(tmp_path, relpath):
    findings = _findings(tmp_path, {
        relpath: "def save(path):\n    open(path, 'w')\n",
    })
    assert findings == []


def test_pragma_suppresses_a_justified_site(tmp_path):
    write_project(tmp_path, {
        "snapshot/rotate.py": (
            "def rotate(path, target):\n"
            "    target.write_bytes(path.read_bytes())"
            "  # repro-lint: disable=RL007\n"
        ),
    })
    report, _ = lint_project(tmp_path, program=False)
    assert findings_for(report, "RL007") == []
    assert report.suppressed >= 1


def test_multiple_sites_each_get_a_finding(tmp_path):
    findings = _findings(tmp_path, {
        "experiments/dumper.py": (
            "import json\n"
            "def save(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(payload, handle)\n"
            "    path.write_text('done')\n"
        ),
    })
    assert len(findings) == 3


def test_repo_tip_is_clean():
    """The repo's own persistence packages honour their discipline."""
    from pathlib import Path

    repo_src = Path(__file__).resolve().parents[2] / "src" / "repro"
    report, _ = lint_project(repo_src, program=False)
    assert findings_for(report, "RL007") == []
