"""Unit tests for the extras workload suite (repro.workloads.extras)."""

import itertools

import pytest

from repro.common.addr import page_of
from repro.common.rng import DeterministicRng
from repro.sim.system import System
from repro.common.config import default_system_config
from repro.workloads.extras import (
    EXTRA_WORKLOADS,
    btree,
    extra_workload_by_name,
    gups,
    scanjoin,
)
from repro.workloads.synthetic import GENERATORS, HEAP_BASE

FOOTPRINT = 128


def take(generator, n):
    return list(itertools.islice(generator, n))


def rng(name="x"):
    return DeterministicRng(name, 0)


class TestGenerators:
    @pytest.mark.parametrize("name", ["gups", "btree", "scanjoin"])
    def test_registered(self, name):
        assert name in GENERATORS

    @pytest.mark.parametrize("gen", [gups, btree, scanjoin])
    def test_addresses_in_footprint(self, gen):
        ops = take(gen(rng(), FOOTPRINT), 3000)
        for op in ops:
            assert 0 <= page_of(op.vaddr - HEAP_BASE) < FOOTPRINT

    @pytest.mark.parametrize("gen", [gups, btree, scanjoin])
    def test_deterministic(self, gen):
        assert take(gen(rng(), FOOTPRINT), 500) == take(gen(rng(), FOOTPRINT), 500)

    def test_gups_has_no_locality(self):
        ops = take(gups(rng(), FOOTPRINT), 4000)
        pages = [page_of(op.vaddr) for op in ops]
        runs = [len(list(g)) for _, g in itertools.groupby(pages)]
        assert max(runs) <= 3  # no flurries

    def test_btree_top_levels_hot(self):
        ops = take(btree(rng(), FOOTPRINT, hot_level_pages=8), 8000)
        hot = sum(1 for op in ops if page_of(op.vaddr - HEAP_BASE) < 8)
        # Every probe touches the root region several times.
        assert hot > len(ops) * 0.3

    def test_scanjoin_hash_table_hot(self):
        ops = take(scanjoin(rng(), FOOTPRINT, hash_table_fraction=0.1), 8000)
        hash_pages = int(FOOTPRINT * 0.1)
        probes = sum(1 for op in ops if page_of(op.vaddr - HEAP_BASE) < hash_pages)
        assert probes > 0


class TestExtraWorkloads:
    def test_three_extras(self):
        assert len(EXTRA_WORKLOADS) == 3
        assert all(spec.suite == "extras" for spec in EXTRA_WORKLOADS)

    def test_lookup(self):
        assert extra_workload_by_name("gupsx4").cores == 4
        with pytest.raises(KeyError):
            extra_workload_by_name("nope")

    def test_extras_do_not_pollute_table3(self):
        from repro.workloads import all_workloads

        names = {spec.name for spec in all_workloads()}
        assert "gupsx4" not in names

    def test_extras_simulate(self):
        spec = extra_workload_by_name("btreex4")
        config = default_system_config(scale=1024, cores=spec.cores)
        system = System(config, "pageseer", spec, 1024)
        metrics = system.run(400, 400)
        assert metrics.instructions > 0

    def test_gups_resists_swapping(self):
        """The adversarial case: GUPS pages never earn a prefetch swap."""
        spec = extra_workload_by_name("gupsx4")
        config = default_system_config(scale=1024, cores=spec.cores)
        system = System(config, "pageseer", spec, 1024)
        metrics = system.run(1500, 2000)
        assert metrics.prefetch_swaps <= metrics.swaps_total
        assert metrics.swaps_mmu < 20
