"""Unit tests for the CAMEO baseline (repro.baselines.cameo)."""

import pytest

from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.baselines.cameo import CameoHmc
from repro.vm.os_model import OsModel


def make_cameo(cores=1):
    config = default_system_config(scale=1024, cores=cores)
    stats = StatsRegistry()
    os_model = OsModel(config.memory)
    return CameoHmc(config, os_model, stats), config, stats


def slow_line(hmc, index=0):
    return hmc.fast_lines + index


class TestGeometry:
    def test_line_counts(self):
        hmc, config, _ = make_cameo()
        assert hmc.fast_lines == config.memory.dram.capacity_bytes // 64
        assert hmc.slow_lines == config.memory.nvm.capacity_bytes // 64

    def test_groups_direct_mapped(self):
        hmc, _, _ = make_cameo()
        fast = hmc.fast_lines
        assert hmc.group_of(0) == 0
        assert hmc.group_of(fast) == 0
        assert hmc.group_of(fast + 3) == 3
        assert hmc.group_of(fast + fast) == 0


class TestSwapOnEveryAccess:
    def test_slow_access_swaps_immediately(self):
        hmc, _, stats = make_cameo()
        # Use a group whose fast slot is not metadata-protected.
        line = slow_line(hmc, hmc.fast_lines - 1)
        hmc.handle_request(0, line, False, 1)
        assert stats.get("cameo/swaps") == 1
        assert hmc._slot(line) < hmc.fast_lines

    def test_first_access_still_serviced_slow(self):
        hmc, _, stats = make_cameo()
        line = slow_line(hmc, hmc.fast_lines - 1)
        hmc.handle_request(0, line, False, 1)
        assert stats.get("hmc/serviced_nvm") == 1

    def test_second_access_serviced_fast(self):
        hmc, _, stats = make_cameo()
        line = slow_line(hmc, hmc.fast_lines - 1)
        finish = hmc.handle_request(0, line, False, 1)
        hmc.handle_request(finish + 1000, line, False, 1)
        assert stats.get("hmc/serviced_dram") == 1

    def test_conflicting_lines_thrash(self):
        """Two same-group hot lines evict each other (CAMEO's weakness)."""
        hmc, _, stats = make_cameo()
        a = slow_line(hmc, hmc.fast_lines - 1)
        b = a + hmc.fast_lines  # same group
        now = 0
        for _ in range(4):
            now = hmc.handle_request(now + 1000, a, False, 1)
            now = hmc.handle_request(now + 1000, b, False, 1)
        # Every access misses to slow memory because the other line
        # displaced it: all (or all but the first) swaps keep happening.
        assert stats.get("cameo/swaps") >= 7

    def test_protected_group_not_swapped(self):
        hmc, _, stats = make_cameo()
        assert hmc._line_is_protected(0)
        hmc.handle_request(0, slow_line(hmc, 0), False, 1)
        assert stats.get("cameo/swaps") == 0
        assert stats.get("cameo/declined_protected") == 1

    def test_displaced_line_tracked(self):
        hmc, _, _ = make_cameo()
        line = slow_line(hmc, hmc.fast_lines - 1)
        fast_slot = hmc.group_of(line)
        hmc.handle_request(0, line, False, 1)
        assert hmc._slot(fast_slot) == line  # old occupant now at line's home


class TestRemapCache:
    def test_miss_then_hit(self):
        hmc, _, stats = make_cameo()
        line = slow_line(hmc, hmc.fast_lines - 1)
        hmc.handle_request(0, line, False, 1)
        hmc.handle_request(5000, line, False, 1)
        assert stats.get("cameo/remap_misses") == 1
        assert stats.get("cameo/remap_hits") == 1

    def test_line_granularity_metadata_thrashes(self):
        """Distinct lines need distinct entries — unlike PoM's 2KB groups."""
        hmc, _, stats = make_cameo()
        capacity = hmc._remap_capacity
        base = slow_line(hmc, hmc.fast_lines - 1)
        now = 0
        for k in range(capacity + 8):
            now = hmc.handle_request(now + 100, base - 64 * k, False, 1)
        # Revisit the first line: its entry has been evicted.
        misses_before = stats.get("cameo/remap_misses")
        hmc.handle_request(now + 100, base, False, 1)
        assert stats.get("cameo/remap_misses") == misses_before + 1
