"""Unit tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_scheme_unless_resuming(self, capsys):
        # --scheme/--workload are optional at parse time (a --resume run
        # takes both from the checkpoint header) but required without it.
        args = build_parser().parse_args(["run", "--workload", "lbmx4"])
        assert args.scheme is None
        assert main(["run", "--workload", "lbmx4"]) == 2
        assert "--scheme and --workload are required" in capsys.readouterr().err

    def test_run_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--scheme", "bogus", "--workload", "lbmx4"]
            )

    def test_variant_choices(self):
        args = build_parser().parse_args(
            ["run", "--scheme", "pageseer", "--workload", "lbmx4",
             "--variant", "nocorr"]
        )
        assert args.variant == "nocorr"


class TestCommands:
    def test_list_schemes(self, capsys):
        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        for scheme in ("pageseer", "pom", "mempod", "cameo", "noswap"):
            assert scheme in out

    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "lbmx4" in out
        assert "mix6" in out
        assert out.count("\n") == 26

    def test_run_command(self, capsys):
        code = main([
            "run", "--scheme", "noswap", "--workload", "milcx4",
            "--scale", "1024", "--measure-ops", "300", "--warmup-ops", "300",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ipc" in out
        assert "ammat" in out

    def test_energy_command(self, capsys):
        code = main([
            "energy", "--workload", "milcx4",
            "--scale", "1024", "--measure-ops", "300", "--warmup-ops", "300",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "prtc" in out
        assert "TOTAL" in out

    def test_trace_record_and_run(self, capsys, tmp_path):
        trace = tmp_path / "c0.trace"
        assert main([
            "trace-record", "--workload", "milcx4", "--core", "0",
            "--count", "500", "--out", str(trace), "--scale", "1024",
        ]) == 0
        assert trace.exists()
        assert main([
            "trace-run", "--traces", str(trace), "--scheme", "noswap",
            "--scale", "1024", "--measure-ops", "200", "--warmup-ops", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded 500 ops" in out
        assert "ipc" in out

    def test_report_command_restricted(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_file = tmp_path / "report.txt"
        code = main([
            "report", "--workloads", "milcx4",
            "--scale", "1024", "--measure-ops", "300", "--warmup-ops", "400",
            "--out", str(out_file),
        ])
        assert code == 0
        assert "Figure 14" in out_file.read_text()
