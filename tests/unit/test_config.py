"""Unit tests for the configuration dataclasses (repro.common.config)."""

import pytest

from repro.common.config import (
    CYCLES_PER_MEMORY_CYCLE,
    CacheConfig,
    CoreConfig,
    HybridMemoryConfig,
    MemPodConfig,
    MemoryTimingConfig,
    PageSeerConfig,
    PomConfig,
    SystemConfig,
    TlbConfig,
    default_system_config,
    dram_timing_table1,
    nvm_timing_table1,
)
from repro.common.errors import ConfigError


class TestTable1Values:
    """The defaults must match the paper's Table I."""

    def test_dram_timing(self):
        dram = dram_timing_table1()
        assert (dram.t_cas, dram.t_rcd, dram.t_ras) == (11, 11, 28)
        assert (dram.t_rp, dram.t_wr) == (11, 12)
        assert dram.channels == 4
        assert dram.ranks_per_channel == 1
        assert dram.banks_per_rank == 8
        assert dram.capacity_bytes == 512 * 1024 * 1024

    def test_nvm_timing(self):
        nvm = nvm_timing_table1()
        assert (nvm.t_cas, nvm.t_rcd, nvm.t_ras) == (11, 58, 80)
        assert (nvm.t_rp, nvm.t_wr) == (11, 180)
        assert nvm.channels == 2
        assert nvm.ranks_per_channel == 2
        assert nvm.capacity_bytes == 4 * 1024 * 1024 * 1024

    def test_cache_hierarchy(self):
        config = SystemConfig()
        assert config.l1.size_bytes == 32 * 1024 and config.l1.ways == 8
        assert config.l2.size_bytes == 256 * 1024 and config.l2.ways == 8
        assert config.l3.size_bytes == 8 * 1024 * 1024 and config.l3.ways == 16

    def test_tlbs(self):
        config = SystemConfig()
        assert config.l1_tlb.entries == 64
        assert config.l2_tlb.entries == 1024

    def test_clock_ratio(self):
        assert CYCLES_PER_MEMORY_CYCLE == 2


class TestTable2Values:
    """PageSeer parameters must match Table II."""

    def test_thresholds(self):
        ps = PageSeerConfig()
        assert ps.pct_prefetch_threshold == 14
        assert ps.hpt_swap_threshold == 6

    def test_counter_width(self):
        ps = PageSeerConfig()
        assert ps.counter_bits == 6
        assert ps.counter_max == 63

    def test_hint_latency(self):
        assert PageSeerConfig().mmu_hint_latency_cycles == 2

    def test_decay_interval_is_50k_at_1ghz(self):
        assert PageSeerConfig().hpt_decay_interval_cycles == 100_000

    def test_prt_ways(self):
        assert PageSeerConfig().prt_ways == 4

    def test_mmu_driver_lines(self):
        assert PageSeerConfig().mmu_driver_pte_lines == 16

    def test_structure_budgets(self):
        ps = PageSeerConfig()
        # 32 KB at 3.5 B/entry and 10.5 B/entry (Table II).
        assert ps.prtc_entries * 3.5 <= 33 * 1024
        assert ps.pctc_entries * 10.5 <= 33 * 1024
        assert ps.hpt_entries * 5.25 <= 6 * 1024
        assert ps.filter_entries * 17.25 <= 2.5 * 1024


class TestValidation:
    def test_cache_size_divisibility(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, 3, 1)

    def test_tlb_ways_divide_entries(self):
        with pytest.raises(ConfigError):
            TlbConfig("bad", 10, 3, 1)

    def test_core_positive(self):
        with pytest.raises(ConfigError):
            CoreConfig(base_cpi=0)

    def test_memory_capacity_positive(self):
        with pytest.raises(ConfigError):
            MemoryTimingConfig("bad", 0, 1, 1, 1, 1, 1, 1, 1, 1)

    def test_row_power_of_two(self):
        with pytest.raises(ConfigError):
            MemoryTimingConfig("bad", 4096, 1, 1, 1, 1, 1, 1, 1, 1, row_bytes=300)

    def test_system_needs_cores(self):
        with pytest.raises(ConfigError):
            SystemConfig(cores=0)

    def test_scale_positive(self):
        with pytest.raises(ConfigError):
            SystemConfig().scaled(0)


class TestScaling:
    def test_memory_scales_fully(self):
        config = SystemConfig().scaled(64)
        assert config.memory.dram.capacity_bytes == 8 * 1024 * 1024
        assert config.memory.nvm.capacity_bytes == 64 * 1024 * 1024

    def test_ratio_preserved(self):
        config = SystemConfig().scaled(64)
        assert (
            config.memory.nvm.capacity_bytes / config.memory.dram.capacity_bytes
            == 8.0
        )

    def test_timing_unchanged(self):
        config = SystemConfig().scaled(64)
        assert config.memory.nvm.t_rcd == 58
        assert config.memory.nvm.t_wr == 180

    def test_thresholds_unchanged(self):
        config = SystemConfig().scaled(256)
        assert config.pageseer.pct_prefetch_threshold == 14
        assert config.pageseer.hpt_swap_threshold == 6

    def test_tables_shrink(self):
        base = SystemConfig()
        scaled = base.scaled(64)
        assert scaled.pageseer.prtc_entries < base.pageseer.prtc_entries
        assert scaled.pom.src_entries < base.pom.src_entries
        assert scaled.mempod.remap_cache_entries < base.mempod.remap_cache_entries

    def test_caches_keep_valid_geometry(self):
        for scale in (16, 64, 256, 512, 1024):
            config = SystemConfig().scaled(scale)
            for cache in (config.l1, config.l2, config.l3):
                assert cache.num_sets >= 1

    def test_tlb_keeps_valid_geometry(self):
        for scale in (16, 256, 1024):
            config = SystemConfig().scaled(scale)
            assert config.l1_tlb.entries % config.l1_tlb.ways == 0
            assert config.l2_tlb.entries % config.l2_tlb.ways == 0

    def test_default_system_config_applies_scale(self):
        config = default_system_config(scale=128, cores=6)
        assert config.cores == 6
        assert config.memory.dram.capacity_bytes == 4 * 1024 * 1024

    def test_with_cores(self):
        assert SystemConfig().with_cores(12).cores == 12


class TestHybridMemory:
    def test_page_ranges(self):
        memory = HybridMemoryConfig(
            dram=dram_timing_table1(4 * 1024 * 1024),
            nvm=nvm_timing_table1(32 * 1024 * 1024),
        )
        assert memory.dram_pages == 1024
        assert memory.nvm_pages == 8192
        assert memory.total_pages == 9216
        assert memory.is_dram_page(0)
        assert memory.is_dram_page(1023)
        assert memory.is_nvm_page(1024)
        assert memory.is_nvm_page(9215)
        assert not memory.is_nvm_page(9216)

    def test_latency_formulas(self):
        dram = dram_timing_table1()
        hit = dram.read_latency_cycles(row_hit=True, row_conflict=False)
        miss = dram.read_latency_cycles(row_hit=False, row_conflict=False)
        conflict = dram.read_latency_cycles(row_hit=False, row_conflict=True)
        assert hit == 11 * 2
        assert miss == (11 + 11) * 2
        assert conflict == (11 + 11 + 11) * 2

    def test_line_transfer_cycles(self):
        assert dram_timing_table1().line_transfer_cycles == 4 * 2


class TestBaselineConfigs:
    def test_pom_defaults(self):
        pom = PomConfig()
        assert pom.segment_bytes == 2048
        assert pom.swap_threshold == 12

    def test_mempod_defaults(self):
        mp = MemPodConfig()
        assert mp.mea_counters == 64
        assert mp.interval_cycles == 100_000
        assert mp.segment_bytes == 2048


class TestEngineSelection:
    def test_default_engine_is_batched(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_system_config(scale=1024).engine == "batched"

    def test_repro_engine_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        assert default_system_config(scale=1024).engine == "scalar"

    def test_blank_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "  ")
        assert default_system_config(scale=1024).engine == "batched"

    def test_invalid_env_engine_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ConfigError):
            default_system_config(scale=1024)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(engine="warp")

    def test_scaled_preserves_engine(self):
        config = SystemConfig(engine="scalar").scaled(1024)
        assert config.engine == "scalar"
