"""Unit tests for PoM's opt-in adaptive threshold."""

import dataclasses

import pytest

from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.baselines.pom import PomHmc
from repro.vm.os_model import OsModel


def make_adaptive_pom(**overrides):
    config = default_system_config(scale=1024, cores=1)
    overrides.setdefault("adaptive_threshold", True)
    config = dataclasses.replace(
        config, pom=dataclasses.replace(config.pom, **overrides)
    )
    stats = StatsRegistry()
    return PomHmc(config, OsModel(config.memory), stats), config, stats


def slow_line(hmc, index, offset=0):
    return (hmc.fast_segments + index) * hmc.lines_per_segment + offset


def drive_swap(hmc, index, now):
    """Push one slow segment over the (current) threshold."""
    for k in range(hmc.swap_threshold):
        now = hmc.handle_request(now + 1, slow_line(hmc, index, k % 32), False, 1)
    return now


class TestAdaptation:
    def test_starts_at_configured_threshold(self):
        hmc, config, _ = make_adaptive_pom()
        assert hmc.swap_threshold == config.pom.swap_threshold

    def test_wasted_swaps_raise_threshold(self):
        # Thrash one group with two competing slow members: every swap's
        # displaced occupant earned ~0 post-swap hits -> all wasted.
        hmc, config, stats = make_adaptive_pom(adaptive_benefit_hits=16)
        group = hmc.fast_segments - 1
        member_a = group            # slow index of first member
        member_b = group + hmc.fast_segments  # second member, same group
        now = 0
        for _ in range(10):
            for segment_index in (member_a, member_b):
                for k in range(hmc.swap_threshold):
                    now = hmc.handle_request(
                        now + 1, slow_line(hmc, segment_index, k % 32), False, 1
                    )
            # Jump past a decay interval to trigger adaptation.
            now += config.pom.counter_decay_interval_cycles
        assert hmc.swap_threshold > config.pom.swap_threshold

    def test_threshold_bounded_above(self):
        hmc, config, _ = make_adaptive_pom(threshold_max=16)
        hmc._epoch_wasted = 100
        hmc._epoch_useful = 0
        for _ in range(20):
            hmc._adapt_threshold()
            hmc._epoch_wasted = 100
        assert hmc.swap_threshold <= 16

    def test_threshold_bounded_below(self):
        hmc, config, _ = make_adaptive_pom(threshold_min=6)
        for _ in range(20):
            hmc._epoch_useful = 100
            hmc._epoch_wasted = 0
            hmc._adapt_threshold()
        assert hmc.swap_threshold >= 6

    def test_useful_swaps_lower_threshold(self):
        hmc, config, _ = make_adaptive_pom()
        hmc._epoch_useful = 10
        hmc._epoch_wasted = 1
        hmc._adapt_threshold()
        assert hmc.swap_threshold == config.pom.swap_threshold - 2

    def test_small_samples_ignored(self):
        hmc, config, _ = make_adaptive_pom()
        hmc._epoch_useful = 1
        hmc._epoch_wasted = 2
        hmc._adapt_threshold()
        assert hmc.swap_threshold == config.pom.swap_threshold

    def test_disabled_keeps_threshold_fixed(self):
        hmc, config, stats = make_adaptive_pom(adaptive_threshold=False)
        now = 0
        for _ in range(4):
            now = drive_swap(hmc, hmc.fast_segments - 1, now)
            now += config.pom.counter_decay_interval_cycles
            hmc.handle_request(now, slow_line(hmc, 5), False, 1)
        assert hmc.swap_threshold == config.pom.swap_threshold
        assert stats.get("pom/threshold_adaptations") == 0
