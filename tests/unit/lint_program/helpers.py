"""Shared fixture plumbing for the whole-program lint tests.

Each test builds a synthetic multi-module mini-project in ``tmp_path``
(package dirs like ``sim/`` so the package-scoping heuristics apply),
then lints it with ``program=True`` and asserts on the findings and the
model.  ``write_project`` returns the root; ``lint_project`` runs the
engine the same way ``repro lint --program`` does.
"""

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.lint.engine import Finding, LintEngine, LintReport


def write_project(root: Path, files: Dict[str, str]) -> Path:
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return root


def lint_project(
    root: Path,
    program: bool = True,
    cache_path: Optional[Path] = None,
) -> Tuple[LintReport, LintEngine]:
    engine = LintEngine(root=root, program=program, cache_path=cache_path)
    report = engine.run([root])
    return report, engine


def findings_for(report: LintReport, rule: str) -> List[Finding]:
    return [finding for finding in report.findings if finding.rule == rule]
