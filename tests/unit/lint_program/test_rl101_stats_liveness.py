"""RL101: cross-module stats liveness (positive and negative fixtures)."""

from tests.unit.lint_program.helpers import findings_for, lint_project, write_project


def test_positive_typo_between_sim_and_report_layers(tmp_path):
    write_project(tmp_path, {
        "sim/model.py": (
            "def tick(stats):\n"
            "    stats.add('sim/requests', 1)\n"
        ),
        "report/figs.py": (
            "def table(stats):\n"
            "    return stats.get('sim/reqests')\n"  # typo'd key
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL101")
    warning = [f for f in findings if f.severity.label == "warning"]
    assert len(warning) == 1
    assert warning[0].path == "report/figs.py"
    assert 'sim/reqests' in warning[0].message
    assert 'did you mean "sim/requests"?' in warning[0].message
    assert report.exit_code == 1


def test_negative_matching_keys_pass(tmp_path):
    write_project(tmp_path, {
        "sim/model.py": (
            "def tick(stats):\n"
            "    stats.add('sim/requests', 1)\n"
        ),
        "report/figs.py": (
            "def table(stats):\n"
            "    return stats.get('sim/requests')\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL101") == []
    assert report.exit_code == 0


def test_reads_through_snapshot_copies_count(tmp_path):
    # RL002's heuristic only sees `stats`-named receivers; RL101 also
    # credits slash-literal reads through snapshot/metric objects.
    write_project(tmp_path, {
        "sim/model.py": (
            "def tick(stats):\n"
            "    stats.add('sim/requests', 1)\n"
        ),
        "report/figs.py": (
            "def table(snapshot):\n"
            "    return snapshot.get('sim/requests')\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL101") == []


def test_fstring_pattern_prefix_satisfies_reads(tmp_path):
    write_project(tmp_path, {
        "report/model.py": (  # outside sim packages: f-string keys allowed
            "def tick(stats, kind):\n"
            "    stats.add(f'sim/req_{kind}', 1)\n"
        ),
        "report/figs.py": (
            "def table(stats):\n"
            "    return stats.get('sim/req_load')\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    warning = [f for f in findings_for(report, "RL101") if f.severity.label == "warning"]
    assert warning == []


def test_recorded_never_read_is_informational(tmp_path):
    write_project(tmp_path, {
        "sim/model.py": (
            "def tick(stats):\n"
            "    stats.add('sim/orphan', 1)\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL101")
    assert len(findings) == 1
    assert findings[0].severity.label == "info"
    assert "sim/orphan" in findings[0].message
    assert report.exit_code == 0


def test_rl002_liveness_is_deduped_under_program_mode(tmp_path):
    files = {
        "sim/model.py": (
            "def tick(stats):\n"
            "    stats.add('sim/orphan', 1)\n"
        ),
    }
    write_project(tmp_path, files)
    with_program, _ = lint_project(tmp_path, program=True)
    without_program, _ = lint_project(tmp_path, program=False)
    # Same defect, exactly one rule id each way.
    assert [f.rule for f in with_program.findings] == ["RL101"]
    assert [f.rule for f in without_program.findings] == ["RL002"]
