"""Analysis cache: hit/miss accounting, invalidation, pruning, versioning."""

import json

from repro.lint.program.cache import AnalysisCache
from repro.lint.program.facts import FACTS_VERSION

from tests.unit.lint_program.helpers import lint_project, write_project

PROJECT = {
    "sim/a.py": "def f(stats):\n    stats.add('sim/x', 1)\n",
    "sim/b.py": "def g(stats):\n    return stats.get('sim/x')\n",
}


def test_cold_then_warm_run(tmp_path):
    write_project(tmp_path, PROJECT)
    cache_path = tmp_path / "cache.json"
    report1, engine1 = lint_project(tmp_path, cache_path=cache_path)
    assert engine1.last_program_model.cache_misses == 2
    assert engine1.last_program_model.cache_hits == 0
    report2, engine2 = lint_project(tmp_path, cache_path=cache_path)
    assert engine2.last_program_model.cache_hits == 2
    assert engine2.last_program_model.cache_misses == 0
    # Identical conclusions either way.
    assert [f.as_dict() for f in report1.findings] == [
        f.as_dict() for f in report2.findings
    ]


def test_edit_invalidates_only_that_file(tmp_path):
    write_project(tmp_path, PROJECT)
    cache_path = tmp_path / "cache.json"
    lint_project(tmp_path, cache_path=cache_path)
    (tmp_path / "sim" / "a.py").write_text(
        "def f(stats):\n    stats.add('sim/x', 2)\n"
    )
    _, engine = lint_project(tmp_path, cache_path=cache_path)
    assert engine.last_program_model.cache_hits == 1
    assert engine.last_program_model.cache_misses == 1


def test_stale_entries_are_pruned_on_save(tmp_path):
    write_project(tmp_path, PROJECT)
    cache_path = tmp_path / "cache.json"
    lint_project(tmp_path, cache_path=cache_path)
    (tmp_path / "sim" / "b.py").unlink()
    lint_project(tmp_path, cache_path=cache_path)
    entries = json.loads(cache_path.read_text())["entries"]
    assert len(entries) == 1
    assert all(key.startswith("sim/a.py:") for key in entries)


def test_version_mismatch_degrades_to_cold(tmp_path):
    write_project(tmp_path, PROJECT)
    cache_path = tmp_path / "cache.json"
    lint_project(tmp_path, cache_path=cache_path)
    payload = json.loads(cache_path.read_text())
    assert payload["version"] == FACTS_VERSION
    payload["version"] = FACTS_VERSION + 999
    cache_path.write_text(json.dumps(payload))
    _, engine = lint_project(tmp_path, cache_path=cache_path)
    assert engine.last_program_model.cache_hits == 0
    assert engine.last_program_model.cache_misses == 2


def test_corrupt_cache_file_is_ignored(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    cache = AnalysisCache(cache_path)
    assert cache.get("sim/a.py", "x = 1\n") is None
