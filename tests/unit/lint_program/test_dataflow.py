"""Flow-sensitive taint core: gen/kill, joins, loops, laundering.

Driven through the extractor so the policy callbacks (sources, rng
laundering, stats/state sinks) are the real ones the analyzer ships.
"""

import ast

from repro.lint.program.extract import extract_module_facts


def _flows(source, relpath="sim/mod.py"):
    facts = extract_module_facts(relpath, source, ast.parse(source))
    return [flow for fn in facts.functions.values() for flow in fn.flows]


def _sink_flows(source, relpath="sim/mod.py"):
    return [flow for flow in _flows(source, relpath) if flow.dst[0] == "sink"]


def test_direct_source_to_stats_sink():
    flows = _sink_flows(
        "import time\n"
        "def f(stats):\n"
        "    stats.add('sim/x', time.time())\n"
    )
    assert len(flows) == 1
    assert flows[0].src == ("source", "time.time()")
    assert flows[0].dst == ("sink", "stats", 'stats key "sim/x"')


def test_reassignment_kills_taint():
    flows = _sink_flows(
        "import time\n"
        "def f(stats):\n"
        "    t = time.time()\n"
        "    t = 0\n"
        "    stats.add('sim/x', t)\n"
    )
    assert flows == []


def test_branch_join_unions_taint():
    flows = _sink_flows(
        "import random\n"
        "def f(stats, cond):\n"
        "    v = 0\n"
        "    if cond:\n"
        "        v = random.random()\n"
        "    stats.add('sim/x', v)\n"
    )
    assert any(flow.src == ("source", "random.random()") for flow in flows)


def test_loop_carried_taint_converges():
    flows = _sink_flows(
        "import random\n"
        "def f(stats, items):\n"
        "    acc = 0\n"
        "    for _ in items:\n"
        "        stats.add('sim/x', acc)\n"
        "        acc = random.random()\n"
    )
    # acc is clean on iteration 1 but tainted on iteration 2: the
    # two-pass loop body must observe the carried taint.
    assert any(flow.src == ("source", "random.random()") for flow in flows)


def test_state_sink_in_sim_class():
    flows = _sink_flows(
        "import os\n"
        "class Engine:\n"
        "    def seed(self):\n"
        "        self.entropy = os.urandom(8)\n"
    )
    assert len(flows) == 1
    assert flows[0].dst == ("sink", "state", "Engine.entropy")


def test_outside_sim_packages_state_is_not_a_sink():
    flows = _sink_flows(
        "import os\n"
        "class Engine:\n"
        "    def seed(self):\n"
        "        self.entropy = os.urandom(8)\n",
        relpath="analysis/mod.py",
    )
    assert flows == []


def test_deterministic_rng_launders():
    flows = _sink_flows(
        "class Engine:\n"
        "    def seed(self, stats):\n"
        "        v = self.rng.randint(0, 4)\n"
        "        stats.add('sim/x', v)\n"
    )
    assert flows == []


def test_wrapper_calls_preserve_taint():
    flows = _sink_flows(
        "import time\n"
        "def f(stats):\n"
        "    stats.add('sim/x', int(time.time()))\n"
    )
    assert any(flow.src == ("source", "time.time()") for flow in flows)


def test_watchdog_use_without_sink_is_clean():
    flows = _sink_flows(
        "import time\n"
        "def f(stats, budget):\n"
        "    start = time.perf_counter()\n"
        "    while time.perf_counter() - start < budget:\n"
        "        stats.add('sim/x', 1)\n"
    )
    assert flows == []


def test_param_flows_are_indexed_for_callers():
    flows = _flows(
        "class Engine:\n"
        "    def record(self, stats, value):\n"
        "        stats.add('sim/x', value)\n"
    )
    # `self` excluded: stats is caller-arg 0, value is caller-arg 1.
    sinks = [flow for flow in flows if flow.dst[0] == "sink"]
    assert [flow.src for flow in sinks] == [("param", "1")]


def test_call_arg_flow_records_callee_ref():
    flows = _flows(
        "import time\n"
        "from sim.other import push\n"
        "def f():\n"
        "    push(time.time())\n"
    )
    assert any(
        flow.dst == ("call_arg", "0", "local", "push")
        and flow.src == ("source", "time.time()")
        for flow in flows
    )
