"""Symbol table: module naming, import resolution, base-class walking."""

from repro.lint.program.model import build_program_model
from repro.lint.program.symbols import module_name_for

from tests.unit.lint_program.helpers import write_project


def test_module_name_for_layouts():
    assert module_name_for("src/repro/sim/system.py") == "repro.sim.system"
    assert module_name_for("sim/model.py") == "sim.model"
    assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"
    assert module_name_for("top.py") == "top"


def _model(tmp_path, files):
    write_project(tmp_path, files)
    from repro.lint.engine import LintEngine

    engine = LintEngine(root=tmp_path, program=True)
    engine.run([tmp_path])
    return engine.last_program_model


def test_resolves_imported_function_and_class(tmp_path):
    model = _model(tmp_path, {
        "sim/parts.py": (
            "class Widget:\n"
            "    def spin(self):\n"
            "        return 1\n"
            "def helper():\n"
            "    return 2\n"
        ),
        "sim/model.py": (
            "from sim.parts import Widget, helper\n"
            "def run():\n"
            "    w = Widget()\n"
            "    return helper()\n"
        ),
    })
    table = model.table
    assert table.resolve_ref("sim.model", ("local", "helper")) == "sim.parts:helper"
    assert table.resolve_class("sim.model", ("local", "Widget")) == "sim.parts:Widget"
    # Dotted access through a module import.
    assert table.resolve_ref("sim.model", ("dotted", "Widget", "spin")) == (
        "sim.parts:Widget.spin"
    )


def test_method_resolution_walks_project_bases(tmp_path):
    model = _model(tmp_path, {
        "sim/base.py": (
            "class Base:\n"
            "    def step(self):\n"
            "        return 0\n"
        ),
        "sim/impl.py": (
            "from sim.base import Base\n"
            "class Impl(Base):\n"
            "    def extra(self):\n"
            "        return self.step()\n"
        ),
    })
    assert model.table.method_of("sim.impl:Impl", "step") == "sim.base:Base.step"
    assert model.table.method_of("sim.impl:Impl", "extra") == "sim.impl:Impl.extra"
    assert model.table.method_of("sim.impl:Impl", "missing") is None


def test_bare_annotation_name_resolves_when_unique(tmp_path):
    model = _model(tmp_path, {
        "sim/a.py": "class OnlyOnce:\n    pass\n",
        "sim/b.py": "class Other:\n    pass\n",
    })
    # No import anywhere, but the name is program-unique.
    assert model.table.resolve_class("sim.b", ("local", "OnlyOnce")) == "sim.a:OnlyOnce"


def test_class_table_targets(tmp_path):
    model = _model(tmp_path, {
        "sim/schemes.py": (
            "class A:\n    pass\n"
            "class B:\n    pass\n"
            "SCHEMES = {'a': A, 'b': B}\n"
        ),
    })
    assert sorted(model.table.class_table_targets("sim.schemes", "SCHEMES")) == [
        "sim.schemes:A", "sim.schemes:B",
    ]
