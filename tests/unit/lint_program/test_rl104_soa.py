"""RL104: SoA kernel contracts (positive and negative)."""

from tests.unit.lint_program.helpers import findings_for, lint_project, write_project


def test_positive_mixed_dtype_allocations(tmp_path):
    write_project(tmp_path, {
        "mem/pool.py": (
            "import numpy as np\n"
            "class Pool:\n"
            "    def __init__(self, n):\n"
            "        self.ticks = np.zeros(n, dtype=np.int64)\n"
            "    def grow(self, n):\n"
            "        self.ticks = np.zeros(n)\n"  # implicit float64
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL104")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.severity.label == "warning"
    assert finding.line == 6  # the widening (implicit float64) site
    assert "implicit float64" in finding.message
    assert "int64" in finding.message
    assert report.exit_code == 1


def test_positive_cross_module_astype_widening_in_hot_kernel(tmp_path):
    write_project(tmp_path, {
        "mem/pool.py": (
            "import numpy as np\n"
            "class Pool:\n"
            "    def __init__(self, n):\n"
            "        self.ticks = np.zeros(n, dtype=np.int32)\n"
        ),
        "sim/kernel.py": (
            "import numpy as np\n"
            "# repro-hot\n"
            "def drain(pool):\n"
            "    return pool.ticks.astype(np.float64)\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL104")
    assert len(findings) == 1
    assert findings[0].path == "sim/kernel.py"
    assert "astype(float64)" in findings[0].message
    assert "Pool.ticks" in findings[0].message


def test_positive_scalar_item_roundtrip_in_hot_loop(tmp_path):
    write_project(tmp_path, {
        "sim/kernel.py": (
            "import numpy as np\n"
            "# repro-hot\n"
            "def drain(arr, n):\n"
            "    out = []\n"
            "    for i in range(n):\n"
            "        out.append(arr[i].item())\n"
            "    return out\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL104")
    assert len(findings) == 1
    assert ".item()" in findings[0].message
    assert findings[0].severity.label == "warning"


def test_copying_allocator_in_hot_kernel_is_informational(tmp_path):
    write_project(tmp_path, {
        "sim/kernel.py": (
            "import numpy as np\n"
            "# repro-hot\n"
            "def extend(a, b):\n"
            "    return np.concatenate([a, b])\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL104")
    assert len(findings) == 1
    assert findings[0].severity.label == "info"
    assert report.exit_code == 0


def test_negative_consistent_dtypes_pass(tmp_path):
    write_project(tmp_path, {
        "mem/pool.py": (
            "import numpy as np\n"
            "class Pool:\n"
            "    def __init__(self, n):\n"
            "        self.ticks = np.zeros(n, dtype=np.int64)\n"
            "    def grow(self, n):\n"
            "        self.ticks = np.zeros(n, dtype=np.int64)\n"
        ),
        "sim/kernel.py": (
            "import numpy as np\n"
            "# repro-hot\n"
            "def drain(pool):\n"
            "    return pool.ticks.astype(np.int32)\n"  # narrowing: no copy blowup
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL104") == []


def test_negative_cold_functions_are_not_policed(tmp_path):
    write_project(tmp_path, {
        "sim/kernel.py": (
            "import numpy as np\n"
            "def drain(arr, n):\n"  # no repro-hot marker
            "    return [arr[i].item() for i in range(n)]\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL104") == []


# -- PR-9: OrderedDict probes in hot kernels --------------------------------

_REFERENCE_WITH_SOA = (
    "from collections import OrderedDict\n"
    "class Tlb:\n"
    "    def __init__(self, n):\n"
    "        self._sets = [OrderedDict() for _ in range(n)]\n"
    "class SoaTlb:\n"
    "    def __init__(self, n):\n"
    "        self._way_of = [dict() for _ in range(n)]\n"
)


def test_positive_odict_probe_in_hot_kernel(tmp_path):
    write_project(tmp_path, {
        "vm/tlb.py": _REFERENCE_WITH_SOA,
        "sim/kernel.py": (
            "# repro-hot\n"
            "def drain(tlb, index, key):\n"
            "    return tlb._sets[index].get(key)\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL104")
    assert len(findings) == 1
    assert findings[0].path == "sim/kernel.py"
    assert ".get()" in findings[0].message
    assert "_sets" in findings[0].message
    assert "SoaTlb" in findings[0].message or "SoA" in findings[0].message


def test_positive_odict_probe_through_local_alias(tmp_path):
    write_project(tmp_path, {
        "vm/tlb.py": _REFERENCE_WITH_SOA,
        "sim/kernel.py": (
            "# repro-hot\n"
            "def drain(tlb, index, key):\n"
            "    entries = tlb._sets[index]\n"
            "    entries.move_to_end(key)\n"
            "    return entries.popitem(last=False)\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL104")
    assert len(findings) == 2
    assert {".move_to_end()", ".popitem()"} == {
        f.message.split(" ")[2] for f in findings
    }


def test_negative_odict_without_soa_counterpart_is_out_of_scope(tmp_path):
    """Controller CAMs where OrderedDict IS the model do not flag."""
    write_project(tmp_path, {
        "core/pct.py": (
            "from collections import OrderedDict\n"
            "class FilterTable:\n"
            "    def __init__(self):\n"
            "        self._entries = OrderedDict()\n"
        ),
        "sim/kernel.py": (
            "# repro-hot\n"
            "def drain(table, key):\n"
            "    return table._entries.get(key)\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL104") == []


def test_negative_plain_dict_probe_is_clean(tmp_path):
    write_project(tmp_path, {
        "vm/tlb.py": _REFERENCE_WITH_SOA,
        "sim/kernel.py": (
            "# repro-hot\n"
            "def drain(soa, index, key):\n"
            "    return soa._way_of[index].get(key)\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL104") == []


def test_negative_cold_function_probe_is_clean(tmp_path):
    write_project(tmp_path, {
        "vm/tlb.py": _REFERENCE_WITH_SOA,
        "sim/audit.py": (
            "def audit(tlb, index, key):\n"
            "    return tlb._sets[index].get(key)\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL104") == []
