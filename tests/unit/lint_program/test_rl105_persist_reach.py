"""RL105: raw state writes laundered through out-of-scope helpers.

RL007 sees a raw ``open(path, "w")`` inside the persistence packages;
RL105 follows call edges out of those packages and flags the boundary
call site when any transitively-reached helper performs the write.
"""

from tests.unit.lint_program.helpers import findings_for, lint_project, write_project


def _findings(tmp_path, files):
    write_project(tmp_path, files)
    report, _ = lint_project(tmp_path, program=True)
    return findings_for(report, "RL105")


def test_direct_laundering_is_flagged_at_the_call_site(tmp_path):
    findings = _findings(tmp_path, {
        "snapshot/saver.py": (
            "from util.io import dump_state\n"
            "def save(path, payload):\n"
            "    dump_state(path, payload)\n"
        ),
        "util/io.py": (
            "def dump_state(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(repr(payload))\n"
        ),
    })
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "snapshot/saver.py"
    assert finding.line == 3
    assert "util.io:dump_state" in finding.message
    assert 'open(..., "w")' in finding.message
    assert "util/io.py:2" in finding.message


def test_two_hop_laundering_is_caught(tmp_path):
    findings = _findings(tmp_path, {
        "sweepd/store.py": (
            "from util.outer import record\n"
            "def persist(path, payload):\n"
            "    record(path, payload)\n"
        ),
        "util/outer.py": (
            "from util.inner import spill\n"
            "def record(path, payload):\n"
            "    spill(path, payload)\n"
        ),
        "util/inner.py": (
            "def spill(path, payload):\n"
            "    path.write_text(repr(payload))\n"
        ),
    })
    assert len(findings) == 1
    assert findings[0].path == "sweepd/store.py"
    assert "util.outer:record" in findings[0].message
    assert ".write_text(...)" in findings[0].message


def test_clean_helper_is_not_flagged(tmp_path):
    findings = _findings(tmp_path, {
        "snapshot/saver.py": (
            "from util.fmt import render\n"
            "def save(payload):\n"
            "    return render(payload)\n"
        ),
        "util/fmt.py": (
            "def render(payload):\n"
            "    return repr(payload)\n"
        ),
    })
    assert findings == []


def test_persist_layer_itself_is_exempt(tmp_path):
    """Calling repro.persist from scoped code is the POINT, not a bypass."""
    findings = _findings(tmp_path, {
        "snapshot/saver.py": (
            "from repro.persist import atomic_write\n"
            "def save(path, data):\n"
            "    atomic_write(path, data)\n"
        ),
        "repro/persist.py": (
            "import os\n"
            "def atomic_write(path, data):\n"
            "    with open(path, 'wb') as handle:\n"
            "        handle.write(data)\n"
            "    os.replace(path, path)\n"
        ),
    })
    assert findings == []


def test_in_scope_callee_is_rl007_business_not_rl105(tmp_path):
    """A raw write inside the scope is flagged once, by the per-file rule."""
    write_project(tmp_path, {
        "snapshot/saver.py": (
            "from snapshot.raw import spill\n"
            "def save(path, payload):\n"
            "    spill(path, payload)\n"
        ),
        "snapshot/raw.py": (
            "def spill(path, payload):\n"
            "    open(path, 'w').write(repr(payload))\n"
        ),
    })
    report, _ = lint_project(tmp_path, program=True)
    assert findings_for(report, "RL105") == []
    rl007 = findings_for(report, "RL007")
    assert len(rl007) == 1
    assert rl007[0].path == "snapshot/raw.py"


def test_out_of_scope_caller_is_not_flagged(tmp_path):
    """Laundering only matters when the *caller* owns durable state."""
    findings = _findings(tmp_path, {
        "sim/engine.py": (
            "from util.io import dump_state\n"
            "def trace(path, payload):\n"
            "    dump_state(path, payload)\n"
        ),
        "util/io.py": (
            "def dump_state(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(repr(payload))\n"
        ),
    })
    assert findings == []


def test_each_boundary_call_site_reported_once(tmp_path):
    findings = _findings(tmp_path, {
        "experiments/cache.py": (
            "from util.io import dump_state\n"
            "def store(path, payload):\n"
            "    dump_state(path, payload)\n"
            "def store_again(path, payload):\n"
            "    dump_state(path, payload)\n"
        ),
        "util/io.py": (
            "def dump_state(path, payload):\n"
            "    path.write_bytes(payload)\n"
        ),
    })
    assert len(findings) == 2
    assert sorted(f.line for f in findings) == [3, 5]


def test_pragma_at_the_call_site_suppresses(tmp_path):
    write_project(tmp_path, {
        "snapshot/saver.py": (
            "from util.io import dump_state\n"
            "def save(path, payload):\n"
            "    dump_state(path, payload)"
            "  # repro-lint: disable=RL105\n"
        ),
        "util/io.py": (
            "def dump_state(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(repr(payload))\n"
        ),
    })
    report, _ = lint_project(tmp_path, program=True)
    assert findings_for(report, "RL105") == []
    assert report.suppressed >= 1


def test_raw_write_facts_are_extracted(tmp_path):
    write_project(tmp_path, {
        "util/io.py": (
            "import json\n"
            "def dump(path, payload, handle):\n"
            "    json.dump(payload, handle)\n"
            "def read(path):\n"
            "    return path.read_text()\n"
        ),
    })
    _, engine = lint_project(tmp_path, program=True)
    facts = engine.last_program_model.table.modules["util.io"]
    assert [w.detail for w in facts.functions["dump"].raw_writes] == [
        "json.dump(...)"
    ]
    assert facts.functions["read"].raw_writes == []
