"""Call graph: cross-module edge resolution, closure, DOT rendering."""

from repro.lint.engine import LintEngine

from tests.unit.lint_program.helpers import write_project

PROJECT = {
    "sim/parts.py": (
        "def leaf():\n"
        "    return 1\n"
        "def middle():\n"
        "    return leaf()\n"
    ),
    "sim/model.py": (
        "from sim.parts import middle\n"
        "class Engine:\n"
        "    def tick(self):\n"
        "        return self.helper()\n"
        "    def helper(self):\n"
        "        return middle()\n"
    ),
}


def _graph(tmp_path):
    write_project(tmp_path, PROJECT)
    engine = LintEngine(root=tmp_path, program=True)
    engine.run([tmp_path])
    return engine.last_program_model.graph


def test_cross_module_and_self_edges_resolve(tmp_path):
    graph = _graph(tmp_path)
    pairs = {(edge.caller, edge.callee) for edge in graph.edges}
    assert ("sim.model:Engine.tick", "sim.model:Engine.helper") in pairs
    assert ("sim.model:Engine.helper", "sim.parts:middle") in pairs
    assert ("sim.parts:middle", "sim.parts:leaf") in pairs


def test_reachability_closure(tmp_path):
    graph = _graph(tmp_path)
    reachable = graph.reachable_from(["sim.model:Engine.tick"])
    assert "sim.parts:leaf" in reachable
    assert graph.reachable_from(["sim.parts:leaf"]) == {"sim.parts:leaf"}


def test_dot_dump_contains_clusters_and_edges(tmp_path):
    dot = _graph(tmp_path).to_dot()
    assert dot.startswith("digraph callgraph {")
    assert 'label="sim.parts";' in dot
    assert '"sim.parts:middle" -> "sim.parts:leaf";' in dot
