"""RL103: checkpoint reachability proof (positive and negative)."""

from tests.unit.lint_program.helpers import findings_for, lint_project, write_project


def test_positive_reachable_class_with_lambda_attr(tmp_path):
    write_project(tmp_path, {
        "sim/system.py": (
            "from sim.parts import Pipeline\n"
            "class System:\n"
            "    def __init__(self):\n"
            "        self.pipeline = Pipeline()\n"
        ),
        "sim/parts.py": (
            "class Pipeline:\n"
            "    def __init__(self):\n"
            "        self.flush = lambda: None\n"
        ),
    })
    report, engine = lint_project(tmp_path)
    findings = findings_for(report, "RL103")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.severity.label == "error"
    assert finding.path == "sim/parts.py"
    assert "System.pipeline → Pipeline" in finding.message
    assert "lambda" in finding.message
    # RL006's per-file approximation must not double-report it.
    assert findings_for(report, "RL006") == []
    assert "sim.parts:Pipeline" in engine.last_program_model.reachable


def test_positive_reachability_through_class_table_and_container(tmp_path):
    write_project(tmp_path, {
        "sim/system.py": (
            "from sim.schemes import SCHEMES\n"
            "class System:\n"
            "    def __init__(self, name):\n"
            "        self.hmc = SCHEMES[name]()\n"
        ),
        "sim/schemes.py": (
            "from sim.queue import Queue\n"
            "class BaseHmc:\n"
            "    def __init__(self):\n"
            "        self.queues = []\n"
            "        self.queues.append(Queue())\n"
            "class FastHmc(BaseHmc):\n"
            "    pass\n"
            "SCHEMES = {'fast': FastHmc}\n"
        ),
        "sim/queue.py": (
            "import threading\n"
            "class Queue:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()\n"
        ),
    })
    report, engine = lint_project(tmp_path)
    findings = findings_for(report, "RL103")
    assert len(findings) == 1
    assert findings[0].path == "sim/queue.py"
    assert "threading.Lock" in findings[0].message
    model = engine.last_program_model
    assert "sim.schemes:FastHmc" in model.reachable
    assert "sim.queue:Queue" in model.reachable


def test_negative_getstate_terminates_traversal(tmp_path):
    write_project(tmp_path, {
        "sim/system.py": (
            "from sim.parts import Pipeline\n"
            "class System:\n"
            "    def __init__(self):\n"
            "        self.pipeline = Pipeline()\n"
        ),
        "sim/parts.py": (
            "class Pipeline:\n"
            "    def __init__(self):\n"
            "        self.flush = lambda: None\n"
            "    def __getstate__(self):\n"
            "        return {}\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL103") == []
    assert report.exit_code == 0


def test_negative_codec_registered_class_is_trusted(tmp_path):
    write_project(tmp_path, {
        "sim/system.py": (
            "from sim.parts import Pipeline\n"
            "class System:\n"
            "    def __init__(self):\n"
            "        self.pipeline = Pipeline()\n"
        ),
        "sim/parts.py": (
            "from repro.snapshot import register_codec\n"
            "class Pipeline:\n"
            "    def __init__(self):\n"
            "        self.flush = lambda: None\n"
            "register_codec(Pipeline, None, None)\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL103") == []


def test_unreachable_class_still_covered_by_rl006(tmp_path):
    # Dedupe only hands over classes RL103 actually proves reachable;
    # dead in-scope classes keep their per-file check.
    write_project(tmp_path, {
        "sim/system.py": (
            "class System:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
        ),
        "sim/orphan.py": (
            "class Orphan:\n"
            "    def __init__(self):\n"
            "        self.cb = lambda: None\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL103") == []
    rl006 = findings_for(report, "RL006")
    assert len(rl006) == 1
    assert rl006[0].path == "sim/orphan.py"


def test_no_root_class_means_silence(tmp_path):
    write_project(tmp_path, {
        "sim/parts.py": (
            "class Widget:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
        ),
    })
    report, engine = lint_project(tmp_path)
    assert findings_for(report, "RL103") == []
    assert engine.last_program_model.root_symbols == []


def test_positive_reachable_class_with_live_socket_and_selector(tmp_path):
    # The sweepd heartbeat plumbing makes it tempting to hand a class in
    # the pickled System graph a socket or selector; the whole-program
    # proof must flag both with a reachability witness.
    write_project(tmp_path, {
        "sim/system.py": (
            "from sim.reporter import Reporter\n"
            "class System:\n"
            "    def __init__(self):\n"
            "        self.reporter = Reporter()\n"
        ),
        "sim/reporter.py": (
            "import selectors\n"
            "import socket\n"
            "class Reporter:\n"
            "    def __init__(self):\n"
            "        self.sock = socket.create_connection(('h', 1))\n"
            "        self.selector = selectors.DefaultSelector()\n"
        ),
    })
    report, engine = lint_project(tmp_path)
    findings = findings_for(report, "RL103")
    assert len(findings) == 2
    messages = " | ".join(finding.message for finding in findings)
    assert "live socket" in messages
    assert "I/O selector" in messages
    assert all("System.reporter → Reporter" in f.message for f in findings)
    assert findings_for(report, "RL006") == []
    assert "sim.reporter:Reporter" in engine.last_program_model.reachable
