"""RL102: whole-program determinism taint (positive and negative)."""

from tests.unit.lint_program.helpers import findings_for, lint_project, write_project


def test_positive_cross_module_source_to_stats(tmp_path):
    write_project(tmp_path, {
        "sim/clock.py": (
            "import time\n"
            "def wall_now():\n"
            "    return time.time()\n"
        ),
        "sim/model.py": (
            "from sim.clock import wall_now\n"
            "class Engine:\n"
            "    def tick(self, stats):\n"
            "        stats.add('sim/tick_time', wall_now())\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL102")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "sim/model.py"
    assert "time.time()" in finding.message
    assert 'stats key "sim/tick_time"' in finding.message
    assert report.exit_code == 1


def test_positive_source_into_callee_that_records(tmp_path):
    # The source and the sink live in *different* functions: the taint
    # enters a helper's parameter and the helper records it.
    write_project(tmp_path, {
        "sim/model.py": (
            "import random\n"
            "class Engine:\n"
            "    def record(self, stats, value):\n"
            "        stats.add('sim/noise', value)\n"
            "    def tick(self, stats):\n"
            "        self.record(stats, random.random())\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL102")
    assert len(findings) == 1
    assert "random.random()" in findings[0].message
    assert "Engine.tick → Engine.record" in findings[0].message


def test_positive_id_into_device_state(tmp_path):
    write_project(tmp_path, {
        "mem/device.py": (
            "class Device:\n"
            "    def __init__(self):\n"
            "        self.tag = id(self)\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    findings = findings_for(report, "RL102")
    assert len(findings) == 1
    assert "id()" in findings[0].message
    assert "Device.tag" in findings[0].message


def test_negative_laundered_through_deterministic_rng(tmp_path):
    write_project(tmp_path, {
        "sim/model.py": (
            "from repro.common.rng import DeterministicRng\n"
            "class Engine:\n"
            "    def __init__(self, seed):\n"
            "        self.rng = DeterministicRng('engine', seed)\n"
            "    def tick(self, stats):\n"
            "        stats.add('sim/jitter', self.rng.randint(0, 4))\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL102") == []
    assert report.exit_code == 0


def test_negative_watchdog_wall_clock_never_reaches_a_sink(tmp_path):
    # Flow-sensitivity over RL001's import-sensitivity: wall-clock reads
    # that stay in supervision logic are fine.
    write_project(tmp_path, {
        "report/supervisor.py": (
            "import time\n"
            "def watch(budget):\n"
            "    start = time.perf_counter()\n"
            "    ticks = 0\n"
            "    while time.perf_counter() - start < budget:\n"
            "        ticks += 1\n"
            "    return ticks\n"
        ),
    })
    report, _ = lint_project(tmp_path)
    assert findings_for(report, "RL102") == []
