"""Unit tests for system assembly and the run loop (repro.sim.system)."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.system import SCHEMES, System, build_system
from repro.workloads import workload_by_name

from repro.common.config import default_system_config


def tiny(scheme="noswap", workload="lbmx4"):
    return build_system(scheme, workload_by_name(workload), scale=1024)


class TestAssembly:
    def test_unknown_scheme_rejected(self):
        config = default_system_config(scale=1024, cores=4)
        with pytest.raises(ConfigError):
            System(config, "bogus", workload_by_name("lbmx4"), 1024)

    def test_scheme_registry_complete(self):
        assert set(SCHEMES) == {"pageseer", "pom", "mempod", "cameo", "noswap"}

    def test_core_count_matches_workload(self):
        assert len(tiny(workload="mcfx8").cores) == 8
        assert len(tiny(workload="mix1").cores) == 4

    def test_each_core_has_own_process(self):
        system = tiny()
        pids = {core.process.pid for core in system.cores}
        assert len(pids) == len(system.cores)

    def test_hints_wired_only_for_pageseer(self):
        pageseer = tiny(scheme="pageseer")
        noswap = tiny(scheme="noswap")
        assert pageseer.cores[0].mmu.walker._mmu_hint is not None
        assert noswap.cores[0].mmu.walker._mmu_hint is None

    def test_oversized_workload_rejected_early(self):
        # At scale 16384 the memory has far fewer pages than LULESHx4's
        # (floored) footprint.
        with pytest.raises(ConfigError, match="needs"):
            build_system("noswap", workload_by_name("LULESHx4"), scale=16384)

    def test_config_mutator_applied(self):
        import dataclasses

        def mutate(config):
            return dataclasses.replace(
                config, core=dataclasses.replace(config.core, base_cpi=2.0)
            )

        system = build_system(
            "noswap", workload_by_name("lbmx4"), scale=1024, config_mutator=mutate
        )
        assert system.config.core.base_cpi == 2.0


class TestRunLoop:
    def test_run_ops_advances_all_cores_equally(self):
        system = tiny()
        system.run_ops(50)
        assert all(core.ops_executed == 50 for core in system.cores)

    def test_run_ops_incremental(self):
        system = tiny()
        system.run_ops(20)
        system.run_ops(30)
        assert all(core.ops_executed == 50 for core in system.cores)

    def test_cores_advance_in_time_order(self):
        """No core may run far ahead of the others (bounded skew)."""
        system = tiny()
        system.run_ops(200)
        clocks = [core.clock for core in system.cores]
        assert max(clocks) < 5 * min(clocks) + 10_000

    def test_warmup_resets_stats(self):
        system = tiny()
        metrics = system.run(measure_ops=50, warmup_ops=50)
        # Measured instruction counts must reflect only the window.
        per_core = metrics.instructions / len(system.cores)
        # Each op retires instructions_before+1 instructions; with the
        # generators' ~35-45 that is bounded well below 100 per op.
        assert 50 < per_core < 50 * 100

    def test_measured_window_counts_only_window(self):
        system_a = tiny()
        a = system_a.run(measure_ops=50, warmup_ops=10)
        system_b = tiny()
        b = system_b.run(measure_ops=50, warmup_ops=200)
        # Different warm-up, same measured op count: instruction counts of
        # the measured window stay in the same ballpark.
        assert a.instructions == pytest.approx(b.instructions, rel=0.5)

    def test_determinism_across_builds(self):
        a = tiny(scheme="pageseer").run(100, 100)
        b = tiny(scheme="pageseer").run(100, 100)
        assert a.ipc == b.ipc
        assert a.ammat == b.ammat
        assert a.raw.get("hmc/serviced_dram") == b.raw.get("hmc/serviced_dram")


class _StubCore:
    """A core double exposing exactly the scheduler's interface."""

    def __init__(self, core_id, step_cycles, log):
        self.core_id = core_id
        self.clock = 0.0
        self.ops_executed = 0
        self.done = False
        self._step_cycles = step_cycles
        self._log = log

    def step(self):
        self._log.append((self.core_id, self.clock))
        self.clock += self._step_cycles
        self.ops_executed += 1


class _StubSystem:
    """Bare ``cores`` holder to drive ``System.run_ops`` in isolation.

    Pinned to the scalar engine: these tests define the reference
    interleaving the batched engine must reproduce (the batched side is
    held to it by tests/integration/test_engine_equivalence.py).
    """

    run_ops = System.run_ops
    _run_to_targets = System._run_to_targets
    engine = "scalar"

    def __init__(self, cores):
        self.cores = cores
        self.checkpointer = None
        self.steps_total = 0


class TestSchedulerTieBreaking:
    def test_equal_clocks_break_ties_by_core_id(self):
        """Two cores deliberately driven to equal clocks at every step:
        the (clock, core_id) key must order each round as core 0 then
        core 1, never depending on ready-list memory order."""
        log = []
        cores = [_StubCore(0, 10, log), _StubCore(1, 10, log)]
        _StubSystem(cores).run_ops(4)
        assert log == [
            (0, 0.0), (1, 0.0),
            (0, 10.0), (1, 10.0),
            (0, 20.0), (1, 20.0),
            (0, 30.0), (1, 30.0),
        ]

    def test_tie_breaking_ignores_core_list_construction_order(self):
        """The interleaving is a pure function of (clock, core_id), so
        re-running with freshly built cores reproduces it exactly."""
        first, second = [], []
        for log in (first, second):
            cores = [_StubCore(0, 7, log), _StubCore(1, 7, log), _StubCore(2, 7, log)]
            _StubSystem(cores).run_ops(3)
        assert first == second
        assert [entry[0] for entry in first[:3]] == [0, 1, 2]

    def test_slower_core_yields_to_lagging_core(self):
        """Sanity: with unequal speeds the smallest clock still wins."""
        log = []
        cores = [_StubCore(0, 100, log), _StubCore(1, 10, log)]
        _StubSystem(cores).run_ops(3)
        # Core 1 runs all three of its ops before core 0's clock (100)
        # would let core 0 step a second time.
        assert log == [
            (0, 0.0), (1, 0.0), (1, 10.0), (1, 20.0),
            (0, 100.0), (0, 200.0),
        ]

    def test_done_core_leaves_the_heap(self):
        log = []
        finishing = _StubCore(0, 10, log)
        running = _StubCore(1, 10, log)

        def finish_after_two():
            _StubCore.step(finishing)
            if finishing.ops_executed == 2:
                finishing.done = True

        finishing.step = finish_after_two
        _StubSystem([finishing, running]).run_ops(5)
        assert finishing.ops_executed == 2
        assert running.ops_executed == 5
