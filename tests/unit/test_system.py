"""Unit tests for system assembly and the run loop (repro.sim.system)."""

import pytest

from repro.common.errors import ConfigError
from repro.sim.system import SCHEMES, System, build_system
from repro.workloads import workload_by_name

from repro.common.config import default_system_config


def tiny(scheme="noswap", workload="lbmx4"):
    return build_system(scheme, workload_by_name(workload), scale=1024)


class TestAssembly:
    def test_unknown_scheme_rejected(self):
        config = default_system_config(scale=1024, cores=4)
        with pytest.raises(ConfigError):
            System(config, "bogus", workload_by_name("lbmx4"), 1024)

    def test_scheme_registry_complete(self):
        assert set(SCHEMES) == {"pageseer", "pom", "mempod", "cameo", "noswap"}

    def test_core_count_matches_workload(self):
        assert len(tiny(workload="mcfx8").cores) == 8
        assert len(tiny(workload="mix1").cores) == 4

    def test_each_core_has_own_process(self):
        system = tiny()
        pids = {core.process.pid for core in system.cores}
        assert len(pids) == len(system.cores)

    def test_hints_wired_only_for_pageseer(self):
        pageseer = tiny(scheme="pageseer")
        noswap = tiny(scheme="noswap")
        assert pageseer.cores[0].mmu.walker._mmu_hint is not None
        assert noswap.cores[0].mmu.walker._mmu_hint is None

    def test_oversized_workload_rejected_early(self):
        # At scale 16384 the memory has far fewer pages than LULESHx4's
        # (floored) footprint.
        with pytest.raises(ConfigError, match="needs"):
            build_system("noswap", workload_by_name("LULESHx4"), scale=16384)

    def test_config_mutator_applied(self):
        import dataclasses

        def mutate(config):
            return dataclasses.replace(
                config, core=dataclasses.replace(config.core, base_cpi=2.0)
            )

        system = build_system(
            "noswap", workload_by_name("lbmx4"), scale=1024, config_mutator=mutate
        )
        assert system.config.core.base_cpi == 2.0


class TestRunLoop:
    def test_run_ops_advances_all_cores_equally(self):
        system = tiny()
        system.run_ops(50)
        assert all(core.ops_executed == 50 for core in system.cores)

    def test_run_ops_incremental(self):
        system = tiny()
        system.run_ops(20)
        system.run_ops(30)
        assert all(core.ops_executed == 50 for core in system.cores)

    def test_cores_advance_in_time_order(self):
        """No core may run far ahead of the others (bounded skew)."""
        system = tiny()
        system.run_ops(200)
        clocks = [core.clock for core in system.cores]
        assert max(clocks) < 5 * min(clocks) + 10_000

    def test_warmup_resets_stats(self):
        system = tiny()
        metrics = system.run(measure_ops=50, warmup_ops=50)
        # Measured instruction counts must reflect only the window.
        per_core = metrics.instructions / len(system.cores)
        # Each op retires instructions_before+1 instructions; with the
        # generators' ~35-45 that is bounded well below 100 per op.
        assert 50 < per_core < 50 * 100

    def test_measured_window_counts_only_window(self):
        system_a = tiny()
        a = system_a.run(measure_ops=50, warmup_ops=10)
        system_b = tiny()
        b = system_b.run(measure_ops=50, warmup_ops=200)
        # Different warm-up, same measured op count: instruction counts of
        # the measured window stay in the same ballpark.
        assert a.instructions == pytest.approx(b.instructions, rel=0.5)

    def test_determinism_across_builds(self):
        a = tiny(scheme="pageseer").run(100, 100)
        b = tiny(scheme="pageseer").run(100, 100)
        assert a.ipc == b.ipc
        assert a.ammat == b.ammat
        assert a.raw.get("hmc/serviced_dram") == b.raw.get("hmc/serviced_dram")
