"""Unit tests for the set-associative cache (repro.cache.cache)."""

import pytest

from repro.common.config import CacheConfig
from repro.cache.cache import SetAssociativeCache


def make_cache(size=4096, ways=4, line=64):
    return SetAssociativeCache(CacheConfig("test", size, ways, 1, line))


class TestBasics:
    def test_empty_misses(self):
        cache = make_cache()
        assert not cache.lookup(0)

    def test_fill_then_hit(self):
        cache = make_cache()
        cache.fill(5)
        assert cache.lookup(5)

    def test_contains_is_non_destructive(self):
        cache = make_cache(size=256, ways=2)  # 2 sets
        cache.fill(0)
        cache.fill(2)  # same set as 0
        cache.contains(0)  # must NOT refresh LRU
        cache.fill(4)  # evicts LRU = 0
        assert not cache.lookup(0)

    def test_occupancy(self):
        cache = make_cache()
        for line in range(10):
            cache.fill(line)
        assert cache.occupancy == 10


class TestEviction:
    def test_lru_order(self):
        cache = make_cache(size=256, ways=2)  # 2 sets, 2 ways
        cache.fill(0)
        cache.fill(2)
        cache.lookup(0)  # 0 becomes MRU
        victim = cache.fill(4)  # same set: evicts 2
        assert victim.line_number == 2

    def test_victim_reconstruction(self):
        cache = make_cache(size=256, ways=1)  # direct-mapped, 4 sets... 256/64=4 lines
        cache.fill(1)
        victim = cache.fill(1 + cache.num_sets)
        assert victim.line_number == 1

    def test_no_victim_when_space(self):
        cache = make_cache()
        assert cache.fill(3) is None

    def test_refill_same_line_no_victim(self):
        cache = make_cache(size=256, ways=1)
        cache.fill(1)
        assert cache.fill(1) is None


class TestDirty:
    def test_write_marks_dirty(self):
        cache = make_cache(size=256, ways=1)
        cache.fill(1)
        cache.lookup(1, is_write=True)
        victim = cache.fill(1 + cache.num_sets)
        assert victim.dirty

    def test_clean_eviction(self):
        cache = make_cache(size=256, ways=1)
        cache.fill(1)
        victim = cache.fill(1 + cache.num_sets)
        assert not victim.dirty

    def test_fill_dirty(self):
        cache = make_cache(size=256, ways=1)
        cache.fill(1, dirty=True)
        victim = cache.fill(1 + cache.num_sets)
        assert victim.dirty

    def test_fill_existing_upgrades_dirty(self):
        cache = make_cache(size=256, ways=1)
        cache.fill(1)
        cache.fill(1, dirty=True)
        victim = cache.fill(1 + cache.num_sets)
        assert victim.dirty


class TestInvalidate:
    def test_invalidate_present(self):
        cache = make_cache()
        cache.fill(9)
        assert cache.invalidate(9)
        assert not cache.lookup(9)

    def test_invalidate_absent(self):
        cache = make_cache()
        assert not cache.invalidate(9)

    def test_invalidate_page(self):
        cache = make_cache(size=16 * 1024, ways=8)
        for line in range(64, 128):  # page 1
            cache.fill(line)
        dropped = cache.invalidate_page(1)
        assert dropped == 64
        assert cache.occupancy == 0


class TestResidentLines:
    def test_resident_lines_roundtrip(self):
        cache = make_cache()
        lines = {3, 77, 1024, 5555}
        for line in lines:
            cache.fill(line)
        assert set(cache.resident_lines()) == lines
