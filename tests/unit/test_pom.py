"""Unit tests for the PoM baseline (repro.baselines.pom)."""

import pytest

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.baselines.pom import PomHmc
from repro.sim.hmc_base import RequestKind
from repro.vm.os_model import OsModel


def make_pom(cores=1):
    config = default_system_config(scale=1024, cores=cores)
    stats = StatsRegistry()
    os_model = OsModel(config.memory)
    return PomHmc(config, os_model, stats), config, stats


def slow_segment_line(hmc, index=0, offset=0):
    """A line in the index-th slow segment."""
    segment = hmc.fast_segments + index
    return segment * hmc.lines_per_segment + offset


class TestGeometry:
    def test_segment_sizes(self):
        hmc, config, _ = make_pom()
        assert hmc.lines_per_segment == 32
        assert hmc.fast_segments == config.memory.dram.capacity_bytes // 2048
        assert hmc.slow_segments == config.memory.nvm.capacity_bytes // 2048

    def test_groups_direct_mapped(self):
        hmc, _, _ = make_pom()
        fast = hmc.fast_segments
        assert hmc.group_of(0) == 0
        assert hmc.group_of(fast) == 0
        assert hmc.group_of(fast + 1) == 1
        assert hmc.group_of(fast + fast) == 0

    def test_group_of_fast_segment_is_itself(self):
        hmc, _, _ = make_pom()
        assert hmc.group_of(7) == 7


class TestRequests:
    def test_slow_request_serviced_nvm(self):
        hmc, _, stats = make_pom()
        hmc.handle_request(0, slow_segment_line(hmc), False, 1)
        assert stats.get("hmc/serviced_nvm") == 1

    def test_fast_request_serviced_dram(self):
        hmc, _, stats = make_pom()
        # Pick a fast segment beyond the reserved metadata pages.
        line = (hmc.fast_segments - 1) * hmc.lines_per_segment
        hmc.handle_request(0, line, False, 1)
        assert stats.get("hmc/serviced_dram") == 1

    def test_src_miss_recorded(self):
        hmc, _, stats = make_pom()
        hmc.handle_request(0, slow_segment_line(hmc), False, 1)
        assert stats.get("pom/src_misses") == 1
        assert stats.get("hmc/remap_misses") == 1

    def test_src_hit_after_fill(self):
        hmc, _, stats = make_pom()
        hmc.handle_request(0, slow_segment_line(hmc), False, 1)
        hmc.handle_request(10_000, slow_segment_line(hmc, offset=1), False, 1)
        assert stats.get("pom/src_hits") == 1


class TestSwaps:
    def run_threshold_misses(self, hmc, config, index=0, group_offset=0):
        now = 0
        for k in range(config.pom.swap_threshold):
            now = hmc.handle_request(
                now + 1, slow_segment_line(hmc, index, k % 32), False, 1
            )
        return now

    def test_threshold_triggers_fast_swap(self):
        hmc, config, stats = make_pom()
        # Choose a slow segment whose group's fast slot is not protected:
        # use the last group.
        index = hmc.fast_segments - 1
        self.run_threshold_misses(hmc, config, index=index)
        assert stats.get("pom/swaps") == 1

    def test_remap_after_swap(self):
        hmc, config, _ = make_pom()
        index = hmc.fast_segments - 1
        segment = hmc.fast_segments + index
        self.run_threshold_misses(hmc, config, index=index)
        assert hmc._slot(segment) == hmc.group_of(segment)

    def test_post_swap_serviced_dram(self):
        hmc, config, stats = make_pom()
        index = hmc.fast_segments - 1
        now = self.run_threshold_misses(hmc, config, index=index)
        end = max(e for e in hmc._active.values())
        hmc.handle_request(end + 1, slow_segment_line(hmc, index), False, 1)
        assert stats.get("hmc/serviced_dram") >= 1

    def test_protected_group_never_swaps(self):
        hmc, config, stats = make_pom()
        # Group 0's fast slot covers reserved metadata pages.
        assert hmc._segment_is_protected(0)
        self.run_threshold_misses(hmc, config, index=0)
        assert stats.get("pom/swaps") == 0
        assert stats.get("pom/declined_protected") >= 1

    def test_displaced_occupant_tracked(self):
        hmc, config, _ = make_pom()
        index = hmc.fast_segments - 1
        fast_slot = hmc.group_of(hmc.fast_segments + index)
        self.run_threshold_misses(hmc, config, index=index)
        displaced = fast_slot  # original fast segment
        assert hmc._slot(displaced) == hmc.fast_segments + index

    def test_counter_resets_after_swap(self):
        hmc, config, _ = make_pom()
        index = hmc.fast_segments - 1
        self.run_threshold_misses(hmc, config, index=index)
        segment = hmc.fast_segments + index
        assert hmc._counters.get(segment, 0) == 0


class TestWaits:
    def test_request_mid_swap_waits(self):
        hmc, config, stats = make_pom()
        index = hmc.fast_segments - 1
        now = 0
        for k in range(config.pom.swap_threshold):
            now = hmc.handle_request(
                now + 1, slow_segment_line(hmc, index, k % 32), False, 1
            )
        # Immediately after the triggering miss, the swap is in flight.
        segment = hmc.fast_segments + index
        end = hmc._active[segment]
        finish = hmc.handle_request(now + 1, slow_segment_line(hmc, index), False, 1)
        assert finish >= end
        assert stats.get("pom/waits_for_swap") >= 1
