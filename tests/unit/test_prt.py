"""Unit tests for the PRT and PRTc (repro.core.prt)."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.core.prt import PageRemapTable, PrtCache


def make_prt(dram_pages=64, nvm_pages=512, ways=4):
    return PageRemapTable(dram_pages, dram_pages + nvm_pages, ways)


class TestGeometry:
    def test_colour_count(self):
        prt = make_prt(dram_pages=64, ways=4)
        assert prt.num_colours == 16

    def test_colour_of(self):
        prt = make_prt()
        assert prt.colour_of(0) == 0
        assert prt.colour_of(17) == 1
        assert prt.colour_of(16) == 0

    def test_frames_of_colour(self):
        prt = make_prt(dram_pages=64, ways=4)
        frames = prt.dram_frames_of_colour(3)
        assert frames == [3, 19, 35, 51]
        for frame in frames:
            assert prt.colour_of(frame) == 3
            assert prt.is_dram(frame)

    def test_nvm_pages_share_colours(self):
        prt = make_prt(dram_pages=64, ways=4)
        nvm_page = 64 + 16  # colour (64+16) % 16 == 0
        assert prt.colour_of(nvm_page) == 0


class TestInstallRemove:
    def test_install_and_locate(self):
        prt = make_prt()
        nvm = 64  # colour 0
        prt.install(nvm, 0)
        assert prt.location_of(nvm) == 0
        assert prt.location_of(0) == nvm

    def test_involution(self):
        prt = make_prt()
        nvm = 64
        prt.install(nvm, 0)
        assert prt.location_of(prt.location_of(nvm)) == nvm

    def test_unswapped_pages_at_home(self):
        prt = make_prt()
        assert prt.location_of(5) == 5
        assert prt.location_of(100) == 100
        assert not prt.is_swapped(5)

    def test_remove_restores_home(self):
        prt = make_prt()
        nvm = 64
        prt.install(nvm, 0)
        freed = prt.remove(nvm)
        assert freed == 0
        assert prt.location_of(nvm) == nvm
        assert prt.location_of(0) == 0

    def test_colour_constraint_enforced(self):
        prt = make_prt()
        nvm = 64 + 1  # colour 1
        with pytest.raises(SimulationError):
            prt.install(nvm, 0)  # frame colour 0

    def test_double_install_rejected(self):
        prt = make_prt()
        prt.install(64, 0)
        with pytest.raises(SimulationError):
            prt.install(64, 16)

    def test_occupied_frame_rejected(self):
        prt = make_prt()
        prt.install(64, 0)
        with pytest.raises(SimulationError):
            prt.install(64 + 16, 0)

    def test_install_requires_nvm_dram_pair(self):
        prt = make_prt()
        with pytest.raises(SimulationError):
            prt.install(0, 16)  # both DRAM
        with pytest.raises(SimulationError):
            prt.install(64, 80)  # both NVM

    def test_remove_unswapped_rejected(self):
        prt = make_prt()
        with pytest.raises(SimulationError):
            prt.remove(64)

    def test_queries(self):
        prt = make_prt()
        prt.install(64, 0)
        assert prt.dram_frame_holding(64) == 0
        assert prt.nvm_page_in_frame(0) == 64
        assert prt.nvm_page_in_frame(16) is None
        assert prt.pairs_of_colour(0) == [(64, 0)]
        assert prt.active_pairs == 1

    def test_full_colour_set(self):
        prt = make_prt(dram_pages=64, ways=4)
        for way, frame in enumerate(prt.dram_frames_of_colour(0)):
            prt.install(64 + 16 * (way + 1), frame)
        assert len(prt.pairs_of_colour(0)) == 4


class TestPrtCache:
    def test_requires_full_set(self):
        with pytest.raises(ConfigError):
            PrtCache(entries=2, ways=4, latency_cycles=1)

    def test_miss_then_hit(self):
        cache = PrtCache(16, 4, 1)
        assert not cache.lookup(3)
        cache.fill(3)
        assert cache.lookup(3)

    def test_capacity_and_lru(self):
        cache = PrtCache(8, 4, 1)  # 2 colour sets
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0)
        evicted = cache.fill(2)
        assert evicted == 1

    def test_contains_non_destructive(self):
        cache = PrtCache(8, 4, 1)
        cache.fill(0)
        hits_before = cache.hits
        assert cache.contains(0)
        assert cache.hits == hits_before

    def test_hit_rate(self):
        cache = PrtCache(8, 4, 1)
        cache.lookup(0)
        cache.fill(0)
        cache.lookup(0)
        assert cache.hit_rate == 0.5

    def test_refill_no_eviction(self):
        cache = PrtCache(8, 4, 1)
        cache.fill(0)
        assert cache.fill(0) is None
        assert cache.occupancy == 1
