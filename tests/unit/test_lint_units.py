"""RL004: unit-hygiene arithmetic checks on annotated quantities."""

from pathlib import Path

from repro.lint.engine import Severity, lint_paths
from repro.lint.rules.units import UnitHygieneRule


def findings_for(tmp_path: Path, body: str, relpath: str = "mem/device.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(body)
    report = lint_paths(["."], root=tmp_path, rules=[UnitHygieneRule()])
    return report.findings


class TestCyclesVersusBytes:
    def test_adding_bytes_to_cycles_is_an_error(self, tmp_path):
        text = (
            "def f(now: Cycles, size: Bytes):\n"
            "    return now + size\n"
        )
        (finding,) = findings_for(tmp_path, text)
        assert finding.severity == Severity.ERROR
        assert "Cycles" in finding.message and "Bytes" in finding.message

    def test_subtraction_also_flagged(self, tmp_path):
        text = "def f(now: Cycles, size: Bytes):\n    return now - size\n"
        assert findings_for(tmp_path, text)

    def test_nested_expression_units_propagate(self, tmp_path):
        text = (
            "def f(start: Cycles, extra: Cycles, size: Bytes):\n"
            "    return (start + extra) + size\n"
        )
        assert findings_for(tmp_path, text)

    def test_multiplying_cycles_by_bytes_is_tolerated(self, tmp_path):
        # Cycles-per-byte rates make this product legitimate.
        text = "def f(per: Cycles, size: Bytes):\n    return per * size\n"
        assert findings_for(tmp_path, text) == []

    def test_same_unit_arithmetic_is_clean(self, tmp_path):
        text = (
            "def f(start: Cycles, duration: Cycles):\n"
            "    end: Cycles = start + duration\n"
            "    return end\n"
        )
        assert findings_for(tmp_path, text) == []


class TestAddressesVersusCycles:
    def test_address_plus_cycles_is_an_error(self, tmp_path):
        text = "def f(addr: PhysAddr, now: Cycles):\n    return addr + now\n"
        (finding,) = findings_for(tmp_path, text)
        assert finding.severity == Severity.ERROR

    def test_address_plus_bytes_is_address_arithmetic(self, tmp_path):
        text = "def f(addr: PhysAddr, size: Bytes):\n    return addr + size\n"
        assert findings_for(tmp_path, text) == []


class TestFloatLiterals:
    def test_float_literal_times_cycles_is_a_warning(self, tmp_path):
        text = "def f(latency: Cycles):\n    return latency * 1.5\n"
        (finding,) = findings_for(tmp_path, text)
        assert finding.severity == Severity.WARNING
        assert "float literal" in finding.message

    def test_float_literal_plus_physaddr_flagged(self, tmp_path):
        text = "def f(addr: PhysAddr):\n    return addr + 0.5\n"
        assert findings_for(tmp_path, text)

    def test_integer_literal_is_clean(self, tmp_path):
        text = "def f(latency: Cycles):\n    return latency * 3 // 2\n"
        assert findings_for(tmp_path, text) == []

    def test_float_literal_with_bytes_is_tolerated(self, tmp_path):
        # Sizes may be scaled by ratios (utilisation, fractions of capacity).
        text = "def f(size: Bytes):\n    return size * 0.95\n"
        assert findings_for(tmp_path, text) == []

    def test_division_produces_dimensionless_value(self, tmp_path):
        text = (
            "def f(busy: Cycles, elapsed: Cycles):\n"
            "    share = busy / elapsed\n"
            "    return share * 1.5\n"
        )
        assert findings_for(tmp_path, text) == []


class TestAdoption:
    def test_unannotated_code_emits_nothing(self, tmp_path):
        text = "def f(now, size):\n    return now + size\n"
        assert findings_for(tmp_path, text) == []

    def test_annassign_locals_participate(self, tmp_path):
        text = (
            "def f(size: Bytes):\n"
            "    now: Cycles = 0\n"
            "    return now + size\n"
        )
        assert findings_for(tmp_path, text)

    def test_rule_applies_outside_sim_packages_too(self, tmp_path):
        text = "def f(now: Cycles, size: Bytes):\n    return now + size\n"
        assert findings_for(tmp_path, text, relpath="analysis/tool.py")

    def test_real_aliases_are_runtime_transparent(self):
        from repro.common.addr import Bytes, PhysAddr
        from repro.common.timeline import Cycles

        assert Cycles is int and Bytes is int and PhysAddr is int
