"""Unit tests for the experiment runner (repro.experiments.runner)."""

import pytest

from repro.experiments.runner import (
    CACHE_VERSION,
    ExperimentRunner,
    VARIANTS,
    _run_one_for_pool,
)


def make_runner(tmp_path, **kwargs):
    kwargs.setdefault("scale", 1024)
    kwargs.setdefault("measure_ops", 400)
    kwargs.setdefault("warmup_ops", 500)
    kwargs.setdefault("workloads", ["lbmx4"])
    return ExperimentRunner(cache_dir=tmp_path / "cache", **kwargs)


class TestCacheKeys:
    def test_key_includes_everything(self, tmp_path):
        runner = make_runner(tmp_path)
        key = runner._key("pageseer", "lbmx4", "nocorr")
        for fragment in (
            f"v{CACHE_VERSION}", "pageseer", "lbmx4", "nocorr",
            "s1024", "m400", "w500", "seed0",
        ):
            assert fragment in key

    def test_different_sizing_different_keys(self, tmp_path):
        a = make_runner(tmp_path)
        b = make_runner(tmp_path, measure_ops=401)
        assert a._key("x", "y", "z") != b._key("x", "y", "z")

    def test_corrupt_cache_entry_ignored(self, tmp_path):
        runner = make_runner(tmp_path)
        runner.cache_dir.mkdir(parents=True, exist_ok=True)
        path = runner._cache_path(runner._key("noswap", "lbmx4", "default"))
        path.write_text("{not json")
        metrics = runner.run("noswap", "lbmx4")  # recomputes cleanly
        assert metrics.scheme == "noswap"


class TestRunMany:
    def test_dedup_and_results(self, tmp_path):
        runner = make_runner(tmp_path)
        requests = [("noswap", "lbmx4", "default")] * 3
        results = runner.run_many(requests, jobs=1)
        assert len(results) == 1

    def test_serial_path_matches_run(self, tmp_path):
        runner = make_runner(tmp_path)
        results = runner.run_many([("noswap", "lbmx4", "default")], jobs=1)
        direct = runner.run("noswap", "lbmx4")
        assert results[("noswap", "lbmx4", "default")].ipc == direct.ipc

    def test_cached_requests_skip_simulation(self, tmp_path, monkeypatch):
        runner = make_runner(tmp_path)
        runner.run("noswap", "lbmx4")  # populate

        import repro.experiments.runner as runner_module

        def boom(*args, **kwargs):
            raise AssertionError("simulation should not run")

        monkeypatch.setattr(runner_module, "build_system", boom)
        results = runner.run_many([("noswap", "lbmx4", "default")], jobs=1)
        assert ("noswap", "lbmx4", "default") in results

    def test_pool_worker_standalone(self):
        metrics = _run_one_for_pool(
            ("noswap", "lbmx4", "default"), (1024, 200, 200, 0, "off")
        )
        assert metrics.scheme == "noswap"
        assert metrics.instructions > 0

    def test_pool_worker_applies_variant(self):
        metrics = _run_one_for_pool(
            ("pageseer", "lbmx4", "nohints"), (1024, 400, 1500, 0, "off")
        )
        assert metrics.swaps_mmu == 0

    def test_pool_worker_runs_sanitizer(self):
        """The worker path checks at level full by default, and checking
        must not change the metrics it returns."""
        plain = _run_one_for_pool(
            ("pageseer", "lbmx4", "default"), (1024, 300, 300, 0, "off")
        )
        checked = _run_one_for_pool(
            ("pageseer", "lbmx4", "default"), (1024, 300, 300, 0, "full")
        )
        from repro.experiments.runner import _METRIC_FIELDS

        for name in _METRIC_FIELDS:
            assert getattr(plain, name) == getattr(checked, name)


class TestSweepFailures:
    def inject_failing_variant(self, monkeypatch):
        import repro.experiments.runner as runner_module

        def explode(config):
            raise RuntimeError("injected variant failure")

        monkeypatch.setitem(runner_module.VARIANTS, "explode", explode)

    def test_serial_sweep_collects_and_names_failures(self, tmp_path, monkeypatch):
        from repro.common.errors import SweepError

        self.inject_failing_variant(monkeypatch)
        runner = make_runner(tmp_path)
        requests = [
            ("noswap", "lbmx4", "default"),
            ("noswap", "lbmx4", "explode"),
        ]
        with pytest.raises(SweepError) as excinfo:
            runner.run_many(requests, jobs=1)
        error = excinfo.value
        assert [request for request, _ in error.failures] == [
            ("noswap", "lbmx4", "explode")
        ]
        assert "noswap/lbmx4/explode" in str(error)
        assert "injected variant failure" in str(error)
        # the healthy request still completed and was cached
        assert runner._load(runner._key("noswap", "lbmx4", "default")) is not None

    def test_parallel_sweep_collects_and_names_failures(self, tmp_path, monkeypatch):
        from repro.common.errors import SweepError

        self.inject_failing_variant(monkeypatch)
        runner = make_runner(tmp_path, measure_ops=200, warmup_ops=200)
        requests = [
            ("noswap", "lbmx4", "default"),
            ("noswap", "lbmx4", "explode"),
        ]
        with pytest.raises(SweepError) as excinfo:
            runner.run_many(requests, jobs=2)
        assert [request for request, _ in excinfo.value.failures] == [
            ("noswap", "lbmx4", "explode")
        ]
        assert "injected variant failure" in str(excinfo.value)
        # the healthy request was harvested and cached despite the failure
        assert runner._load(runner._key("noswap", "lbmx4", "default")) is not None


class TestPrewarm:
    def test_prewarm_covers_standard_matrix(self, tmp_path, monkeypatch):
        runner = make_runner(tmp_path)
        seen = []

        def fake_run_many(requests, jobs=None):
            seen.extend(requests)
            return {}

        monkeypatch.setattr(runner, "run_many", fake_run_many)
        runner.prewarm()
        variants = {request[2] for request in seen}
        assert variants == {"default", "nobw", "nocorr", "nohints"}
        schemes = {request[0] for request in seen}
        assert schemes == {"pageseer", "pom", "mempod"}


class TestVariantRegistry:
    def test_builtin_variants_present(self):
        for name in ("default", "nocorr", "nobw", "nohints"):
            assert name in VARIANTS

    def test_variants_are_pure(self):
        from repro.common.config import default_system_config

        config = default_system_config(scale=1024)
        mutated = VARIANTS["nocorr"](config)
        assert config.pageseer.correlation_enabled
        assert not mutated.pageseer.correlation_enabled
