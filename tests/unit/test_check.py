"""Unit tests for the simulation sanitizer (repro.check)."""

import pytest

from repro.check import (
    CheckManager,
    PrtBijectivityChecker,
    ShadowPageOracle,
    StatsSanityChecker,
    Violation,
    build_checkers,
)
from repro.common.config import CheckConfig
from repro.common.errors import CheckViolationError, ConfigError
from repro.sim.system import build_system
from repro.workloads import workload_by_name


def checked_system(scheme="pageseer", level="full", interval=64, fail_fast=True):
    return build_system(
        scheme,
        workload_by_name("lbmx4"),
        scale=1024,
        check=CheckConfig(level=level, interval_ops=interval, fail_fast=fail_fast),
    )


def system_now(system):
    return max(core.clock for core in system.cores)


class TestCheckConfig:
    def test_default_is_off(self):
        config = CheckConfig()
        assert config.level == "off"
        assert not config.enabled
        assert not config.shadow_enabled

    def test_levels(self):
        assert CheckConfig(level="invariants").enabled
        assert not CheckConfig(level="invariants").shadow_enabled
        assert CheckConfig(level="full").shadow_enabled

    def test_bad_level_rejected(self):
        with pytest.raises(ConfigError):
            CheckConfig(level="paranoid")

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError):
            CheckConfig(level="full", interval_ops=0)


class TestViolation:
    def test_str_names_checker_page_and_frame(self):
        violation = Violation(
            checker="prt-bijectivity", message="broken", page=42, frame=7
        )
        text = str(violation)
        assert "prt-bijectivity" in text
        assert "broken" in text
        assert "page=42" in text
        assert "frame=7" in text

    def test_error_aggregates_violations(self):
        error = CheckViolationError([
            Violation(checker="a", message="first"),
            Violation(checker="b", message="second"),
        ])
        assert len(error.violations) == 2
        assert "2 invariant violations" in str(error)
        assert "first" in str(error) and "second" in str(error)


class TestAttachment:
    def test_off_level_builds_nothing(self):
        system = build_system("pageseer", workload_by_name("lbmx4"), scale=1024)
        assert system.checker is None
        # No instance wrapper: handle_request resolves to the class method.
        assert "handle_request" not in vars(system.hmc)

    def test_enabled_level_wraps_instance(self):
        system = checked_system(level="invariants")
        assert system.checker is not None
        assert "handle_request" in vars(system.hmc)
        assert system.checker.shadow is None

    def test_full_level_adds_shadow_for_pageseer(self):
        system = checked_system(level="full")
        assert system.checker.shadow is not None
        assert system.hmc.swap_driver.on_swap_event is not None

    def test_scheme_specific_checkers(self):
        pageseer = {c.name for c in build_checkers(checked_system("pageseer"))}
        pom = {c.name for c in build_checkers(checked_system("pom"))}
        assert "prt-bijectivity" in pageseer
        assert "prt-bijectivity" not in pom
        assert "frame-exclusivity" in pageseer and "frame-exclusivity" in pom
        assert "stats-sanity" in pageseer and "stats-sanity" in pom


class TestPrtBijectivity:
    def test_clean_after_real_run(self):
        system = checked_system()
        system.run_ops(300)
        assert PrtBijectivityChecker().check(system, system_now(system)) == []

    def test_forward_without_reverse_flagged(self):
        system = checked_system(level="invariants")
        system.run_ops(200)
        prt = system.hmc.prt
        nvm = prt.dram_pages + prt.num_colours * 3 + 1
        frame = prt.dram_frames_of_colour(prt.colour_of(nvm))[0]
        prt._corrupt_for_test(nvm, frame)
        violations = PrtBijectivityChecker().check(system, system_now(system))
        assert violations
        assert any(v.page == nvm and v.frame == frame for v in violations)


class TestStatsSanity:
    def test_clean_registry_passes(self, tiny_system):
        tiny_system.run_ops(100)
        checker = StatsSanityChecker()
        assert checker.check(tiny_system, system_now(tiny_system)) == []

    def test_negative_counter_flagged(self, tiny_system):
        tiny_system.stats._counters["hmc/bogus"] = -3.0
        checker = StatsSanityChecker()
        violations = checker.check(tiny_system, system_now(tiny_system))
        assert any("hmc/bogus" in v.message for v in violations)


class FakePrt:
    """Minimal PRT stand-in for oracle unit tests."""

    def __init__(self, mapping):
        self._mapping = dict(mapping)

    def location_of(self, page):
        if page in self._mapping:
            return self._mapping[page]
        inverse = {v: k for k, v in self._mapping.items()}
        return inverse.get(page, page)

    def entries(self):
        return list(self._mapping.items())


class TestShadowOracle:
    def test_swap_maps_both_directions(self):
        oracle = ShadowPageOracle(dram_pages=8, total_pages=32)
        oracle.on_swap(100, 20, 3, None, 150)
        assert oracle.expected_location(20) == 3
        assert oracle.expected_location(3) == 20
        assert oracle.expected_location(21) == 21  # untouched NVM page
        assert oracle.expected_location(4) == 4    # untouched DRAM frame
        assert not oracle.event_violations

    def test_occupant_returns_home(self):
        oracle = ShadowPageOracle(dram_pages=8, total_pages=32)
        oracle.on_swap(100, 20, 3, None, 150)
        oracle.on_swap(200, 21, 3, 20, 250)  # 21 evicts 20 from frame 3
        assert oracle.expected_location(20) == 20
        assert oracle.expected_location(21) == 3
        assert not oracle.event_violations

    def test_unknown_occupant_flagged(self):
        oracle = ShadowPageOracle(dram_pages=8, total_pages=32)
        oracle.on_swap(100, 21, 3, 20, 150)  # oracle never saw 20 arrive
        assert any(v.page == 20 for v in oracle.event_violations)

    def test_double_install_flagged(self):
        oracle = ShadowPageOracle(dram_pages=8, total_pages=32)
        oracle.on_swap(100, 20, 3, None, 150)
        oracle.on_swap(200, 20, 5, None, 250)
        assert any(v.page == 20 for v in oracle.event_violations)

    def test_verify_access_catches_divergence(self):
        oracle = ShadowPageOracle(dram_pages=8, total_pages=32)
        oracle.on_swap(100, 20, 3, None, 150)
        good = FakePrt({20: 3})
        bad = FakePrt({})  # lost the remap entirely
        assert oracle.verify_access(good, 20) is None
        violation = oracle.verify_access(bad, 20)
        assert violation is not None and violation.page == 20

    def test_verify_full_reports_both_directions(self):
        oracle = ShadowPageOracle(dram_pages=8, total_pages=32)
        oracle.on_swap(100, 20, 3, None, 150)
        missing = oracle.verify_full(FakePrt({}))
        assert any(v.page == 20 and v.frame == 3 for v in missing)
        extra = oracle.verify_full(FakePrt({20: 3, 22: 5}))
        assert any(v.page == 22 for v in extra)


class TestManager:
    def test_collect_mode_defers_to_finalize(self):
        manager = CheckManager(CheckConfig(level="invariants", fail_fast=False))
        manager.violations.append(
            Violation(checker="test", message="stashed")
        )
        system = build_system("noswap", workload_by_name("lbmx4"), scale=1024)
        manager.attach(system)
        with pytest.raises(CheckViolationError) as excinfo:
            manager.finalize(0)
        assert any(v.message == "stashed" for v in excinfo.value.violations)

    def test_report_counts_activity(self):
        system = checked_system(level="full", interval=32)
        system.run_ops(200)
        report = system.checker.report()
        assert report.clean
        assert report.accesses_observed > 0
        assert report.sweeps >= 1
        assert report.shadow_accesses_checked > 0
        assert "prt-bijectivity" in report.checkers
