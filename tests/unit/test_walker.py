"""Unit tests for the page walker and PWC (repro.vm.walker)."""

import itertools

import pytest

from repro.common.addr import line_of
from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.cache.hierarchy import CacheHierarchy
from repro.vm.page_table import PageTable
from repro.vm.walker import PageWalkCache, PageWalker


def make_page_table():
    counter = itertools.count(10)
    data_counter = itertools.count(1000)
    return PageTable(1, lambda: next(counter), lambda vpn: next(data_counter))


class FakeMemory:
    """Records walker memory fetches and returns a fixed latency."""

    def __init__(self, latency=100):
        self.latency = latency
        self.fetches = []

    def __call__(self, now, line, is_write, is_pte, target_ppn, pid):
        self.fetches.append((now, line, is_write, is_pte, target_ppn, pid))
        return now + self.latency


class HintRecorder:
    def __init__(self):
        self.hints = []

    def __call__(self, now, pte_line, pid, vpn, target_ppn):
        self.hints.append((now, pte_line, pid, vpn, target_ppn))


def make_walker(hint=None, pwc_entries=8):
    config = default_system_config(scale=1024, cores=1)
    stats = StatsRegistry()
    hierarchy = CacheHierarchy(config, stats)
    memory = FakeMemory()
    pwc = PageWalkCache(pwc_entries)
    walker = PageWalker(
        0, hierarchy, pwc, 2, stats, memory_fetch=memory, mmu_hint=hint
    )
    return walker, memory, hierarchy


class TestWalkBasics:
    def test_returns_correct_ppn(self):
        walker, _, _ = make_walker()
        table = make_page_table()
        ppn = table.ensure_mapped(7)
        result = walker.walk(0, table, 7)
        assert result.ppn == ppn

    def test_cold_walk_fetches_four_levels(self):
        walker, memory, _ = make_walker()
        table = make_page_table()
        table.ensure_mapped(7)
        result = walker.walk(0, table, 7)
        assert result.levels_fetched == 4
        # Cold caches: every level's line reached memory.
        assert len(memory.fetches) == 4

    def test_pte_line_address(self):
        walker, _, _ = make_walker()
        table = make_page_table()
        table.ensure_mapped(7)
        result = walker.walk(0, table, 7)
        assert result.pte_line_spa == line_of(table.pte_entry_address(7))

    def test_latency_positive_and_monotonic(self):
        walker, _, _ = make_walker()
        table = make_page_table()
        table.ensure_mapped(7)
        result = walker.walk(50, table, 7)
        assert result.finish > 50
        assert result.latency == result.finish - 50

    def test_cold_pte_reaches_memory(self):
        walker, _, _ = make_walker()
        table = make_page_table()
        table.ensure_mapped(7)
        assert walker.walk(0, table, 7).pte_reached_memory


class TestPwc:
    def test_second_walk_uses_pwc(self):
        walker, memory, _ = make_walker()
        table = make_page_table()
        table.ensure_mapped(8)
        table.ensure_mapped(9)
        walker.walk(0, table, 8)
        fetches_before = len(memory.fetches)
        result = walker.walk(10_000, table, 9)
        # Upper levels cached in the PWC: only the PTE level is walked.
        assert result.levels_fetched == 1
        # PTE entries 8 and 9 share one 64 B line, now cached in L2/L3.
        assert len(memory.fetches) == fetches_before
        assert not result.pte_reached_memory

    def test_pwc_deepest_hit_priority(self):
        pwc = PageWalkCache(4)
        pwc.fill(1, 0, 0)
        pwc.fill(1, 0, 2)
        assert pwc.deepest_hit(1, 0) == 2

    def test_pwc_miss(self):
        pwc = PageWalkCache(4)
        assert pwc.deepest_hit(1, 0) == -1

    def test_pwc_pid_isolation(self):
        pwc = PageWalkCache(4)
        pwc.fill(1, 0, 2)
        assert pwc.deepest_hit(2, 0) == -1

    def test_pwc_capacity(self):
        pwc = PageWalkCache(2)
        for vpn in (0 << 9, 1 << 9, 2 << 9):  # distinct PMD prefixes
            pwc.fill(1, vpn, 2)
        hits = [pwc.deepest_hit(1, vpn) for vpn in (0 << 9, 1 << 9, 2 << 9)]
        assert hits.count(2) == 2

    def test_flush(self):
        pwc = PageWalkCache(4)
        pwc.fill(1, 0, 1)
        pwc.flush()
        assert pwc.deepest_hit(1, 0) == -1


class TestMmuHint:
    def test_hint_fires_once_per_walk(self):
        hint = HintRecorder()
        walker, _, _ = make_walker(hint=hint)
        table = make_page_table()
        table.ensure_mapped(7)
        walker.walk(0, table, 7)
        assert len(hint.hints) == 1

    def test_hint_carries_translation(self):
        hint = HintRecorder()
        walker, _, _ = make_walker(hint=hint)
        table = make_page_table()
        ppn = table.ensure_mapped(7)
        walker.walk(0, table, 7)
        _, pte_line, pid, vpn, target = hint.hints[0]
        assert pte_line == line_of(table.pte_entry_address(7))
        assert (pid, vpn, target) == (1, 7, ppn)

    def test_hint_fires_before_pte_memory_fetch(self):
        hint = HintRecorder()
        walker, memory, _ = make_walker(hint=hint)
        table = make_page_table()
        table.ensure_mapped(7)
        walker.walk(0, table, 7)
        hint_time = hint.hints[0][0]
        pte_fetch_time = [f for f in memory.fetches if f[3]][0][0]
        assert hint_time <= pte_fetch_time

    def test_hint_fires_even_on_cached_pte(self):
        hint = HintRecorder()
        walker, _, _ = make_walker(hint=hint)
        table = make_page_table()
        table.ensure_mapped(7)
        walker.walk(0, table, 7)
        walker.walk(10_000, table, 7)
        # Second walk: PTE line hits the caches, the hint still fires
        # (Section III-B: the signal is sent on every walk).
        assert len(hint.hints) == 2

    def test_no_hint_when_unwired(self):
        walker, _, _ = make_walker(hint=None)
        table = make_page_table()
        table.ensure_mapped(7)
        walker.walk(0, table, 7)  # must not raise
