"""Unit tests for figure computations, on hand-crafted metrics.

A fake runner hands the figure modules synthetic :class:`RunMetrics`, so
the row arithmetic (percentages, normalisation, averaging rules) is
checked exactly, without simulation.
"""

import pytest

from repro.experiments import (
    fig7_access_breakdown,
    fig9_prefetch_accuracy,
    fig10_swap_mix,
    fig11_swap_rate,
    fig13_prtc_wait,
    fig14_performance,
)
from repro.experiments.figures import (
    FigureResult,
    SUITE_ORDER,
    suite_of,
    workloads_in_suite,
)
from repro.sim.metrics import RunMetrics


def metrics(scheme, workload, **overrides):
    base = dict(
        scheme=scheme,
        workload=workload,
        suite=suite_of(workload),
        instructions=1_000_000,
        cycles=2_000_000.0,
        ipc=0.5,
        ammat=300.0,
        serviced_dram=800,
        serviced_nvm=200,
        serviced_buffer=0,
        positive_accesses=500,
        negative_accesses=50,
        neutral_accesses=450,
        swaps_total=100,
        swaps_mmu=60,
        swaps_pct=20,
        swaps_regular=20,
        prefetch_accurate=70,
        prefetch_inaccurate=10,
        tlb_misses=1000,
        pte_llc_misses=150,
        mmu_driver_hit_rate=1.0,
        remap_wait_cycles=10_000.0,
        remap_misses=100,
    )
    base.update(overrides)
    return RunMetrics(**base)


class FakeRunner:
    """Quacks like ExperimentRunner for the figure modules."""

    def __init__(self, table):
        # table: {(scheme, workload, variant): RunMetrics}
        self.table = table
        self.scale = 512
        self.measure_ops = 0
        self.warmup_ops = 0
        self.seed = 0

    def workload_names(self):
        return sorted({key[1] for key in self.table})

    def run(self, scheme, workload, variant="default"):
        return self.table[(scheme, workload, variant)]

    def run_matrix(self, schemes, workload_names=None, variant="default"):
        names = list(workload_names) if workload_names else self.workload_names()
        return {
            scheme: {name: self.run(scheme, name, variant) for name in names}
            for scheme in schemes
        }


def full_table(workloads=("lbmx4", "milcx4"), **per_scheme):
    table = {}
    for workload in workloads:
        for scheme in ("pageseer", "pom", "mempod"):
            overrides = per_scheme.get(scheme, {})
            table[(scheme, workload, "default")] = metrics(
                scheme, workload, **overrides
            )
        table[("pageseer", workload, "nobw")] = metrics("pageseer", workload)
    return table


class TestFig7Math:
    def test_percentages(self):
        runner = FakeRunner(full_table(
            pageseer=dict(serviced_dram=900, serviced_nvm=50, serviced_buffer=50),
        ))
        result = fig7_access_breakdown.compute(runner)
        averages = {row[1]: row for row in result.rows if row[0] == "AVERAGE"}
        assert averages["pageseer"][2] == pytest.approx(90.0)
        assert averages["pageseer"][4] == pytest.approx(5.0)
        assert averages["pom"][2] == pytest.approx(80.0)


class TestFig9Math:
    def test_average_skips_workloads_without_prefetches(self):
        table = full_table()
        table[("pageseer", "mcfx8", "default")] = metrics(
            "pageseer", "mcfx8", prefetch_accurate=0, prefetch_inaccurate=0
        )
        runner = FakeRunner(table)
        result = fig9_prefetch_accuracy.compute(runner)
        average = result.row_map()["AVERAGE"][3]
        # Both contributing workloads have accuracy 70/80 = 87.5%.
        assert average == pytest.approx(87.5)


class TestFig10Math:
    def test_split_percentages(self):
        runner = FakeRunner(full_table())
        result = fig10_swap_mix.compute(runner)
        row = result.row_map()["lbmx4"]
        assert row[2] == pytest.approx(60.0)  # mmu
        assert row[3] == pytest.approx(20.0)  # pct
        assert row[4] == pytest.approx(20.0)  # regular

    def test_zero_swap_workload_rows(self):
        table = full_table()
        table[("pageseer", "lbmx4", "default")] = metrics(
            "pageseer", "lbmx4", swaps_total=0, swaps_mmu=0, swaps_pct=0,
            swaps_regular=0,
        )
        runner = FakeRunner(table)
        row = fig10_swap_mix.compute(runner).row_map()["lbmx4"]
        assert row[2] == row[3] == row[4] == 0.0


class TestFig11Math:
    def test_rates_per_suite(self):
        runner = FakeRunner(full_table())
        result = fig11_swap_rate.compute(runner)
        # 100 swaps / 1M instructions = 0.1 per kilo-instruction.
        assert result.row_map()["AVERAGE"][1] == pytest.approx(0.1)


class TestFig13Math:
    def test_reduction(self):
        table = full_table()
        table[("pageseer", "lbmx4", "default")] = metrics(
            "pageseer", "lbmx4", remap_wait_cycles=4_000.0
        )
        table[("pom", "lbmx4", "default")] = metrics(
            "pom", "lbmx4", remap_wait_cycles=10_000.0
        )
        runner = FakeRunner(table)
        row = fig13_prtc_wait.compute(runner).row_map()["lbmx4"]
        assert row[3] == pytest.approx(60.0)

    def test_zero_pom_wait_handled(self):
        table = full_table()
        table[("pom", "lbmx4", "default")] = metrics(
            "pom", "lbmx4", remap_wait_cycles=0.0
        )
        runner = FakeRunner(table)
        row = fig13_prtc_wait.compute(runner).row_map()["lbmx4"]
        assert row[3] == 0.0


class TestFig14Math:
    def test_normalisation_to_mempod(self):
        table = full_table(
            pageseer=dict(ipc=0.6, ammat=200.0),
            pom=dict(ipc=0.5, ammat=250.0),
            mempod=dict(ipc=0.4, ammat=400.0),
        )
        runner = FakeRunner(table)
        row = fig14_performance.compute(runner).row_map()["lbmx4"]
        assert row[1] == pytest.approx(0.5 / 0.4)   # ipc_pom
        assert row[2] == pytest.approx(0.6 / 0.4)   # ipc_pageseer
        assert row[3] == pytest.approx(250 / 400)   # ammat_pom
        assert row[4] == pytest.approx(200 / 400)   # ammat_pageseer

    def test_headline_ratios(self):
        table = full_table(
            pageseer=dict(ipc=0.6, ammat=200.0),
            pom=dict(ipc=0.5, ammat=250.0),
            mempod=dict(ipc=0.4, ammat=400.0),
        )
        runner = FakeRunner(table)
        ratios = fig14_performance.headline_ratios(runner)
        assert ratios["ipc_vs_mempod"] == pytest.approx(1.5)
        assert ratios["ipc_vs_pom"] == pytest.approx(1.2)
        assert ratios["ammat_vs_pom"] == pytest.approx(0.8)


class TestSuiteHelpers:
    def test_suite_of(self):
        assert suite_of("lbmx4") == "spec"
        assert suite_of("mix3") == "mix"
        with pytest.raises(KeyError):
            suite_of("nope")

    def test_workloads_in_suite_partition(self):
        total = sum(len(workloads_in_suite(s)) for s in SUITE_ORDER)
        assert total == 26

    def test_figure_result_render_alignment(self):
        result = FigureResult("F", "t", ["a", "bb"], [[1, 2.5], ["x", 3.0]])
        rendered = result.render()
        lines = rendered.splitlines()
        assert lines[1].startswith("a")
        assert "2.500" in rendered


class TestFig8Math:
    def test_classification_percentages(self):
        from repro.experiments import fig8_swap_effectiveness

        runner = FakeRunner(full_table(
            pageseer=dict(positive_accesses=700, negative_accesses=100,
                          neutral_accesses=200),
        ))
        result = fig8_swap_effectiveness.compute(runner)
        averages = {row[1]: row for row in result.rows if row[0] == "AVERAGE"}
        assert averages["pageseer"][2] == pytest.approx(70.0)
        assert averages["pageseer"][3] == pytest.approx(10.0)
        assert averages["pageseer"][4] == pytest.approx(20.0)


class TestFig12Math:
    def test_rates(self):
        from repro.experiments import fig12_pte_miss

        runner = FakeRunner(full_table(
            pageseer=dict(tlb_misses=200, pte_llc_misses=50,
                          mmu_driver_hit_rate=0.98),
        ))
        result = fig12_pte_miss.compute(runner)
        row = result.row_map()["lbmx4"]
        assert row[2] == pytest.approx(25.0)
        assert row[3] == pytest.approx(98.0)

    def test_zero_tlb_misses_excluded_from_average(self):
        from repro.experiments import fig12_pte_miss

        table = full_table()
        table[("pageseer", "lbmx4", "default")] = metrics(
            "pageseer", "lbmx4", tlb_misses=0, pte_llc_misses=0,
            mmu_driver_hit_rate=0.0,
        )
        runner = FakeRunner(table)
        result = fig12_pte_miss.compute(runner)
        # Only milcx4 contributes: 150/1000 = 15%.
        assert result.row_map()["AVERAGE"][2] == pytest.approx(15.0)


class TestAblationMath:
    def test_nocorr_ratio(self):
        from repro.experiments import ablation_nocorr

        table = full_table()
        for workload in ("lbmx4", "milcx4"):
            table[("pageseer", workload, "default")] = metrics(
                "pageseer", workload, ipc=0.6
            )
            table[("pageseer", workload, "nocorr")] = metrics(
                "pageseer", workload, ipc=0.5
            )
        runner = FakeRunner(table)
        result = ablation_nocorr.compute(runner)
        assert result.row_map()["lbmx4"][3] == pytest.approx(1.2)
        assert result.row_map()["GEOMEAN"][3] == pytest.approx(1.2)

    def test_hints_ratio_and_shares(self):
        from repro.experiments import ablation_hints

        table = full_table()
        for workload in ("lbmx4", "milcx4"):
            table[("pageseer", workload, "default")] = metrics(
                "pageseer", workload, ipc=0.6, serviced_dram=900,
                serviced_nvm=100, serviced_buffer=0,
            )
            table[("pageseer", workload, "nohints")] = metrics(
                "pageseer", workload, ipc=0.4, serviced_dram=500,
                serviced_nvm=500, serviced_buffer=0,
            )
        runner = FakeRunner(table)
        result = ablation_hints.compute(runner)
        row = result.row_map()["lbmx4"]
        assert row[3] == pytest.approx(1.5)
        assert row[4] == pytest.approx(0.9)
        assert row[5] == pytest.approx(0.5)

    def test_partial_subset_restriction(self):
        from repro.experiments import ablation_partial

        table = {}
        for workload in ("lbmx4", "milcx4"):  # only 2 of the 6 subset names
            for variant in ("default", "partial"):
                table[("pageseer", workload, variant)] = metrics(
                    "pageseer", workload
                )
        runner = FakeRunner(table)
        result = ablation_partial.compute(runner)
        names = {row[0] for row in result.rows}
        assert names == {"lbmx4", "milcx4", "GEOMEAN"}


class TestCsvExport:
    def test_to_csv_roundtrip(self):
        import csv
        import io

        result = FigureResult("F 1", "t", ["a", "b"], [[1, 2.5], ["x,y", 3]])
        parsed = list(csv.reader(io.StringIO(result.to_csv())))
        assert parsed[0] == ["a", "b"]
        assert parsed[1] == ["1", "2.5"]
        assert parsed[2] == ["x,y", "3"]

    def test_save_csv(self, tmp_path):
        result = FigureResult("F 1", "t", ["a"], [[1]])
        path = tmp_path / "f.csv"
        result.save_csv(path)
        assert path.read_text().startswith("a")
