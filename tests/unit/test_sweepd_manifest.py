"""The sweep service's job manifest: scheduling, persistence, versioning."""

import json
import pickle

import pytest

from repro.common.errors import ManifestVersionError
from repro.sweepd.jobs import (
    DONE,
    LEASED,
    PENDING,
    PRIORITIES,
    QUARANTINED,
    build_job,
    job_id_for,
)
from repro.sweepd.manifest import (
    MANIFEST_NAME,
    RETRY_BACKOFF_BASE_SECONDS,
    SWEEPD_MANIFEST_VERSION,
    JobManifest,
)

SIZING = (1024, 400, 400, 0, "off")


def _job(scheme="pageseer", workload="lbmx4", variant="default", **kwargs):
    return build_job((scheme, workload, variant), SIZING, None, **kwargs)


def _manifest(tmp_path, **kwargs):
    kwargs.setdefault("max_attempts", 3)
    kwargs.setdefault("lease_seconds", 10.0)
    return JobManifest(tmp_path, **kwargs)


class TestJobIdentity:
    def test_job_id_is_deterministic(self):
        request = ("pageseer", "lbmx4", "default")
        assert job_id_for(request, SIZING, None) == job_id_for(request, SIZING, None)

    def test_job_id_distinguishes_seed(self):
        request = ("pageseer", "lbmx4", "default")
        other = (1024, 400, 400, 1, "off")
        assert job_id_for(request, SIZING, None) != job_id_for(request, other, None)

    def test_record_round_trips_through_json(self):
        record = _job()
        clone = type(record).from_json(
            json.loads(json.dumps(record.to_json()))
        )
        assert clone == record


class TestSubmission:
    def test_submit_is_idempotent_by_job_id(self, tmp_path):
        manifest = _manifest(tmp_path)
        new, known = manifest.submit([_job()])
        assert len(new) == 1 and known == []
        new, known = manifest.submit([_job()])
        assert new == [] and len(known) == 1
        assert len(manifest.jobs) == 1

    def test_resubmit_promotes_pending_job_to_hotter_lane(self, tmp_path):
        manifest = _manifest(tmp_path)
        (job_id,), _ = manifest.submit(
            [_job(priority=PRIORITIES["bulk"])]
        )
        manifest.submit([_job(priority=PRIORITIES["interactive"])])
        assert manifest.jobs[job_id].priority == PRIORITIES["interactive"]

    def test_resubmit_never_demotes(self, tmp_path):
        manifest = _manifest(tmp_path)
        (job_id,), _ = manifest.submit(
            [_job(priority=PRIORITIES["interactive"])]
        )
        manifest.submit([_job(priority=PRIORITIES["bulk"])])
        assert manifest.jobs[job_id].priority == PRIORITIES["interactive"]


class TestLeasing:
    def test_interactive_lane_preempts_bulk(self, tmp_path):
        manifest = _manifest(tmp_path)
        manifest.submit([
            _job(workload="lbmx4", priority=PRIORITIES["bulk"]),
            _job(workload="milcx4", priority=PRIORITIES["interactive"]),
        ])
        kind, record, _ = manifest.lease("w0", now=0.0)
        assert kind == "job"
        assert record.workload == "milcx4"

    def test_fifo_within_a_lane(self, tmp_path):
        manifest = _manifest(tmp_path)
        manifest.submit([_job(workload="lbmx4")])
        manifest.submit([_job(workload="milcx4")])
        _, first, _ = manifest.lease("w0", now=0.0)
        _, second, _ = manifest.lease("w1", now=0.0)
        assert first.workload == "lbmx4"
        assert second.workload == "milcx4"

    def test_lease_regrants_same_job_to_same_worker(self, tmp_path):
        manifest = _manifest(tmp_path)
        manifest.submit([_job()])
        _, first, _ = manifest.lease("w0", now=0.0)
        # The reply was lost; the worker retries the same RPC.
        _, again, _ = manifest.lease("w0", now=1.0)
        assert again.job_id == first.job_id
        assert again.attempts == first.attempts == 1

    def test_idle_when_everything_is_leased(self, tmp_path):
        manifest = _manifest(tmp_path)
        manifest.submit([_job()])
        manifest.lease("w0", now=0.0)
        kind, record, retry_after = manifest.lease("w1", now=0.0)
        assert kind == "idle" and record is None and retry_after > 0

    def test_drain_when_all_jobs_are_terminal(self, tmp_path):
        manifest = _manifest(tmp_path)
        (job_id,), _ = manifest.submit([_job()])
        manifest.mark_done(job_id, "digest")
        kind, _, _ = manifest.lease("w0", now=0.0)
        assert kind == "drain"
        assert manifest.drained()

    def test_heartbeat_extends_the_lease(self, tmp_path):
        manifest = _manifest(tmp_path, lease_seconds=10.0)
        (job_id,), _ = manifest.submit([_job()])
        manifest.lease("w0", now=0.0)
        manifest.heartbeat("w0", job_id, steps=123, now=8.0)
        assert not manifest.reclaim_expired(now=12.0)
        assert manifest.jobs[job_id].last_steps == 123

    def test_heartbeat_reclaims_job_after_server_restart(self, tmp_path):
        manifest = _manifest(tmp_path)
        (job_id,), _ = manifest.submit([_job()])
        manifest.lease("w0", now=0.0)
        # Simulate restart: persist (demotes the lease) and reload.
        manifest.persist()
        reloaded = _manifest(tmp_path)
        assert reloaded.load()
        assert reloaded.jobs[job_id].state == PENDING
        # The worker is still simulating and heartbeats: it gets the
        # lease back instead of a second worker starting the same job.
        reloaded.heartbeat("w0", job_id, steps=500, now=0.0)
        assert reloaded.jobs[job_id].state == LEASED
        assert reloaded.jobs[job_id].lease_worker == "w0"
        kind, _, _ = reloaded.lease("w1", now=0.0)
        assert kind == "idle"


class TestFailureHandling:
    def test_expired_lease_requeues_with_backoff(self, tmp_path):
        manifest = _manifest(tmp_path, lease_seconds=10.0)
        (job_id,), _ = manifest.submit([_job()])
        manifest.lease("w0", now=0.0)
        reclaimed = manifest.reclaim_expired(now=11.0)
        assert [record.job_id for record in reclaimed] == [job_id]
        record = manifest.jobs[job_id]
        assert record.state == PENDING
        assert record.reclaims == 1
        assert record.not_before == pytest.approx(
            11.0 + RETRY_BACKOFF_BASE_SECONDS
        )
        # Not leasable until the backoff elapses.
        kind, _, _ = manifest.lease("w1", now=11.0)
        assert kind == "idle"
        kind, _, _ = manifest.lease("w1", now=11.0 + RETRY_BACKOFF_BASE_SECONDS)
        assert kind == "job"

    def test_poison_job_quarantines_after_max_attempts(self, tmp_path):
        manifest = _manifest(tmp_path, max_attempts=2, lease_seconds=1.0)
        (job_id,), _ = manifest.submit([_job()])
        now = 0.0
        for _ in range(2):
            kind, record, retry_after = manifest.lease("w0", now=now)
            while kind != "job":
                now += retry_after
                kind, record, retry_after = manifest.lease("w0", now=now)
            now += 2.0
            manifest.reclaim_expired(now=now)
        record = manifest.jobs[job_id]
        assert record.state == QUARANTINED
        assert record.attempts == 2
        assert len(record.errors) == 2
        assert manifest.drained()

    def test_retryable_failure_requeues(self, tmp_path):
        manifest = _manifest(tmp_path)
        (job_id,), _ = manifest.submit([_job()])
        manifest.lease("w0", now=0.0)
        state = manifest.fail(job_id, "w0", "boom", retryable=True, now=0.0)
        assert state == PENDING
        assert manifest.jobs[job_id].errors == ["boom"]

    def test_non_retryable_failure_quarantines_immediately(self, tmp_path):
        manifest = _manifest(tmp_path)
        (job_id,), _ = manifest.submit([_job()])
        manifest.lease("w0", now=0.0)
        state = manifest.fail(job_id, "w0", "bug", retryable=False, now=0.0)
        assert state == QUARANTINED

    def test_late_failure_for_a_done_job_is_ignored(self, tmp_path):
        manifest = _manifest(tmp_path)
        (job_id,), _ = manifest.submit([_job()])
        manifest.mark_done(job_id, "digest")
        assert manifest.fail(job_id, "w0", "late", retryable=True, now=0.0) == DONE
        assert manifest.jobs[job_id].state == DONE


class TestPersistence:
    def test_round_trip_preserves_records(self, tmp_path):
        manifest = _manifest(tmp_path)
        (done_id, other_id), _ = manifest.submit([
            _job(workload="lbmx4"), _job(workload="milcx4"),
        ])
        manifest.mark_done(done_id, "digest")
        manifest.persist()
        reloaded = _manifest(tmp_path)
        assert reloaded.load()
        assert reloaded.jobs[done_id].state == DONE
        assert reloaded.jobs[done_id].result_digest == "digest"
        assert reloaded.jobs[other_id].state == PENDING
        assert reloaded.counts() == {
            PENDING: 1, LEASED: 0, DONE: 1, QUARANTINED: 0,
        }

    def test_load_returns_false_with_no_manifest(self, tmp_path):
        assert not _manifest(tmp_path).load()

    def test_version_skew_raises_with_hint(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({
            "sweepd_manifest_version": SWEEPD_MANIFEST_VERSION + 1,
            "jobs": [],
        }))
        with pytest.raises(ManifestVersionError, match="unsupported") as excinfo:
            _manifest(tmp_path).load()
        assert excinfo.value.hint

    def test_pickled_manifest_from_older_build_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_bytes(pickle.dumps({"jobs": []}))
        with pytest.raises(ManifestVersionError, match="pickled"):
            _manifest(tmp_path).load()

    def test_schema_mismatch_in_job_entry_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({
            "sweepd_manifest_version": SWEEPD_MANIFEST_VERSION,
            "jobs": [{"job_id": "abc"}],
        }))
        with pytest.raises(ManifestVersionError, match="schema"):
            _manifest(tmp_path).load()

    def test_submit_seq_continues_after_reload(self, tmp_path):
        manifest = _manifest(tmp_path)
        manifest.submit([_job(workload="lbmx4")])
        manifest.persist()
        reloaded = _manifest(tmp_path)
        reloaded.load()
        (new_id,), _ = reloaded.submit([_job(workload="milcx4")])
        first = next(iter(manifest.jobs.values()))
        assert reloaded.jobs[new_id].submit_seq > first.submit_seq
