"""Unit tests for the post-run analysis toolkit (repro.analysis)."""

import pytest

from repro.analysis import LeadTimeProbe, ResidencyProbe, ammat_breakdown
from repro.analysis.lead_time import LeadTimeSummary
from repro.analysis.residency import ResidencySummary
from repro.sim.system import build_system
from repro.workloads import workload_by_name


def probed_system(workload="lbmx4", ops=4000):
    system = build_system("pageseer", workload_by_name(workload), scale=1024)
    lead = LeadTimeProbe(system)
    residency = ResidencyProbe(system)
    system.run_ops(ops)
    return system, lead, residency


class TestLeadTimeProbe:
    def test_requires_pageseer(self):
        system = build_system("noswap", workload_by_name("lbmx4"), scale=1024)
        with pytest.raises(ValueError):
            LeadTimeProbe(system)

    def test_observes_swaps(self):
        _, lead, _ = probed_system()
        summary = lead.summary()
        assert summary.swaps_observed > 0
        assert summary.swaps_with_demand <= summary.swaps_observed

    def test_leads_are_sane(self):
        _, lead, _ = probed_system()
        for lead_cycles, start, end, first_hit in lead.observations:
            assert lead_cycles == first_hit - start
            assert end > start

    def test_probe_does_not_change_results(self):
        plain = build_system("pageseer", workload_by_name("lbmx4"), scale=1024)
        plain.run_ops(3000)
        probed = build_system("pageseer", workload_by_name("lbmx4"), scale=1024)
        LeadTimeProbe(probed)
        probed.run_ops(3000)
        assert [c.clock for c in plain.cores] == [c.clock for c in probed.cores]
        assert plain.stats.get("swap_driver/swaps") == probed.stats.get(
            "swap_driver/swaps"
        )

    def test_summary_fractions(self):
        summary = LeadTimeSummary(
            swaps_observed=10, swaps_with_demand=8, mean_lead=5, median_lead=4,
            fully_hidden=2, partially_hidden=4,
        )
        assert summary.hidden_fraction == pytest.approx(0.25)
        assert summary.covered_fraction == pytest.approx(0.75)

    def test_summary_empty(self):
        summary = LeadTimeSummary(0, 0, 0.0, 0.0, 0, 0)
        assert summary.hidden_fraction == 0.0
        assert "swaps observed" in summary.render()


class TestResidencyProbe:
    def test_requires_pageseer(self):
        system = build_system("pom", workload_by_name("lbmx4"), scale=1024)
        with pytest.raises(ValueError):
            ResidencyProbe(system)

    def test_tracks_residencies(self):
        _, _, residency = probed_system()
        summary = residency.summary()
        assert summary.completed_residencies + summary.live_residencies > 0

    def test_hits_counted(self):
        _, _, residency = probed_system()
        summary = residency.summary()
        assert summary.mean_hits > 0

    def test_break_even_from_config(self):
        system, _, residency = probed_system(ops=500)
        assert residency.break_even_hits == system.config.pageseer.pct_prefetch_threshold

    def test_summary_render(self):
        summary = ResidencySummary(3, 1, 100.0, 20.0, 4, 14)
        text = summary.render()
        assert "3 completed" in text
        assert summary.amortised_fraction == pytest.approx(1.0)


class TestAmmatBreakdown:
    def test_parts_bounded_by_whole(self):
        system, _, _ = probed_system()
        breakdown = ammat_breakdown(system)
        assert breakdown.ammat > 0
        for part in (breakdown.device_service, breakdown.queueing,
                     breakdown.remap_wait, breakdown.other):
            assert 0 <= part <= breakdown.ammat

    def test_device_service_positive(self):
        system, _, _ = probed_system()
        assert ammat_breakdown(system).device_service > 0

    def test_works_for_baselines(self):
        system = build_system("pom", workload_by_name("lbmx4"), scale=1024)
        system.run_ops(2000)
        breakdown = ammat_breakdown(system)
        assert breakdown.ammat > 0

    def test_empty_run(self):
        system = build_system("noswap", workload_by_name("lbmx4"), scale=1024)
        breakdown = ammat_breakdown(system)
        assert breakdown.ammat == 0.0

    def test_render(self):
        system, _, _ = probed_system(ops=1000)
        text = ammat_breakdown(system).render()
        assert "AMMAT" in text
        assert "queueing" in text
