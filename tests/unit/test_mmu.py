"""Unit tests for the MMU front-end (repro.vm.mmu)."""

import itertools

import pytest

from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.cache.hierarchy import CacheHierarchy
from repro.vm.mmu import Mmu
from repro.vm.page_table import PageTable
from repro.vm.walker import PageWalkCache, PageWalker


def make_mmu():
    config = default_system_config(scale=1024, cores=1)
    stats = StatsRegistry()
    hierarchy = CacheHierarchy(config, stats)
    walker = PageWalker(
        0,
        hierarchy,
        PageWalkCache(config.pwc_entries_per_level),
        config.pwc_latency_cycles,
        stats,
        memory_fetch=lambda now, line, w, p, t, pid: now + 100,
    )
    return Mmu(0, config, walker, stats), config, stats


def make_page_table(pid=1):
    counter = itertools.count(10)
    data_counter = itertools.count(1000)
    return PageTable(pid, lambda: next(counter), lambda vpn: next(data_counter))


class TestTranslationPath:
    def test_first_translation_walks(self):
        mmu, _, _ = make_mmu()
        table = make_page_table()
        table.ensure_mapped(5)
        result = mmu.translate(0, table, 5 << 12)
        assert result.source == "walk"
        assert result.ppn == table.translate(5)

    def test_second_translation_hits_l1(self):
        mmu, _, _ = make_mmu()
        table = make_page_table()
        table.ensure_mapped(5)
        mmu.translate(0, table, 5 << 12)
        result = mmu.translate(100, table, 5 << 12)
        assert result.source == "l1"

    def test_l1_hit_latency(self):
        mmu, config, _ = make_mmu()
        table = make_page_table()
        table.ensure_mapped(5)
        mmu.translate(0, table, 5 << 12)
        result = mmu.translate(100, table, 5 << 12)
        assert result.latency == config.l1_tlb.latency_cycles

    def test_l2_hit_after_l1_eviction(self):
        mmu, config, _ = make_mmu()
        table = make_page_table()
        # Fill enough same-set VPNs to push vpn 0 out of the small L1 TLB
        # but keep it in the L2 TLB.
        sets = config.l1_tlb.num_sets
        victims = [k * sets for k in range(config.l1_tlb.ways + 1)]
        for vpn in victims:
            table.ensure_mapped(vpn)
            mmu.translate(0, table, vpn << 12)
        result = mmu.translate(1000, table, victims[0] << 12)
        assert result.source in ("l2", "l1")  # must not need a walk
        assert result.source != "walk"

    def test_walk_latency_larger_than_hits(self):
        mmu, config, _ = make_mmu()
        table = make_page_table()
        table.ensure_mapped(5)
        walk = mmu.translate(0, table, 5 << 12)
        hit = mmu.translate(10_000, table, 5 << 12)
        assert walk.latency > hit.latency

    def test_offset_does_not_matter(self):
        mmu, _, _ = make_mmu()
        table = make_page_table()
        table.ensure_mapped(5)
        a = mmu.translate(0, table, (5 << 12) + 0x10)
        b = mmu.translate(10, table, (5 << 12) + 0xFF0)
        assert a.ppn == b.ppn


class TestInvalidate:
    def test_invalidate_forces_walk(self):
        mmu, _, _ = make_mmu()
        table = make_page_table()
        table.ensure_mapped(5)
        mmu.translate(0, table, 5 << 12)
        mmu.invalidate(1, 5)
        result = mmu.translate(100, table, 5 << 12)
        assert result.source == "walk"


class TestStats:
    def test_tlb_miss_counted(self):
        mmu, _, stats = make_mmu()
        table = make_page_table()
        table.ensure_mapped(5)
        mmu.translate(0, table, 5 << 12)
        assert stats.get("tlb/misses") == 1

    def test_hits_counted(self):
        mmu, _, stats = make_mmu()
        table = make_page_table()
        table.ensure_mapped(5)
        mmu.translate(0, table, 5 << 12)
        mmu.translate(10, table, 5 << 12)
        assert stats.get("tlb/l1_hits") == 1
