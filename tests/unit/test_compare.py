"""Unit tests for the scheme-comparison helper (repro.analysis.compare)."""

import pytest

from repro.analysis.compare import (
    ComparisonRow,
    compare_schemes,
    comparison_table,
    winner_by_ipc,
)
from repro.workloads.extras import extra_workload_by_name

from tests.unit.test_figures import metrics

SIZING = dict(scale=1024, measure_ops=300, warmup_ops=300)


class TestCompareSchemes:
    def test_rows_cover_matrix(self):
        rows = compare_schemes(["milcx4"], schemes=("noswap", "pageseer"), **SIZING)
        assert len(rows) == 2
        assert {row.scheme for row in rows} == {"noswap", "pageseer"}

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            compare_schemes(["milcx4"], schemes=("bogus",), **SIZING)

    def test_accepts_workload_specs(self):
        spec = extra_workload_by_name("gupsx4")
        rows = compare_schemes([spec], schemes=("noswap",), **SIZING)
        assert rows[0].workload == "gupsx4"

    def test_fast_share(self):
        row = ComparisonRow("w", "s", metrics("s", "lbmx4",
                                              serviced_dram=80,
                                              serviced_nvm=10,
                                              serviced_buffer=10))
        assert row.fast_share == pytest.approx(0.9)


class TestTableAndWinner:
    def make_rows(self):
        return [
            ComparisonRow("lbmx4", "noswap", metrics("noswap", "lbmx4", ipc=0.2)),
            ComparisonRow("lbmx4", "pageseer", metrics("pageseer", "lbmx4", ipc=0.3)),
            ComparisonRow("milcx4", "noswap", metrics("noswap", "milcx4", ipc=0.9)),
            ComparisonRow("milcx4", "pageseer", metrics("pageseer", "milcx4", ipc=0.8)),
        ]

    def test_table_shape(self):
        table = comparison_table(self.make_rows())
        assert len(table.rows) == 4
        assert "Comparison" in table.render()

    def test_winner_by_ipc(self):
        winners = winner_by_ipc(self.make_rows())
        assert winners == {"lbmx4": "pageseer", "milcx4": "noswap"}
