"""Unit tests for the memory device model (repro.mem.device)."""

import pytest

from repro.common.config import (
    CYCLES_PER_MEMORY_CYCLE,
    dram_timing_table1,
    nvm_timing_table1,
)
from repro.common.stats import StatsRegistry
from repro.mem.device import MemoryDevice


def make_device(contention=True, nvm=False, capacity=4 * 1024 * 1024):
    config = nvm_timing_table1(capacity) if nvm else dram_timing_table1(capacity)
    return MemoryDevice(config, StatsRegistry(), model_contention=contention)


class TestMapping:
    def test_consecutive_lines_interleave_channels(self):
        device = make_device()
        channels = {device.map_line(i)[0] for i in range(8)}
        assert channels == set(range(4))

    def test_same_row_for_row_run(self):
        device = make_device()
        # Lines 0, 4, 8 ... are consecutive on channel 0 within one row.
        _, bank0, row0 = device.map_line(0)
        _, bank1, row1 = device.map_line(4)
        assert (bank0, row0) == (bank1, row1)

    def test_rows_rotate_banks(self):
        device = make_device()
        lines_per_row = device.config.row_bytes // 64
        _, bank0, _ = device.map_line(0)
        _, bank_next, _ = device.map_line(lines_per_row * device.config.channels)
        assert bank0 != bank_next

    def test_mapping_is_injective_per_channel(self):
        device = make_device()
        seen = set()
        for line in range(0, 4096, 1):
            key = device.map_line(line)
            offset_in_row = (line // device.config.channels) % (
                device.config.row_bytes // 64
            )
            assert (key, offset_in_row) not in seen
            seen.add((key, offset_in_row))


class TestLatency:
    def test_first_access_is_row_miss(self):
        device = make_device(contention=False)
        result = device.access(0, 0, is_write=False)
        expected = (11 + 11) * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == expected
        assert not result.row_hit

    def test_second_access_same_row_hits(self):
        device = make_device(contention=False)
        device.access(0, 0, is_write=False)
        result = device.access(100, 4, is_write=False)
        assert result.row_hit
        expected = 11 * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == expected

    def test_row_conflict_pays_precharge(self):
        device = make_device(contention=False)
        device.access(0, 0, is_write=False)
        lines_per_row = device.config.row_bytes // 64
        banks = device.config.total_banks_per_channel
        conflict_line = lines_per_row * device.config.channels * banks
        assert device.map_line(conflict_line)[1] == device.map_line(0)[1]
        result = device.access(1000, conflict_line, is_write=False)
        assert not result.row_hit
        expected = (11 + 11 + 11) * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == expected

    def test_nvm_slower_than_dram_on_activation(self):
        dram = make_device(contention=False)
        nvm = make_device(contention=False, nvm=True)
        d = dram.access(0, 0, False)
        n = nvm.access(0, 0, False)
        assert (n.finish - n.start) > (d.finish - d.start)

    def test_write_then_read_pays_recovery(self):
        device = make_device(contention=False, nvm=True)
        device.access(0, 0, is_write=True)
        result = device.access(1000, 4, is_write=False)
        recovery = device.config.write_recovery_cycles()
        base = 11 * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == base + recovery

    def test_write_streams_without_recovery(self):
        device = make_device(contention=False, nvm=True)
        device.access(0, 0, is_write=True)
        result = device.access(100, 4, is_write=True)
        base = 11 * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == base


class TestContention:
    def test_same_bank_queues(self):
        device = make_device()
        first = device.access(0, 0, False)
        second = device.access(0, 4, False)
        assert second.start >= first.start
        assert second.queue_delay > 0

    def test_different_banks_parallel(self):
        device = make_device()
        lines_per_row = device.config.row_bytes // 64
        banks = device.config.total_banks_per_channel
        other_bank_line = lines_per_row * device.config.channels
        assert device.map_line(0)[1] != device.map_line(other_bank_line)[1]
        first = device.access(0, 0, False)
        second = device.access(0, other_bank_line, False)
        assert second.queue_delay == 0

    def test_demand_preempts_bulk_backlog(self):
        device = make_device()
        # A long bulk transfer on bank 0's row.
        device.transfer_page(0, 0, 64, is_write=False, bulk=True)
        result = device.access(0, 0, False)
        assert result.queue_delay <= device.preempt_cap_cycles

    def test_bulk_yields_to_demand(self):
        device = make_device()
        demand = device.access(0, 0, False)
        bulk = device.access(0, 4, False, bulk=True)
        assert bulk.start >= demand.finish - device.config.line_transfer_cycles

    def test_no_contention_mode_ignores_queues(self):
        device = make_device(contention=False)
        a = device.access(0, 0, False)
        b = device.access(0, 4, False)
        assert b.queue_delay == 0


class TestTransferPage:
    def test_counts_lines(self):
        device = make_device()
        device.transfer_page(0, 0, 64, is_write=False)
        assert device.reads == 64

    def test_write_transfer_counts_writes(self):
        device = make_device()
        device.transfer_page(0, 0, 64, is_write=True)
        assert device.writes == 64

    def test_finish_after_start(self):
        device = make_device()
        finish = device.transfer_page(500, 0, 64, is_write=False)
        assert finish > 500

    def test_transfer_faster_than_serial_conflicts(self):
        """A page transfer streams rows: far cheaper than 64 row misses."""
        device = make_device(contention=False)
        finish = device.transfer_page(0, 0, 64, is_write=False)
        worst = 64 * ((11 + 11 + 11) * CYCLES_PER_MEMORY_CYCLE + 8)
        assert finish < worst

    def test_partial_transfer(self):
        device = make_device()
        device.transfer_page(0, 0, 32, is_write=False)
        assert device.reads == 32

    def test_single_line_transfer(self):
        device = make_device()
        finish = device.transfer_page(0, 7, 1, is_write=False)
        assert finish > 0
        assert device.reads == 1


class TestIntrospection:
    def test_channel_utilization_grows(self):
        device = make_device()
        assert device.channel_utilization(1000) == 0.0
        device.access(0, 0, False)
        assert device.channel_utilization(1000) > 0.0

    def test_earliest_bus_free(self):
        device = make_device()
        assert device.earliest_bus_free(5) == 5
        # Occupy every channel; the earliest free time must move forward.
        for line in range(device.config.channels):
            device.access(0, line, False)
        assert device.earliest_bus_free(0) > 0
