"""Unit tests for the memory device model (repro.mem.device)."""

import pytest

from repro.common.config import (
    CYCLES_PER_MEMORY_CYCLE,
    dram_timing_table1,
    nvm_timing_table1,
)
from repro.common.stats import StatsRegistry
from repro.mem.device import MemoryDevice


def make_device(contention=True, nvm=False, capacity=4 * 1024 * 1024):
    config = nvm_timing_table1(capacity) if nvm else dram_timing_table1(capacity)
    return MemoryDevice(config, StatsRegistry(), model_contention=contention)


class TestMapping:
    def test_consecutive_lines_interleave_channels(self):
        device = make_device()
        channels = {device.map_line(i)[0] for i in range(8)}
        assert channels == set(range(4))

    def test_same_row_for_row_run(self):
        device = make_device()
        # Lines 0, 4, 8 ... are consecutive on channel 0 within one row.
        _, bank0, row0 = device.map_line(0)
        _, bank1, row1 = device.map_line(4)
        assert (bank0, row0) == (bank1, row1)

    def test_rows_rotate_banks(self):
        device = make_device()
        lines_per_row = device.config.row_bytes // 64
        _, bank0, _ = device.map_line(0)
        _, bank_next, _ = device.map_line(lines_per_row * device.config.channels)
        assert bank0 != bank_next

    def test_mapping_is_injective_per_channel(self):
        device = make_device()
        seen = set()
        for line in range(0, 4096, 1):
            key = device.map_line(line)
            offset_in_row = (line // device.config.channels) % (
                device.config.row_bytes // 64
            )
            assert (key, offset_in_row) not in seen
            seen.add((key, offset_in_row))


class TestLatency:
    def test_first_access_is_row_miss(self):
        device = make_device(contention=False)
        result = device.access(0, 0, is_write=False)
        expected = (11 + 11) * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == expected
        assert not result.row_hit

    def test_second_access_same_row_hits(self):
        device = make_device(contention=False)
        device.access(0, 0, is_write=False)
        result = device.access(100, 4, is_write=False)
        assert result.row_hit
        expected = 11 * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == expected

    def test_row_conflict_pays_precharge(self):
        device = make_device(contention=False)
        device.access(0, 0, is_write=False)
        lines_per_row = device.config.row_bytes // 64
        banks = device.config.total_banks_per_channel
        conflict_line = lines_per_row * device.config.channels * banks
        assert device.map_line(conflict_line)[1] == device.map_line(0)[1]
        result = device.access(1000, conflict_line, is_write=False)
        assert not result.row_hit
        expected = (11 + 11 + 11) * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == expected

    def test_nvm_slower_than_dram_on_activation(self):
        dram = make_device(contention=False)
        nvm = make_device(contention=False, nvm=True)
        d = dram.access(0, 0, False)
        n = nvm.access(0, 0, False)
        assert (n.finish - n.start) > (d.finish - d.start)

    def test_write_then_read_pays_recovery(self):
        device = make_device(contention=False, nvm=True)
        device.access(0, 0, is_write=True)
        result = device.access(1000, 4, is_write=False)
        recovery = device.config.write_recovery_cycles()
        base = 11 * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == base + recovery

    def test_write_streams_without_recovery(self):
        device = make_device(contention=False, nvm=True)
        device.access(0, 0, is_write=True)
        result = device.access(100, 4, is_write=True)
        base = 11 * CYCLES_PER_MEMORY_CYCLE + 8
        assert result.finish - result.start == base


class TestContention:
    def test_same_bank_queues(self):
        device = make_device()
        first = device.access(0, 0, False)
        second = device.access(0, 4, False)
        assert second.start >= first.start
        assert second.queue_delay > 0

    def test_different_banks_parallel(self):
        device = make_device()
        lines_per_row = device.config.row_bytes // 64
        banks = device.config.total_banks_per_channel
        other_bank_line = lines_per_row * device.config.channels
        assert device.map_line(0)[1] != device.map_line(other_bank_line)[1]
        first = device.access(0, 0, False)
        second = device.access(0, other_bank_line, False)
        assert second.queue_delay == 0

    def test_demand_preempts_bulk_backlog(self):
        device = make_device()
        # A long bulk transfer on bank 0's row.
        device.transfer_page(0, 0, 64, is_write=False, bulk=True)
        result = device.access(0, 0, False)
        assert result.queue_delay <= device.preempt_cap_cycles

    def test_bulk_yields_to_demand(self):
        device = make_device()
        demand = device.access(0, 0, False)
        bulk = device.access(0, 4, False, bulk=True)
        assert bulk.start >= demand.finish - device.config.line_transfer_cycles

    def test_no_contention_mode_ignores_queues(self):
        device = make_device(contention=False)
        a = device.access(0, 0, False)
        b = device.access(0, 4, False)
        assert b.queue_delay == 0


class TestTransferPage:
    def test_counts_lines(self):
        device = make_device()
        device.transfer_page(0, 0, 64, is_write=False)
        assert device.reads == 64

    def test_write_transfer_counts_writes(self):
        device = make_device()
        device.transfer_page(0, 0, 64, is_write=True)
        assert device.writes == 64

    def test_finish_after_start(self):
        device = make_device()
        finish = device.transfer_page(500, 0, 64, is_write=False)
        assert finish > 500

    def test_transfer_faster_than_serial_conflicts(self):
        """A page transfer streams rows: far cheaper than 64 row misses."""
        device = make_device(contention=False)
        finish = device.transfer_page(0, 0, 64, is_write=False)
        worst = 64 * ((11 + 11 + 11) * CYCLES_PER_MEMORY_CYCLE + 8)
        assert finish < worst

    def test_partial_transfer(self):
        device = make_device()
        device.transfer_page(0, 0, 32, is_write=False)
        assert device.reads == 32

    def test_single_line_transfer(self):
        device = make_device()
        finish = device.transfer_page(0, 7, 1, is_write=False)
        assert finish > 0
        assert device.reads == 1


class TestIntrospection:
    def test_channel_utilization_grows(self):
        device = make_device()
        assert device.channel_utilization(1000) == 0.0
        device.access(0, 0, False)
        assert device.channel_utilization(1000) > 0.0

    def test_earliest_bus_free(self):
        device = make_device()
        assert device.earliest_bus_free(5) == 5
        # Occupy every channel; the earliest free time must move forward.
        for line in range(device.config.channels):
            device.access(0, line, False)
        assert device.earliest_bus_free(0) > 0


class _InertInjector:
    """An armed-but-silent injector: forces the per-line scalar transfer
    walk (``_transfer_page_faulty``) without ever raising a fault."""

    def check_access(self, device, now, line, is_write):
        return None

    def check_transfer(self, device, now, first_line, line_count, is_write):
        return None


def _device_state(device):
    """Every observable piece of device state, for differential checks."""
    return (
        list(device._bank_demand_until),
        list(device._bank_any_until),
        list(device._bank_total_busy),
        list(device._bus_demand_until),
        list(device._bus_any_until),
        list(device._bus_total_busy),
        list(device._open_rows),
        list(device._row_written),
        device.reads,
        device.writes,
        device.row_hits,
        device.queue_delay_total,
        device.service_time_total,
    )


def _traffic(seed=7, count=400, lines=4096):
    """A deterministic mixed demand/bulk access pattern."""
    import random

    rng = random.Random(seed)
    now = 0
    for _ in range(count):
        now += rng.randrange(0, 30)
        yield (now, rng.randrange(lines), rng.random() < 0.4,
               rng.random() < 0.2)


class TestAccessFinishDifferential:
    """``access_finish`` is ``access`` minus the AccessResult allocation.

    The rewrite inlined the two-priority reservation bodies into
    ``access_finish``; this differential harness drives both entry points
    with identical traffic on two identical devices and requires the
    finish times and the complete internal state (bank/bus timelines,
    open rows, write-recovery flags, counters) to stay bit-identical.
    """

    @pytest.mark.parametrize("nvm", [False, True])
    @pytest.mark.parametrize("contention", [True, False])
    def test_same_schedule_and_state(self, nvm, contention):
        full = make_device(contention=contention, nvm=nvm)
        fast = make_device(contention=contention, nvm=nvm)
        for now, line, is_write, bulk in _traffic():
            result = full.access(now, line, is_write, bulk=bulk)
            finish = fast.access_finish(now, line, is_write, bulk=bulk)
            assert finish == result.finish
        assert _device_state(full)[:11] == _device_state(fast)[:11]

    def test_queue_delay_only_tracked_by_access(self):
        """The one intentional divergence: access_finish skips the
        queue-delay aggregate (nothing on the hot path reads it)."""
        full = make_device()
        fast = make_device()
        for now, line, is_write, bulk in _traffic(seed=3, count=100):
            full.access(now, line, is_write, bulk=bulk)
            fast.access_finish(now, line, is_write, bulk=bulk)
        assert full.queue_delay_total >= 0


class TestTransferPageDifferential:
    """Closed-form transfer planning vs the per-line scalar walk.

    With an injector armed, ``transfer_page`` falls back to the original
    per-line/group walk (``_transfer_page_faulty``).  Arming an injector
    that never fires therefore yields a scalar reference execution of the
    same transfer; the closed-form planner must match its finish time and
    every state mutation exactly, which is what makes the fallback a safe
    batch boundary.
    """

    @pytest.mark.parametrize("is_write", [False, True])
    @pytest.mark.parametrize("bulk", [False, True])
    def test_matches_scalar_walk(self, is_write, bulk):
        closed = make_device()
        scalar = make_device()
        scalar.injector = _InertInjector()
        now = 0
        for first_line, count in [(0, 64), (7, 64), (128, 32), (3, 1),
                                  (200, 5), (64, 64)]:
            now += 50
            a = closed.transfer_page(now, first_line, count, is_write,
                                     bulk=bulk)
            b = scalar.transfer_page(now, first_line, count, is_write,
                                     bulk=bulk)
            assert a == b, (first_line, count)
        scalar.injector = None
        assert _device_state(closed)[:11] == _device_state(scalar)[:11]

    def test_interleaved_with_demand_traffic(self):
        closed = make_device()
        scalar = make_device()
        scalar.injector = _InertInjector()
        import random

        rng = random.Random(11)
        now = 0
        for _ in range(60):
            now += rng.randrange(0, 100)
            if rng.random() < 0.3:
                first = rng.randrange(0, 4096 - 64)
                count = rng.choice([1, 8, 32, 64])
                a = closed.transfer_page(now, first, count, True, bulk=True)
                b = scalar.transfer_page(now, first, count, True, bulk=True)
            else:
                line = rng.randrange(4096)
                write = rng.random() < 0.5
                a = closed.access_finish(now, line, write)
                b = scalar.access_finish(now, line, write)
            assert a == b
        scalar.injector = None
        assert _device_state(closed)[:11] == _device_state(scalar)[:11]
