"""Unit tests for the workload generators (repro.workloads.synthetic)."""

import itertools

import pytest

from repro.common.addr import LINES_PER_PAGE, PAGE_BYTES, page_of
from repro.common.rng import DeterministicRng
from repro.workloads.synthetic import (
    GENERATORS,
    HEAP_BASE,
    blocked_sweep,
    hot_cold,
    phased_sweep,
    pointer_chase,
    random_mix,
    stencil_sweep,
    stream_sweep,
)

FOOTPRINT = 64

#: The synthetic archetypes ("trace" is a file-replay adapter with its own
#: tests and needs a path argument).
ARCHETYPES = sorted(name for name in GENERATORS if name != "trace")


def take(generator, n):
    return list(itertools.islice(generator, n))


def rng(name="t"):
    return DeterministicRng(name, 0)


class TestCommonProperties:
    @pytest.mark.parametrize("name", ARCHETYPES)
    def test_addresses_within_footprint(self, name):
        ops = take(GENERATORS[name](rng(name), FOOTPRINT), 2000)
        for op in ops:
            page = page_of(op.vaddr - HEAP_BASE)
            assert 0 <= page < FOOTPRINT

    @pytest.mark.parametrize("name", ARCHETYPES)
    def test_deterministic(self, name):
        a = take(GENERATORS[name](rng(name), FOOTPRINT), 500)
        b = take(GENERATORS[name](rng(name), FOOTPRINT), 500)
        assert a == b

    @pytest.mark.parametrize("name", ARCHETYPES)
    def test_instructions_positive(self, name):
        ops = take(GENERATORS[name](rng(name), FOOTPRINT), 200)
        assert all(op.instructions_before > 0 for op in ops)

    @pytest.mark.parametrize("name", ARCHETYPES)
    def test_mixes_reads_and_writes(self, name):
        ops = take(GENERATORS[name](rng(name), FOOTPRINT), 2000)
        kinds = {op.is_write for op in ops}
        assert kinds == {True, False}

    @pytest.mark.parametrize("name", ARCHETYPES)
    def test_infinite(self, name):
        gen = GENERATORS[name](rng(name), FOOTPRINT)
        assert len(take(gen, 10_000)) == 10_000


class TestStreamSweep:
    def test_flurries_are_page_dense(self):
        ops = take(stream_sweep(rng(), FOOTPRINT, arrays=1), LINES_PER_PAGE)
        pages = {page_of(op.vaddr) for op in ops}
        assert len(pages) == 1

    def test_arrays_interleave(self):
        ops = take(stream_sweep(rng(), FOOTPRINT, arrays=2), 2 * LINES_PER_PAGE)
        pages = [page_of(op.vaddr - HEAP_BASE) for op in ops]
        assert pages[0] != pages[LINES_PER_PAGE]

    def test_stable_page_order_across_sweeps(self):
        per_sweep = (FOOTPRINT // 2) * 2 * LINES_PER_PAGE
        ops = take(stream_sweep(rng(), FOOTPRINT, arrays=2), 2 * per_sweep)
        first = [page_of(op.vaddr) for op in ops[:per_sweep]]
        second = [page_of(op.vaddr) for op in ops[per_sweep:]]
        assert first == second


class TestPointerChase:
    def test_sparse_page_visits(self):
        ops = take(pointer_chase(rng(), FOOTPRINT, lines_per_visit=2), 2 * FOOTPRINT)
        pages = [page_of(op.vaddr) for op in ops]
        # Each page visited for exactly lines_per_visit consecutive refs.
        for k in range(0, len(pages), 2):
            assert pages[k] == pages[k + 1]

    def test_tour_covers_footprint(self):
        ops = take(pointer_chase(rng(), FOOTPRINT, lines_per_visit=1), FOOTPRINT)
        pages = {page_of(op.vaddr - HEAP_BASE) for op in ops}
        assert len(pages) == FOOTPRINT

    def test_tour_order_stable(self):
        gen = pointer_chase(rng(), FOOTPRINT, lines_per_visit=1)
        first = [page_of(op.vaddr) for op in take(gen, FOOTPRINT)]
        second = [page_of(op.vaddr) for op in take(gen, FOOTPRINT)]
        assert first == second


class TestHotCold:
    def test_hot_pages_dominate(self):
        ops = take(hot_cold(rng(), 200, hot_fraction=0.1, hot_probability=0.8), 5000)
        hot_limit = 20
        hot = sum(1 for op in ops if page_of(op.vaddr - HEAP_BASE) < hot_limit)
        assert hot > len(ops) * 0.6

    def test_cold_flurries_sparse(self):
        ops = take(
            hot_cold(rng(), 200, hot_fraction=0.1, hot_probability=0.0,
                     flurry_lines=20),
            1000,
        )
        # Cold visits emit flurry_lines // 5 = 4 lines per page visit.
        pages = [page_of(op.vaddr) for op in ops]
        run_lengths = [len(list(g)) for _, g in itertools.groupby(pages)]
        assert max(run_lengths) <= 4


class TestPhasedSweep:
    def test_order_changes_between_phases(self):
        per_phase = FOOTPRINT * LINES_PER_PAGE
        ops = take(phased_sweep(rng(), FOOTPRINT), 2 * per_phase)
        first = [page_of(op.vaddr) for op in ops[:per_phase:LINES_PER_PAGE]]
        second = [page_of(op.vaddr) for op in ops[per_phase::LINES_PER_PAGE]]
        assert first != second
        assert sorted(first) == sorted(second)


class TestBlockedSweep:
    def test_blocks_revisited(self):
        ops = take(
            blocked_sweep(rng(), FOOTPRINT, block_pages=8, passes_per_block=2),
            2 * 8 * LINES_PER_PAGE,
        )
        pages = [page_of(op.vaddr - HEAP_BASE) for op in ops]
        first_pass = pages[: 8 * LINES_PER_PAGE]
        second_pass = pages[8 * LINES_PER_PAGE :]
        assert first_pass == second_pass
        assert set(first_pass) == set(range(8))


class TestStencil:
    def test_touches_neighbour_rows(self):
        ops = take(stencil_sweep(rng(), FOOTPRINT, arrays=1, row_pages=4), 4000)
        pages = {page_of(op.vaddr - HEAP_BASE) for op in ops}
        assert len(pages) > 10


class TestRandomMix:
    def test_blends_stream_and_scatter(self):
        ops = take(random_mix(rng(), FOOTPRINT, streamed_fraction=0.5), 4000)
        pages = [page_of(op.vaddr - HEAP_BASE) for op in ops]
        assert len(set(pages)) > FOOTPRINT // 2
