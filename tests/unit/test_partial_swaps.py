"""Unit tests for the SILC-FM partial-swap extension (Section VI)."""

import pytest

from repro.common.addr import LINES_PER_PAGE
from repro.core.pct import PctEntry

from tests.unit.test_pageseer_hmc import make_hmc, nvm_line


def make_partial_hmc(**extra):
    # The NVM HPT is neutralised (threshold at counter max) so the tests
    # control exactly when swaps happen via the MMU-hint path.
    extra.setdefault("hpt_swap_threshold", 63)
    return make_hmc(partial_swaps_enabled=True, **extra)


def build_sparse_usage(hmc, page, lines):
    """Touch only *lines* of the page so the bitmap marks them hot."""
    now = 0
    for offset in lines:
        now = hmc.handle_request(now + 1, page * LINES_PER_PAGE + offset, False, 1)
    return now


def seed_hot_history(hmc, page, threshold, follower=None):
    """Give *page* a hot PCT history in both the DRAM PCT and the PCTc.

    (Touching the page during bitmap building leaves a cold PCTc entry
    that would otherwise shadow a write to the in-DRAM PCT.)"""
    entry = PctEntry(threshold, follower, threshold if follower else 0)
    hmc.pct.write(page, entry)
    hmc.pctc.update(page, entry, effective_change=True)


class TestPartialSwapExecution:
    def test_sparse_page_swapped_partially(self):
        hmc, config, stats = make_partial_hmc()
        page = nvm_line(hmc) // LINES_PER_PAGE
        build_sparse_usage(hmc, page, range(8))
        seed_hot_history(hmc, page, config.pageseer.pct_prefetch_threshold)
        hmc.mmu_hint(10_000, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=page)
        assert hmc.prt.is_swapped(page)
        assert stats.get("swap_driver/partial_swaps") == 1
        residue = hmc.swap_driver.partial_residue[page]
        # The 8 touched lines moved; 56 remain as residue.
        assert bin(residue).count("1") == LINES_PER_PAGE - 8

    def test_dense_page_swapped_whole(self):
        hmc, config, stats = make_partial_hmc()
        page = nvm_line(hmc) // LINES_PER_PAGE
        build_sparse_usage(hmc, page, range(config.pageseer.partial_swap_full_threshold))
        assert not hmc.prt.is_swapped(page)
        seed_hot_history(hmc, page, config.pageseer.pct_prefetch_threshold)
        hmc.mmu_hint(10_000, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=page)
        assert hmc.prt.is_swapped(page)
        assert stats.get("swap_driver/partial_swaps") == 0
        assert page not in hmc.swap_driver.partial_residue

    def test_unknown_bitmap_moves_whole_page(self):
        hmc, config, stats = make_partial_hmc()
        page = nvm_line(hmc, index=3) // LINES_PER_PAGE
        hmc.pct.write(page, PctEntry(config.pageseer.pct_prefetch_threshold, None, 0))
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=page)
        assert hmc.prt.is_swapped(page)
        assert page not in hmc.swap_driver.partial_residue

    def test_disabled_by_default(self):
        hmc, config, stats = make_hmc()
        page = nvm_line(hmc) // LINES_PER_PAGE
        build_sparse_usage(hmc, page, range(4))
        assert stats.get("swap_driver/partial_swaps") == 0


class TestResidueMigration:
    def make_partially_swapped(self):
        hmc, config, stats = make_partial_hmc()
        page = nvm_line(hmc) // LINES_PER_PAGE
        build_sparse_usage(hmc, page, range(8))
        seed_hot_history(hmc, page, config.pageseer.pct_prefetch_threshold)
        hmc.mmu_hint(10_000, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=page)
        assert page in hmc.swap_driver.partial_residue
        end = hmc.swap_driver.records[-1].end
        return hmc, stats, page, end

    def test_moved_line_serviced_dram(self):
        hmc, stats, page, end = self.make_partially_swapped()
        dram_before = stats.get("hmc/serviced_dram")
        hmc.handle_request(end + 10, page * LINES_PER_PAGE + 0, False, 1)
        assert stats.get("hmc/serviced_dram") == dram_before + 1

    def test_residue_line_serviced_from_home_then_migrated(self):
        hmc, stats, page, end = self.make_partially_swapped()
        offset = 40  # untouched line
        assert hmc.swap_driver.partial_residue[page] & (1 << offset)
        nvm_before = stats.get("hmc/serviced_nvm")
        hmc.handle_request(end + 10, page * LINES_PER_PAGE + offset, False, 1)
        assert stats.get("hmc/serviced_nvm") == nvm_before + 1
        assert stats.get("hmc/residue_line_migrations") == 1
        # The line migrated: the residue bit is cleared.
        assert not hmc.swap_driver.partial_residue.get(page, 0) & (1 << offset)

    def test_migrated_residue_line_hits_dram_next(self):
        hmc, stats, page, end = self.make_partially_swapped()
        offset = 40
        finish = hmc.handle_request(end + 10, page * LINES_PER_PAGE + offset, False, 1)
        dram_before = stats.get("hmc/serviced_dram")
        hmc.handle_request(finish + 1000, page * LINES_PER_PAGE + offset, False, 1)
        assert stats.get("hmc/serviced_dram") == dram_before + 1

    def test_residue_cleared_on_swap_out(self):
        hmc, stats, page, end = self.make_partially_swapped()
        # Force the page out by filling its colour with other swaps.
        colour = hmc.prt.colour_of(page)
        now = end + 1
        evicted = False
        for index in range(1, 12):
            candidate = hmc.dram_pages + colour + index * hmc.prt.num_colours
            if candidate >= hmc.total_pages:
                break
            if hmc.swap_driver.request_swap(now, candidate, "regular", 0.0):
                now = hmc.swap_driver.records[-1].end + 1
            if not hmc.prt.is_swapped(page):
                evicted = True
                break
        if evicted:
            assert page not in hmc.swap_driver.partial_residue
