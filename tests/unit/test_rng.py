"""Unit tests for deterministic random streams (repro.common.rng)."""

import pytest

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_name_same_stream(self):
        a = DeterministicRng("x", 42)
        b = DeterministicRng("x", 42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_names_diverge(self):
        a = DeterministicRng("x", 42)
        b = DeterministicRng("y", 42)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_different_seeds_diverge(self):
        a = DeterministicRng("x", 1)
        b = DeterministicRng("x", 2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_derive_is_deterministic(self):
        a = DeterministicRng("x", 7).derive("child")
        b = DeterministicRng("x", 7).derive("child")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_derive_differs_from_parent(self):
        parent = DeterministicRng("x", 7)
        child = DeterministicRng("x", 7).derive("child")
        assert [parent.randint(0, 10**9) for _ in range(5)] != [
            child.randint(0, 10**9) for _ in range(5)
        ]


class TestDistributions:
    def test_randint_bounds(self):
        rng = DeterministicRng("bounds")
        for _ in range(200):
            assert 3 <= rng.randint(3, 9) <= 9

    def test_random_unit_interval(self):
        rng = DeterministicRng("unit")
        for _ in range(200):
            assert 0.0 <= rng.random() < 1.0

    def test_choice_members(self):
        rng = DeterministicRng("choice")
        seq = ["a", "b", "c"]
        for _ in range(50):
            assert rng.choice(seq) in seq

    def test_sample_distinct(self):
        rng = DeterministicRng("sample")
        picked = rng.sample(range(100), 10)
        assert len(set(picked)) == 10

    def test_permutation_is_permutation(self):
        rng = DeterministicRng("perm")
        order = rng.permutation(50)
        assert sorted(order) == list(range(50))

    def test_zipf_bounds(self):
        rng = DeterministicRng("zipf")
        for _ in range(300):
            assert 0 <= rng.zipf_index(17) < 17

    def test_zipf_skews_low(self):
        rng = DeterministicRng("zipfskew")
        draws = [rng.zipf_index(1000, skew=0.9) for _ in range(2000)]
        low = sum(1 for d in draws if d < 100)
        assert low > len(draws) * 0.5

    def test_zipf_rejects_empty(self):
        rng = DeterministicRng("zipfbad")
        with pytest.raises(ValueError):
            rng.zipf_index(0)

    def test_geometric_minimum_one(self):
        rng = DeterministicRng("geo")
        for _ in range(100):
            assert rng.geometric(0.5) >= 1

    def test_geometric_rejects_bad_p(self):
        rng = DeterministicRng("geobad")
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)

    def test_shuffle_preserves_members(self):
        rng = DeterministicRng("shuffle")
        values = list(range(30))
        rng.shuffle(values)
        assert sorted(values) == list(range(30))

    def test_iter_randints_stream(self):
        rng = DeterministicRng("iter")
        stream = rng.iter_randints(1, 6)
        draws = [next(stream) for _ in range(20)]
        assert all(1 <= d <= 6 for d in draws)
