"""Unit tests for the assembled PageSeer controller (repro.core.hmc)."""

import pytest

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.core.hmc import PageSeerHmc
from repro.sim.hmc_base import RequestKind
from repro.vm.os_model import OsModel


def make_hmc(cores=1, **pageseer_overrides):
    import dataclasses

    config = default_system_config(scale=1024, cores=cores)
    if pageseer_overrides:
        config = dataclasses.replace(
            config,
            pageseer=dataclasses.replace(config.pageseer, **pageseer_overrides),
        )
    stats = StatsRegistry()
    os_model = OsModel(config.memory)
    return PageSeerHmc(config, os_model, stats), config, stats


def nvm_line(hmc, colour=0, index=0, offset=0):
    prt = hmc.prt
    page = hmc.dram_pages + colour + index * prt.num_colours
    assert prt.colour_of(page) == colour
    return page * LINES_PER_PAGE + offset


class TestRequestPath:
    def test_nvm_request_serviced_nvm(self):
        hmc, _, stats = make_hmc()
        finish = hmc.handle_request(0, nvm_line(hmc), False, pid=1)
        assert finish > 0
        assert stats.get("hmc/serviced_nvm") == 1

    def test_dram_request_serviced_dram(self):
        hmc, _, stats = make_hmc()
        # Use a non-metadata DRAM page.
        line = (hmc.dram_pages - 1) * LINES_PER_PAGE
        hmc.handle_request(0, line, False, pid=1)
        assert stats.get("hmc/serviced_dram") == 1

    def test_prtc_miss_records_wait(self):
        hmc, _, stats = make_hmc()
        hmc.handle_request(0, nvm_line(hmc), False, pid=1)
        assert stats.get("hmc/remap_misses") == 1
        assert stats.get("hmc/remap_wait_cycles") > 0

    def test_prtc_hit_no_wait(self):
        hmc, _, stats = make_hmc()
        hmc.handle_request(0, nvm_line(hmc, index=0), False, pid=1)
        waits = stats.get("hmc/remap_misses")
        hmc.handle_request(10_000, nvm_line(hmc, index=1), False, pid=1)
        assert stats.get("hmc/remap_misses") == waits

    def test_ammat_observed_for_demand(self):
        hmc, _, stats = make_hmc()
        hmc.handle_request(0, nvm_line(hmc), False, pid=1)
        assert stats.count("hmc/ammat") == 1

    def test_writeback_excluded_from_ammat(self):
        hmc, _, stats = make_hmc()
        hmc.handle_request(0, nvm_line(hmc), True, pid=1, kind=RequestKind.WRITEBACK)
        assert stats.count("hmc/ammat") == 0


class TestHptSwaps:
    def test_hot_nvm_page_swapped_by_hpt(self):
        hmc, config, stats = make_hmc()
        line = nvm_line(hmc)
        threshold = config.pageseer.hpt_swap_threshold
        now = 0
        for k in range(threshold + 1):
            now = hmc.handle_request(now + 1, line + k % 4, False, pid=1)
        assert stats.get("swap_driver/swaps_regular") == 1
        assert hmc.prt.is_swapped(line // LINES_PER_PAGE)

    def test_post_swap_requests_hit_dram(self):
        hmc, config, _ = make_hmc()
        line = nvm_line(hmc)
        now = 0
        for k in range(config.pageseer.hpt_swap_threshold + 1):
            now = hmc.handle_request(now + 1, line + k, False, pid=1)
        end = hmc.swap_driver.records[0].end
        stats = hmc.stats
        dram_before = stats.get("hmc/serviced_dram")
        hmc.handle_request(end + 10, line, False, pid=1)
        assert stats.get("hmc/serviced_dram") == dram_before + 1

    def test_positive_access_accounting(self):
        hmc, config, stats = make_hmc()
        line = nvm_line(hmc)
        now = 0
        for k in range(config.pageseer.hpt_swap_threshold + 2):
            now = hmc.handle_request(now + 1, line + k, False, pid=1)
        assert stats.get("hmc/positive_accesses") > 0


class TestMmuHints:
    def test_hint_counts(self):
        hmc, _, stats = make_hmc()
        pte_line = 2 * LINES_PER_PAGE  # a DRAM (page-table-ish) line
        hmc.mmu_hint(0, pte_line, pid=1, vpn=5, target_ppn=hmc.dram_pages)
        assert stats.get("hmc/mmu_hints") == 1
        assert stats.get("mmu_driver/hints") == 1

    def test_hints_disabled(self):
        hmc, _, stats = make_hmc(mmu_hints_enabled=False)
        hmc.mmu_hint(0, 0, pid=1, vpn=5, target_ppn=hmc.dram_pages)
        assert stats.get("hmc/mmu_hints") == 0

    def test_hint_prefetches_prtc(self):
        hmc, _, stats = make_hmc()
        target = hmc.dram_pages  # NVM page, colour 0
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=target)
        assert hmc.prtc.contains(hmc.prt.colour_of(target))

    def test_hot_history_triggers_mmu_swap(self):
        from repro.core.pct import PctEntry

        hmc, config, stats = make_hmc()
        target = hmc.dram_pages
        threshold = config.pageseer.pct_prefetch_threshold
        hmc.pct.write(target, PctEntry(threshold, None, 0))
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=target)
        assert stats.get("swap_driver/swaps_mmu") == 1
        assert hmc.prt.is_swapped(target)

    def test_cold_history_no_swap(self):
        hmc, _, stats = make_hmc()
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=hmc.dram_pages)
        assert stats.get("swap_driver/swaps_mmu") == 0

    def test_follower_swapped_with_correlation(self):
        from repro.core.pct import PctEntry

        hmc, config, stats = make_hmc()
        threshold = config.pageseer.pct_prefetch_threshold
        target = hmc.dram_pages
        follower = hmc.dram_pages + 1
        hmc.pct.write(target, PctEntry(threshold, follower, threshold))
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=target)
        assert stats.get("swap_driver/swaps_mmu") == 2
        assert hmc.prt.is_swapped(follower)

    def test_follower_ignored_without_correlation(self):
        from repro.core.pct import PctEntry

        hmc, config, stats = make_hmc(correlation_enabled=False)
        threshold = config.pageseer.pct_prefetch_threshold
        target = hmc.dram_pages
        follower = hmc.dram_pages + 1
        hmc.pct.write(target, PctEntry(threshold, follower, threshold))
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=target)
        assert not hmc.prt.is_swapped(follower)


class TestPteInterception:
    def test_hinted_pte_intercepted(self):
        hmc, _, stats = make_hmc()
        pte_line = 2 * LINES_PER_PAGE
        hmc.mmu_hint(0, pte_line, pid=1, vpn=5, target_ppn=hmc.dram_pages)
        finish = hmc.handle_pte_fetch(10_000, pte_line, hmc.dram_pages, pid=1)
        assert stats.get("mmu_driver/intercept_hits") == 1
        assert finish >= 10_000

    def test_unhinted_pte_goes_to_memory(self):
        hmc, _, stats = make_hmc()
        hmc.handle_pte_fetch(0, 2 * LINES_PER_PAGE, hmc.dram_pages, pid=1)
        assert stats.get("mmu_driver/intercept_misses") == 1
        assert stats.get("hmc/requests_pte") == 1


class TestPrefetchAccuracy:
    def test_accurate_prefetch(self):
        from repro.core.pct import PctEntry

        hmc, config, stats = make_hmc()
        threshold = config.pageseer.pct_prefetch_threshold
        target = hmc.dram_pages
        hmc.pct.write(target, PctEntry(threshold, None, 0))
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=target)
        # Hit the swapped page enough times to justify the swap.
        now = hmc.swap_driver.records[0].end + 1
        line = target * LINES_PER_PAGE
        for k in range(threshold + 1):
            now = hmc.handle_request(now + 1, line + k % LINES_PER_PAGE, False, 1)
        hmc.finalize(now)
        assert stats.get("hmc/prefetch_swaps_accurate") == 1
        assert stats.get("hmc/prefetch_swaps_inaccurate") == 0

    def test_inaccurate_prefetch(self):
        from repro.core.pct import PctEntry

        hmc, config, stats = make_hmc()
        target = hmc.dram_pages
        hmc.pct.write(target, PctEntry(config.pageseer.pct_prefetch_threshold, None, 0))
        hmc.mmu_hint(0, 2 * LINES_PER_PAGE, pid=1, vpn=5, target_ppn=target)
        hmc.finalize(1_000_000)
        assert stats.get("hmc/prefetch_swaps_inaccurate") == 1


class TestFilterIntegration:
    def test_flurry_learned_and_written_back(self):
        hmc, config, _ = make_hmc()
        page_a = hmc.dram_pages + 2
        page_b = hmc.dram_pages + 3
        now = 0
        for _ in range(20):
            now = hmc.handle_request(now + 1, page_a * LINES_PER_PAGE, False, 1)
        for _ in range(20):
            now = hmc.handle_request(now + 1, page_b * LINES_PER_PAGE, False, 1)
        hmc.finalize(now)
        # finalize drains the Filter into the PCTc (the in-DRAM PCT is only
        # written on PCTc eviction of a changed entry).
        entry = hmc.pctc.lookup(page_a)
        assert entry is not None
        assert entry.count >= config.pageseer.pct_prefetch_threshold
        assert entry.follower_ppn == page_b
