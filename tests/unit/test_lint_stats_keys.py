"""RL002: stats-key discipline — dynamic keys, typos, liveness."""

from pathlib import Path

from repro.lint.engine import Severity, lint_paths
from repro.lint.rules.stats_keys import StatsKeyRule


def run(tmp_path: Path, files: dict):
    for relpath, text in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return lint_paths(["."], root=tmp_path, rules=[StatsKeyRule()])


def messages(report):
    return [f.message for f in report.findings]


RECORD_AND_READ = {
    "sim/model.py": "def tick(stats):\n    stats.add('hmc/requests')\n",
    "analysis/metrics.py": "def load(stats):\n    return stats.get('hmc/requests')\n",
}


class TestDynamicKeys:
    def test_fstring_key_in_sim_package_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {"sim/model.py": "def tick(stats, kind):\n    stats.add(f'hmc/req_{kind}')\n"},
        )
        assert any("f-string stats key" in m for m in messages(report))

    def test_fstring_key_outside_sim_package_tolerated(self, tmp_path):
        report = run(
            tmp_path,
            {"analysis/dump.py": "def tick(stats, kind):\n    stats.add(f'hmc/req_{kind}')\n"},
        )
        assert not any("f-string" in m for m in messages(report))

    def test_arbitrary_expression_key_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {"sim/model.py": "def tick(stats, key):\n    stats.add(key)\n"},
        )
        assert any("non-literal stats key" in m for m in messages(report))

    def test_literal_key_table_accepted_and_recorded(self, tmp_path):
        report = run(
            tmp_path,
            {
                "sim/model.py": (
                    "_KEYS = {'demand': 'hmc/req_demand', 'pte': 'hmc/req_pte'}\n"
                    "def tick(stats, kind):\n"
                    "    stats.add(_KEYS[kind])\n"
                ),
                "analysis/metrics.py": (
                    "def load(stats):\n"
                    "    return stats.get('hmc/req_demand') + stats.get('hmc/req_pte')\n"
                ),
            },
        )
        assert report.failing == []

    def test_tuple_key_table_accepted(self, tmp_path):
        report = run(
            tmp_path,
            {
                "sim/model.py": (
                    "_KEYS = ('walk/l0', 'walk/l1')\n"
                    "def tick(stats, level):\n"
                    "    stats.add(_KEYS[level])\n"
                )
            },
        )
        assert report.failing == []

    def test_precomputed_self_key_attribute_accepted(self, tmp_path):
        report = run(
            tmp_path,
            {
                "sim/model.py": (
                    "class Pool:\n"
                    "    def __init__(self, stats, prefix):\n"
                    "        self.stats = stats\n"
                    "        self._key_hits = prefix + '/hits'\n"
                    "    def tick(self):\n"
                    "        self.stats.add(self._key_hits)\n"
                )
            },
        )
        assert report.failing == []


class TestLiveness:
    def test_read_never_recorded_flagged_with_suggestion(self, tmp_path):
        report = run(
            tmp_path,
            {
                "sim/model.py": "def tick(stats):\n    stats.add('hmc/requests')\n",
                "analysis/metrics.py": (
                    "def load(stats):\n    return stats.get('hmc/request')\n"
                ),
            },
        )
        flagged = [m for m in messages(report) if "read but never recorded" in m]
        assert flagged and 'did you mean "hmc/requests"' in flagged[0]

    def test_matching_read_and_record_clean(self, tmp_path):
        report = run(tmp_path, dict(RECORD_AND_READ))
        assert not any("read but never recorded" in m for m in messages(report))

    def test_fstring_prefix_covers_pattern_reads(self, tmp_path):
        report = run(
            tmp_path,
            {
                "analysis/dump.py": (
                    "def tick(stats, kind):\n"
                    "    stats.add(f'hmc/req_{kind}')\n"
                    "def load(stats):\n"
                    "    return stats.get('hmc/req_demand')\n"
                )
            },
        )
        assert not any("read but never recorded" in m for m in messages(report))

    def test_recorded_never_read_is_informational_only(self, tmp_path):
        report = run(
            tmp_path,
            {"sim/model.py": "def tick(stats):\n    stats.add('hmc/orphan')\n"},
        )
        unread = [
            f for f in report.findings if "recorded but never read" in f.message
        ]
        assert unread and all(f.severity == Severity.INFO for f in unread)
        assert report.exit_code == 0


class TestNearDuplicates:
    def test_one_character_typo_pair_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "sim/model.py": (
                    "def tick(stats):\n"
                    "    stats.add('swap/declined')\n"
                    "    stats.add('swap/declinee')\n"
                )
            },
        )
        assert any("differ by one" in m for m in messages(report))

    def test_digit_variants_are_exempt(self, tmp_path):
        report = run(
            tmp_path,
            {
                "sim/model.py": (
                    "def tick(stats):\n"
                    "    stats.add('tlb/l1_hits')\n"
                    "    stats.add('tlb/l2_hits')\n"
                )
            },
        )
        assert not any("differ by one" in m for m in messages(report))

    def test_distant_keys_clean(self, tmp_path):
        report = run(
            tmp_path,
            {
                "sim/model.py": (
                    "def tick(stats):\n"
                    "    stats.add('swap/requests')\n"
                    "    stats.add('hmc/positive_accesses')\n"
                )
            },
        )
        assert not any("differ by one" in m for m in messages(report))
