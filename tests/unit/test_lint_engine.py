"""Engine mechanics: suppressions, severities, baseline round-trips."""

from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.engine import Severity, lint_paths
from repro.lint.rules.determinism import DeterminismRule


def write_tree(root: Path, files: dict) -> Path:
    for relpath, text in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return root


def lint(root: Path, *, rules=None):
    return lint_paths(["."], root=root, rules=rules or [DeterminismRule()])


BAD_IMPORT = "import random\n"


class TestSuppression:
    def test_finding_without_pragma_fails(self, tmp_path):
        write_tree(tmp_path, {"sim/core.py": BAD_IMPORT})
        report = lint(tmp_path)
        assert len(report.failing) == 1
        assert report.exit_code == 1
        assert report.suppressed == 0

    def test_same_line_pragma_suppresses(self, tmp_path):
        write_tree(
            tmp_path,
            {"sim/core.py": "import random  # repro-lint: disable=RL001\n"},
        )
        report = lint(tmp_path)
        assert report.findings == []
        assert report.suppressed == 1
        assert report.exit_code == 0

    def test_comment_line_above_suppresses_next_line(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "sim/core.py": (
                    "# deliberate: seeds the fuzzer, not the model\n"
                    "# repro-lint: disable=RL001\n"
                    "import random\n"
                )
            },
        )
        report = lint(tmp_path)
        assert report.findings == []
        assert report.suppressed == 1

    def test_pragma_on_unrelated_line_does_not_suppress(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "sim/core.py": (
                    "x = 1  # repro-lint: disable=RL001\n"
                    "import random\n"
                )
            },
        )
        report = lint(tmp_path)
        assert len(report.failing) == 1

    def test_file_pragma_suppresses_everywhere(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "sim/core.py": (
                    "# repro-lint: disable-file=RL001\n"
                    "import random\n"
                    "import random as rng2\n"
                )
            },
        )
        report = lint(tmp_path)
        assert report.findings == []
        assert report.suppressed == 2

    def test_disable_all_suppresses_any_rule(self, tmp_path):
        write_tree(
            tmp_path,
            {"sim/core.py": "import random  # repro-lint: disable=all\n"},
        )
        report = lint(tmp_path)
        assert report.findings == []

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        write_tree(
            tmp_path,
            {"sim/core.py": "import random  # repro-lint: disable=RL002\n"},
        )
        report = lint(tmp_path)
        assert len(report.failing) == 1


class TestSeverityAndExitCode:
    def test_info_findings_do_not_fail(self):
        from repro.lint.engine import Finding, LintReport

        report = LintReport(
            findings=[Finding("RL002", Severity.INFO, "a.py", 1, 0, "m")]
        )
        assert report.failing == []
        assert report.exit_code == 0

    def test_parse_error_fails(self, tmp_path):
        write_tree(tmp_path, {"sim/broken.py": "def f(:\n"})
        report = lint(tmp_path)
        assert report.parse_errors
        assert report.exit_code == 1

    def test_non_sim_package_is_exempt_from_rl001(self, tmp_path):
        write_tree(tmp_path, {"analysis/tool.py": BAD_IMPORT})
        report = lint(tmp_path)
        assert report.findings == []


class TestBaseline:
    def test_round_trip_preserves_comments(self, tmp_path):
        write_tree(tmp_path, {"sim/core.py": BAD_IMPORT})
        report = lint(tmp_path)
        baseline = Baseline()
        kept, added = baseline.update_from(report.failing)
        assert (kept, added) == (0, 1)
        fingerprint = report.failing[0].fingerprint
        baseline.entries[fingerprint]["comment"] = "known; migration pending"

        path = tmp_path / "lint-baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        assert reloaded.entries[fingerprint]["comment"] == "known; migration pending"

        # A second update keeps the surviving entry's comment.
        kept, added = reloaded.update_from(report.failing)
        assert (kept, added) == (1, 0)
        assert reloaded.entries[fingerprint]["comment"] == "known; migration pending"

    def test_apply_moves_findings_out_of_failing_set(self, tmp_path):
        write_tree(tmp_path, {"sim/core.py": BAD_IMPORT})
        report = lint(tmp_path)
        baseline = Baseline()
        baseline.update_from(report.failing)

        fresh = lint(tmp_path)
        fresh = baseline.apply(fresh)
        assert fresh.findings == []
        assert len(fresh.baselined) == 1
        assert fresh.exit_code == 0

    def test_fingerprint_survives_line_moves(self, tmp_path):
        write_tree(tmp_path, {"sim/core.py": BAD_IMPORT})
        before = lint(tmp_path).failing[0]
        write_tree(tmp_path, {"sim/core.py": "# a new leading comment\n" + BAD_IMPORT})
        after = lint(tmp_path).failing[0]
        assert before.line != after.line
        assert before.fingerprint == after.fingerprint

    def test_stale_entries_reported(self, tmp_path):
        write_tree(tmp_path, {"sim/core.py": BAD_IMPORT})
        report = lint(tmp_path)
        baseline = Baseline()
        baseline.update_from(report.failing)

        write_tree(tmp_path, {"sim/core.py": "x = 1\n"})
        clean = lint(tmp_path)
        stale = baseline.stale_entries(clean.findings + clean.baselined)
        assert len(stale) == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == {}


class TestReportRendering:
    def test_json_report_is_machine_readable(self, tmp_path):
        import json

        write_tree(tmp_path, {"sim/core.py": BAD_IMPORT})
        report = lint(tmp_path)
        document = json.loads(report.render_json())
        assert document["exit_code"] == 1
        assert document["failing"] == 1
        (finding,) = document["findings"]
        assert finding["rule"] == "RL001"
        assert finding["path"] == "sim/core.py"
        assert finding["fingerprint"]

    def test_text_report_names_the_position(self, tmp_path):
        write_tree(tmp_path, {"sim/core.py": BAD_IMPORT})
        text = lint(tmp_path).render_text()
        assert "sim/core.py:1:0: RL001 [error]" in text
        assert "checked 1 file(s)" in text
