"""Unit tests for trace recording and replay (repro.workloads.trace)."""

import itertools

import pytest

from repro.sim.cpu import MemoryOp
from repro.workloads import workload_by_name
from repro.workloads.trace import (
    TraceFormatError,
    read_trace,
    record_trace,
    trace_replay,
    trace_workload,
    write_trace,
)
from repro.common.rng import DeterministicRng


OPS = [
    MemoryOp(0x1000, False, 5),
    MemoryOp(0x1040, True, 3),
    MemoryOp(0x2000, False, 10),
]


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "t.trace"
        assert write_trace(path, OPS) == 3
        assert read_trace(path) == OPS

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# comment\n\n1000 r 5\n")
        assert read_trace(path) == [MemoryOp(0x1000, False, 5)]

    def test_write_flag_roundtrip(self, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, [MemoryOp(0x10, True, 0)])
        assert read_trace(path)[0].is_write


class TestValidation:
    @pytest.mark.parametrize(
        "content",
        ["garbage", "1000 x 5", "zz r 5", "1000 r -3", "1000 r", ""],
    )
    def test_malformed_rejected(self, tmp_path, content):
        path = tmp_path / "bad.trace"
        path.write_text(content + "\n")
        with pytest.raises(TraceFormatError):
            read_trace(path)


class TestReplay:
    def test_replay_loops(self, tmp_path):
        path = tmp_path / "t.trace"
        write_trace(path, OPS)
        rng = DeterministicRng("t")
        replayed = list(itertools.islice(trace_replay(rng, 0, path=str(path)), 7))
        assert replayed == OPS + OPS + OPS[:1]


class TestTraceWorkload:
    def test_record_and_simulate(self, tmp_path):
        source = workload_by_name("milcx4")
        paths = []
        for core in range(2):
            path = tmp_path / f"core{core}.trace"
            count = record_trace(source, core, 400, path, scale=1024)
            assert count == 400
            paths.append(path)

        spec = trace_workload("recorded", paths)
        assert spec.cores == 2
        assert spec.suite == "trace"

        from repro.sim.system import System
        from repro.common.config import default_system_config

        config = default_system_config(scale=1024, cores=2)
        system = System(config, "noswap", spec, scale=1024)
        metrics = system.run(measure_ops=200, warmup_ops=100)
        assert metrics.instructions > 0
        assert metrics.total_serviced > 0

    def test_replay_matches_source(self, tmp_path):
        """Replaying a recorded trace reproduces the source stream."""
        source = workload_by_name("milcx4")
        path = tmp_path / "c0.trace"
        record_trace(source, 0, 100, path, scale=1024)
        original = list(itertools.islice(source.make_stream(0, 0, 1024), 100))
        assert read_trace(path) == original

    def test_needs_paths(self):
        with pytest.raises(Exception):
            trace_workload("empty", [])
