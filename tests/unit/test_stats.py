"""Unit tests for the statistics registry (repro.common.stats)."""

from repro.common.stats import StatsRegistry


class TestCounters:
    def test_default_zero(self):
        stats = StatsRegistry()
        assert stats.get("never") == 0.0

    def test_add_default_one(self):
        stats = StatsRegistry()
        stats.add("x")
        stats.add("x")
        assert stats.get("x") == 2.0

    def test_add_amount(self):
        stats = StatsRegistry()
        stats.add("x", 2.5)
        assert stats.get("x") == 2.5

    def test_custom_default(self):
        stats = StatsRegistry()
        assert stats.get("missing", -1.0) == -1.0


class TestBoundHandles:
    def test_counter_handle_increments(self):
        stats = StatsRegistry()
        bump = stats.counter("x")
        bump()
        bump(2.5)
        assert stats.get("x") == 3.5

    def test_counter_handle_shares_state_with_add(self):
        stats = StatsRegistry()
        bump = stats.counter("x")
        stats.add("x")
        bump()
        assert stats.get("x") == 2.0

    def test_resolving_a_handle_creates_no_key(self):
        """Resolution must be free of side effects: a component that binds
        handles in __init__ but never fires them leaves no trace in
        snapshots (the golden digests depend on this)."""
        stats = StatsRegistry()
        stats.counter("silent")
        stats.observer("quiet")
        assert list(stats.names()) == []
        assert stats.snapshot() == {}

    def test_counter_handle_survives_reset(self):
        stats = StatsRegistry()
        bump = stats.counter("x")
        bump(5.0)
        stats.reset()
        bump()
        assert stats.get("x") == 1.0

    def test_observer_handle_records(self):
        stats = StatsRegistry()
        observe = stats.observer("lat")
        for value in (10.0, 30.0, 20.0):
            observe(value)
        assert stats.mean("lat") == 20.0
        assert stats.count("lat") == 3
        assert stats.maximum("lat") == 30.0

    def test_observer_handle_survives_reset(self):
        stats = StatsRegistry()
        observe = stats.observer("lat")
        observe(100.0)
        stats.reset()
        observe(4.0)
        assert stats.total("lat") == 4.0
        assert stats.maximum("lat") == 4.0

    def test_handles_expose_their_key(self):
        stats = StatsRegistry()
        assert stats.counter("a/b").counter_name == "a/b"
        assert stats.observer("c/d").observer_name == "c/d"


class TestObservations:
    def test_mean(self):
        stats = StatsRegistry()
        for value in (1, 2, 3):
            stats.observe("lat", value)
        assert stats.mean("lat") == 2.0

    def test_mean_default(self):
        stats = StatsRegistry()
        assert stats.mean("none", default=7.0) == 7.0

    def test_total_and_count(self):
        stats = StatsRegistry()
        stats.observe("lat", 10)
        stats.observe("lat", 30)
        assert stats.total("lat") == 40
        assert stats.count("lat") == 2

    def test_maximum(self):
        stats = StatsRegistry()
        stats.observe("lat", 5)
        stats.observe("lat", 2)
        assert stats.maximum("lat") == 5

    def test_maximum_default(self):
        stats = StatsRegistry()
        assert stats.maximum("none", default=-3) == -3


class TestLifecycle:
    def test_reset_clears_everything(self):
        stats = StatsRegistry()
        stats.add("c")
        stats.observe("o", 1)
        stats.reset()
        assert stats.get("c") == 0.0
        assert stats.count("o") == 0

    def test_names_sorted(self):
        stats = StatsRegistry()
        stats.add("b")
        stats.add("a")
        stats.observe("c", 1)
        assert list(stats.names()) == ["a", "b", "c"]

    def test_snapshot_is_copy(self):
        stats = StatsRegistry()
        stats.add("x")
        snap = stats.snapshot()
        stats.add("x")
        assert snap["x"] == 1.0

    def test_merged_with(self):
        a = StatsRegistry()
        b = StatsRegistry()
        a.add("x", 1)
        b.add("x", 2)
        a.observe("o", 10)
        b.observe("o", 20)
        merged = a.merged_with(b)
        assert merged.get("x") == 3
        assert merged.mean("o") == 15
        assert merged.maximum("o") == 20

    def test_as_dict_contains_derived(self):
        stats = StatsRegistry()
        stats.add("plain", 4)
        stats.observe("obs", 2)
        stats.observe("obs", 4)
        d = stats.as_dict()
        assert d["plain"] == 4
        assert d["obs/mean"] == 3
        assert d["obs/total"] == 6
        assert d["obs/count"] == 2
