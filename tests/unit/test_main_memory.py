"""Unit tests for the flat hybrid address space (repro.mem.main_memory)."""

import pytest

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import (
    HybridMemoryConfig,
    dram_timing_table1,
    nvm_timing_table1,
)
from repro.common.stats import StatsRegistry
from repro.mem.main_memory import MainMemory

MB = 1024 * 1024


@pytest.fixture
def memory():
    config = HybridMemoryConfig(
        dram=dram_timing_table1(2 * MB), nvm=nvm_timing_table1(16 * MB)
    )
    return MainMemory(config, StatsRegistry())


class TestRouting:
    def test_dram_range(self, memory):
        dram_lines = memory.config.dram_pages * LINES_PER_PAGE
        assert memory.is_dram_line(0)
        assert memory.is_dram_line(dram_lines - 1)
        assert not memory.is_dram_line(dram_lines)

    def test_device_for_line(self, memory):
        dram_lines = memory.config.dram_pages * LINES_PER_PAGE
        assert memory.device_for_line(0) is memory.dram
        assert memory.device_for_line(dram_lines) is memory.nvm

    def test_dram_access_counts_on_dram_device(self, memory):
        memory.access(0, 10, is_write=False)
        assert memory.dram.reads == 1
        assert memory.nvm.reads == 0

    def test_nvm_access_counts_on_nvm_device(self, memory):
        dram_lines = memory.config.dram_pages * LINES_PER_PAGE
        memory.access(0, dram_lines + 10, is_write=False)
        assert memory.nvm.reads == 1
        assert memory.dram.reads == 0

    def test_nvm_local_addressing_starts_at_zero(self, memory):
        """The first NVM line must map like line 0 of a standalone device."""
        dram_lines = memory.config.dram_pages * LINES_PER_PAGE
        result = memory.access(0, dram_lines, is_write=False)
        assert not result.row_hit  # first touch: row miss, proving line 0


class TestPageTransfers:
    def test_read_page_moves_64_lines(self, memory):
        memory.read_page(0, 3)
        assert memory.dram.reads == LINES_PER_PAGE

    def test_write_page_moves_64_lines(self, memory):
        memory.write_page(0, 3)
        assert memory.dram.writes == LINES_PER_PAGE

    def test_nvm_page_routed(self, memory):
        nvm_ppn = memory.config.dram_pages + 5
        memory.read_page(0, nvm_ppn)
        assert memory.nvm.reads == LINES_PER_PAGE

    def test_page_transfer_finish_monotonic(self, memory):
        finish = memory.read_page(100, 0)
        assert finish > 100

    def test_transfer_segment_partial(self, memory):
        memory.transfer_segment(0, 0, 32, is_write=False)
        assert memory.dram.reads == 32

    def test_transfer_segment_nvm(self, memory):
        dram_lines = memory.config.dram_pages * LINES_PER_PAGE
        memory.transfer_segment(0, dram_lines, 32, is_write=True)
        assert memory.nvm.writes == 32


class TestLatencyOrdering:
    def test_nvm_activation_slower_than_dram(self, memory):
        dram_lines = memory.config.dram_pages * LINES_PER_PAGE
        dram_result = memory.access(0, 0, False)
        nvm_result = memory.access(0, dram_lines, False)
        assert (nvm_result.finish - nvm_result.start) > (
            dram_result.finish - dram_result.start
        )
