"""Unit tests for the 4-level page table (repro.vm.page_table)."""

import itertools

import pytest

from repro.common.addr import PAGE_SHIFT
from repro.vm.page_table import ENTRY_BYTES, PageTable


def make_table():
    counter = itertools.count(100)
    data_counter = itertools.count(10_000)
    return PageTable(
        pid=1,
        allocate_table_frame=lambda: next(counter),
        allocate_data_frame=lambda vpn: next(data_counter),
    )


class TestMapping:
    def test_first_touch_allocates(self):
        table = make_table()
        ppn = table.ensure_mapped(5)
        assert ppn == 10_000
        assert table.mapped_pages == 1

    def test_repeat_touch_is_stable(self):
        table = make_table()
        first = table.ensure_mapped(5)
        second = table.ensure_mapped(5)
        assert first == second
        assert table.mapped_pages == 1

    def test_translate_unmapped(self):
        table = make_table()
        assert table.translate(5) is None

    def test_translate_after_map(self):
        table = make_table()
        ppn = table.ensure_mapped(7)
        assert table.translate(7) == ppn

    def test_distinct_vpns_distinct_frames(self):
        table = make_table()
        a = table.ensure_mapped(1)
        b = table.ensure_mapped(2)
        assert a != b

    def test_cr3_is_root(self):
        table = make_table()
        assert table.cr3_ppn == 100


class TestTableStructure:
    def test_vpns_in_same_leaf_share_tables(self):
        table = make_table()
        table.ensure_mapped(0)
        before = len(table.table_pages())
        table.ensure_mapped(1)  # same PTE table
        assert len(table.table_pages()) == before

    def test_distant_vpns_grow_tree(self):
        table = make_table()
        table.ensure_mapped(0)
        before = len(table.table_pages())
        table.ensure_mapped(1 << 27)  # different PGD entry
        assert len(table.table_pages()) == before + 3

    def test_root_plus_three_levels_on_first_map(self):
        table = make_table()
        table.ensure_mapped(0)
        # PGD + PUD + PMD + PTE-table = 4 nodes.
        assert len(table.table_pages()) == 4


class TestEntryAddresses:
    def test_four_levels(self):
        table = make_table()
        table.ensure_mapped(3)
        addresses = table.entry_addresses(3)
        assert len(addresses) == 4

    def test_first_level_in_root(self):
        table = make_table()
        table.ensure_mapped(3)
        addresses = table.entry_addresses(3)
        assert addresses[0] >> PAGE_SHIFT == table.cr3_ppn

    def test_pte_entry_offset(self):
        table = make_table()
        table.ensure_mapped(3)
        pte_address = table.pte_entry_address(3)
        assert pte_address % ENTRY_BYTES == 0
        # VPN 3 -> PTE index 3 within its leaf table.
        assert (pte_address % 4096) // ENTRY_BYTES == 3

    def test_adjacent_vpns_adjacent_ptes(self):
        table = make_table()
        table.ensure_mapped(8)
        table.ensure_mapped(9)
        a = table.pte_entry_address(8)
        b = table.pte_entry_address(9)
        assert b - a == ENTRY_BYTES

    def test_entries_live_in_table_pages(self):
        table = make_table()
        table.ensure_mapped(42)
        pages = set(table.table_pages())
        for address in table.entry_addresses(42):
            assert (address >> PAGE_SHIFT) in pages
