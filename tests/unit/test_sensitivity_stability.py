"""Unit tests for the sensitivity and stability experiment modules."""

import pytest

from repro.experiments import sensitivity, stability
from repro.experiments.figures import FigureResult
from repro.experiments.runner import VARIANTS
from repro.common.config import default_system_config

from tests.unit.test_figures import FakeRunner, metrics


class TestVariantRegistration:
    def test_all_sweep_points_registered(self):
        for parameter, values in sensitivity.SWEEPS.items():
            for value in values:
                assert sensitivity.variant_name(parameter, value) in VARIANTS

    def test_variant_mutates_config(self):
        name = sensitivity.variant_name("pct_prefetch_threshold", 7)
        config = VARIANTS[name](default_system_config(scale=1024))
        assert config.pageseer.pct_prefetch_threshold == 7

    def test_paper_values_inside_sweeps(self):
        for parameter, paper_value in sensitivity.PAPER_VALUES.items():
            assert paper_value in sensitivity.SWEEPS[parameter]


class TestSensitivityCompute:
    def make_runner(self):
        table = {}
        for parameter, values in sensitivity.SWEEPS.items():
            for value in values:
                variant = sensitivity.variant_name(parameter, value)
                for workload in sensitivity.WORKLOADS:
                    # IPC peaks at the paper's value.
                    distance = abs(value - sensitivity.PAPER_VALUES[parameter])
                    table[("pageseer", workload, variant)] = metrics(
                        "pageseer", workload, ipc=1.0 / (1 + distance)
                    )
        return FakeRunner(table)

    def test_rows_cover_all_sweeps(self):
        result = sensitivity.compute(self.make_runner())
        expected = sum(len(v) for v in sensitivity.SWEEPS.values())
        assert len(result.rows) == expected

    def test_paper_value_marked(self):
        result = sensitivity.compute(self.make_runner())
        marked = [row for row in result.rows if row[5] == "*"]
        assert len(marked) == len(sensitivity.SWEEPS)

    def test_best_value_helper(self):
        result = sensitivity.compute(self.make_runner())
        for parameter, paper_value in sensitivity.PAPER_VALUES.items():
            assert sensitivity.best_value_for(result, parameter) == paper_value


class TestStabilityCompute:
    def make_runner(self, ratios):
        """ratios: {(workload, seed): (pageseer_ipc, mempod_ipc)}"""
        parent = FakeRunner({})
        parent.scale = 512
        parent.measure_ops = 1
        parent.warmup_ops = 1
        parent.cache_dir = None

        class SeededFake(FakeRunner):
            def __init__(self, seed):
                table = {}
                for workload in stability.WORKLOADS:
                    ps_ipc, mp_ipc = ratios[(workload, seed)]
                    table[("pageseer", workload, "default")] = metrics(
                        "pageseer", workload, ipc=ps_ipc
                    )
                    table[("mempod", workload, "default")] = metrics(
                        "mempod", workload, ipc=mp_ipc
                    )
                super().__init__(table)

        import unittest.mock as mock

        self._patch = mock.patch.object(
            stability, "_runner_for_seed", lambda runner, seed: SeededFake(seed)
        )
        self._patch.start()
        parent.workload_names = lambda: list(stability.WORKLOADS)
        return parent

    def teardown_method(self, method):
        if hasattr(self, "_patch"):
            self._patch.stop()

    def test_ratios_computed_per_seed(self):
        ratios = {
            (w, s): (1.2, 1.0)
            for w in stability.WORKLOADS
            for s in stability.SEEDS
        }
        result = stability.compute(self.make_runner(ratios))
        per_seed = [row for row in result.rows if isinstance(row[1], int)]
        assert len(per_seed) == len(stability.WORKLOADS) * len(stability.SEEDS)
        assert all(row[4] == pytest.approx(1.2) for row in per_seed)

    def test_spread_zero_for_identical_seeds(self):
        ratios = {
            (w, s): (1.5, 1.0)
            for w in stability.WORKLOADS
            for s in stability.SEEDS
        }
        result = stability.compute(self.make_runner(ratios))
        assert all(s == pytest.approx(0.0) for s in stability.ratio_spreads(result))

    def test_spread_reflects_variance(self):
        ratios = {}
        for w in stability.WORKLOADS:
            for index, s in enumerate(stability.SEEDS):
                ratios[(w, s)] = (1.0 + 0.2 * index, 1.0)
        result = stability.compute(self.make_runner(ratios))
        for spread in stability.ratio_spreads(result):
            assert spread > 0.2
