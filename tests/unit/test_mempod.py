"""Unit tests for the MemPod baseline (repro.baselines.mempod)."""

import pytest

from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.baselines.mempod import MajorityElementTracker, MemPodHmc
from repro.vm.os_model import OsModel


def make_mempod(cores=1):
    config = default_system_config(scale=1024, cores=cores)
    stats = StatsRegistry()
    os_model = OsModel(config.memory)
    return MemPodHmc(config, os_model, stats), config, stats


def slow_line(hmc, index=0, offset=0):
    return (hmc.fast_segments + index) * hmc.lines_per_segment + offset


class TestMea:
    def test_counts(self):
        mea = MajorityElementTracker(4)
        mea.observe(1)
        mea.observe(1)
        assert mea.count_of(1) == 2

    def test_capacity_replacement_inherits_min(self):
        mea = MajorityElementTracker(2)
        mea.observe(1)
        mea.observe(1)
        mea.observe(2)
        mea.observe(3)  # replaces 2 (count 1) with count 2
        assert mea.count_of(3) == 2
        assert mea.count_of(2) == 0
        assert mea.occupancy == 2

    def test_heavy_elements_sorted(self):
        mea = MajorityElementTracker(8)
        for _ in range(5):
            mea.observe(1)
        for _ in range(3):
            mea.observe(2)
        mea.observe(3)
        assert mea.heavy_elements(minimum_count=2) == [1, 2]

    def test_reset(self):
        mea = MajorityElementTracker(4)
        mea.observe(1)
        mea.reset()
        assert mea.occupancy == 0

    def test_requires_capacity(self):
        with pytest.raises(ValueError):
            MajorityElementTracker(0)


class TestPods:
    def test_pods_partition_fast_slots(self):
        hmc, config, _ = make_mempod()
        slots = []
        for pod in hmc._pods:
            slots.extend(pod.fast_slots)
        assert sorted(slots) == list(range(hmc.fast_segments))

    def test_pod_of_consistency(self):
        hmc, _, _ = make_mempod()
        for segment in (0, hmc.fast_segments - 1, hmc.fast_segments,
                        hmc.total_segments - 1):
            pod = hmc.pod_of(segment)
            assert pod in hmc._pods


class TestRequests:
    def test_slow_request_observed_by_mea(self):
        hmc, _, _ = make_mempod()
        hmc.handle_request(0, slow_line(hmc, 5), False, 1)
        segment = hmc.fast_segments + 5
        assert hmc.pod_of(segment).mea.count_of(segment) == 1

    def test_fast_request_not_observed(self):
        hmc, _, _ = make_mempod()
        line = (hmc.fast_segments - 1) * hmc.lines_per_segment
        hmc.handle_request(0, line, False, 1)
        for pod in hmc._pods:
            assert pod.mea.occupancy == 0

    def test_remap_cache_miss_recorded(self):
        hmc, _, stats = make_mempod()
        hmc.handle_request(0, slow_line(hmc), False, 1)
        assert stats.get("mempod/remap_misses") == 1


class TestMigrations:
    def drive_hot_segment(self, hmc, config, index=0, misses=8):
        now = 0
        for k in range(misses):
            now = hmc.handle_request(now + 1, slow_line(hmc, index, k % 32), False, 1)
        return now

    def test_no_migration_within_interval(self, ):
        hmc, config, stats = make_mempod()
        self.drive_hot_segment(hmc, config)
        assert stats.get("mempod/migrations") == 0

    def test_migration_at_interval_boundary(self):
        hmc, config, stats = make_mempod()
        now = self.drive_hot_segment(hmc, config, index=5)
        # Cross the interval: the next request triggers the burst.
        hmc.handle_request(config.mempod.interval_cycles + 1, slow_line(hmc, 99), False, 1)
        assert stats.get("mempod/migrations") >= 1
        segment = hmc.fast_segments + 5
        assert hmc.pod_of(segment).slot(segment) < hmc.fast_segments

    def test_mea_reset_after_interval(self):
        hmc, config, _ = make_mempod()
        self.drive_hot_segment(hmc, config, index=5)
        hmc.handle_request(config.mempod.interval_cycles + 1, slow_line(hmc, 99), False, 1)
        segment = hmc.fast_segments + 5
        pod = hmc.pod_of(segment)
        # Only the post-boundary observation remains.
        assert pod.mea.count_of(segment) == 0

    def test_post_migration_serviced_dram(self):
        hmc, config, stats = make_mempod()
        self.drive_hot_segment(hmc, config, index=5, misses=10)
        boundary = config.mempod.interval_cycles + 1
        hmc.handle_request(boundary, slow_line(hmc, 99), False, 1)
        end = max(hmc._active.values()) if hmc._active else boundary
        dram_before = stats.get("hmc/serviced_dram")
        hmc.handle_request(end + 10, slow_line(hmc, 5), False, 1)
        assert stats.get("hmc/serviced_dram") == dram_before + 1

    def test_protected_slots_skipped(self):
        hmc, config, _ = make_mempod()
        # Pod 0 owns the metadata-protected low slots; verify its picker
        # never returns a protected slot.
        pod = hmc._pods[0]
        for _ in range(len(pod.fast_slots) * 2):
            slot = hmc._pick_fast_slot(pod)
            if slot is None:
                break
            assert not hmc._segment_is_protected(slot)
