"""Unit tests for the OS model (repro.vm.os_model)."""

import pytest

from repro.common.config import (
    HybridMemoryConfig,
    dram_timing_table1,
    nvm_timing_table1,
)
from repro.common.errors import AllocationError
from repro.vm.os_model import OsModel

MB = 1024 * 1024


def make_os(dram_mb=1, nvm_mb=8):
    memory = HybridMemoryConfig(
        dram=dram_timing_table1(dram_mb * MB), nvm=nvm_timing_table1(nvm_mb * MB)
    )
    return OsModel(memory)


class TestFrameAllocation:
    def test_table_frames_in_dram(self):
        os_model = make_os()
        frame = os_model.allocate_table_frame()
        assert os_model.memory.is_dram_page(frame)

    def test_table_frames_protected(self):
        os_model = make_os()
        frame = os_model.allocate_table_frame()
        assert os_model.is_protected_frame(frame)

    def test_data_interleaves_with_capacity_ratio(self):
        os_model = make_os()
        frames = [os_model.allocate_data_frame(v) for v in range(900)]
        dram = sum(1 for f in frames if os_model.memory.is_dram_page(f))
        nvm = len(frames) - dram
        # 1 MB DRAM : 8 MB NVM -> roughly 1:8 interleave.
        assert nvm > dram * 5

    def test_some_data_lands_in_dram(self):
        os_model = make_os()
        frames = [os_model.allocate_data_frame(v) for v in range(100)]
        assert any(os_model.memory.is_dram_page(f) for f in frames)

    def test_frames_unique(self):
        os_model = make_os()
        frames = [os_model.allocate_data_frame(v) for v in range(500)]
        assert len(set(frames)) == len(frames)

    def test_exhaustion_raises(self):
        os_model = make_os(dram_mb=1, nvm_mb=1)
        total = os_model.memory.total_pages
        with pytest.raises(AllocationError):
            for v in range(total + 10):
                os_model.allocate_data_frame(v)

    def test_reserved_pages_protected_and_dram(self):
        os_model = make_os()
        pages = os_model.reserve_dram_pages(4)
        assert len(pages) == 4
        for page in pages:
            assert os_model.memory.is_dram_page(page)
            assert os_model.is_protected_frame(page)

    def test_accounting(self):
        os_model = make_os()
        os_model.reserve_dram_pages(2)
        os_model.allocate_table_frame()
        assert os_model.dram_frames_used == 3
        assert os_model.dram_frames_free == os_model.memory.dram_pages - 3


class TestProcesses:
    def test_create_process(self):
        os_model = make_os()
        process = os_model.create_process(7)
        assert process.pid == 7
        assert process.page_table.pid == 7

    def test_duplicate_pid_rejected(self):
        os_model = make_os()
        os_model.create_process(7)
        with pytest.raises(AllocationError):
            os_model.create_process(7)

    def test_processes_isolated(self):
        os_model = make_os()
        a = os_model.create_process(1)
        b = os_model.create_process(2)
        pa = a.page_table.ensure_mapped(0)
        pb = b.page_table.ensure_mapped(0)
        assert pa != pb

    def test_process_lookup(self):
        os_model = make_os()
        created = os_model.create_process(3)
        assert os_model.process(3) is created
        assert 3 in os_model.processes
