"""Unit tests for run metrics (repro.sim.metrics)."""

import pytest

from repro.sim.metrics import RunMetrics


def make_metrics(**overrides):
    base = dict(
        scheme="pageseer",
        workload="lbmx4",
        suite="spec",
        instructions=10_000,
        cycles=20_000.0,
        ipc=0.5,
        ammat=300.0,
        serviced_dram=700,
        serviced_nvm=250,
        serviced_buffer=50,
        positive_accesses=600,
        negative_accesses=10,
        neutral_accesses=390,
        swaps_total=20,
        swaps_mmu=10,
        swaps_pct=4,
        swaps_regular=6,
        prefetch_accurate=12,
        prefetch_inaccurate=2,
        tlb_misses=100,
        pte_llc_misses=15,
        mmu_driver_hit_rate=0.99,
        remap_wait_cycles=5000.0,
        remap_misses=40,
    )
    base.update(overrides)
    return RunMetrics(**base)


class TestShares:
    def test_serviced_shares_sum_to_one(self):
        m = make_metrics()
        assert m.dram_share + m.nvm_share + m.buffer_share == pytest.approx(1.0)

    def test_dram_share(self):
        assert make_metrics().dram_share == 0.7

    def test_shares_zero_when_empty(self):
        m = make_metrics(serviced_dram=0, serviced_nvm=0, serviced_buffer=0)
        assert m.dram_share == 0.0
        assert m.total_serviced == 0

    def test_positive_shares(self):
        m = make_metrics()
        total = 600 + 10 + 390
        assert m.positive_share == pytest.approx(600 / total)
        assert m.negative_share == pytest.approx(10 / total)
        assert m.neutral_share == pytest.approx(390 / total)


class TestSwapDerivations:
    def test_swaps_per_kilo_instruction(self):
        assert make_metrics().swaps_per_kilo_instruction == pytest.approx(2.0)

    def test_spki_zero_instructions(self):
        assert make_metrics(instructions=0).swaps_per_kilo_instruction == 0.0

    def test_prefetch_shares(self):
        m = make_metrics()
        assert m.prefetch_swaps == 14
        assert m.prefetch_swap_share == pytest.approx(0.7)
        assert m.mmu_swap_share == pytest.approx(0.5)

    def test_prefetch_shares_no_swaps(self):
        m = make_metrics(swaps_total=0, swaps_mmu=0, swaps_pct=0, swaps_regular=0)
        assert m.prefetch_swap_share == 0.0

    def test_prefetch_accuracy(self):
        assert make_metrics().prefetch_accuracy == pytest.approx(12 / 14)

    def test_accuracy_no_prefetches(self):
        m = make_metrics(prefetch_accurate=0, prefetch_inaccurate=0)
        assert m.prefetch_accuracy == 0.0


class TestPte:
    def test_pte_cache_miss_rate(self):
        assert make_metrics().pte_cache_miss_rate == pytest.approx(0.15)

    def test_pte_rate_no_tlb_misses(self):
        assert make_metrics(tlb_misses=0).pte_cache_miss_rate == 0.0
