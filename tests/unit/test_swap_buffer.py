"""Unit tests for the swap buffer pool (repro.mem.swap_buffer)."""

import pytest

from repro.common.stats import StatsRegistry
from repro.mem.swap_buffer import SwapBufferPool


@pytest.fixture
def pool():
    return SwapBufferPool(capacity=2, stats=StatsRegistry(), service_latency_cycles=10)


class TestHold:
    def test_hold_succeeds(self, pool):
        assert pool.try_hold(1, available_from=0, release_at=100)

    def test_capacity_enforced(self, pool):
        assert pool.try_hold(1, 0, 100)
        assert pool.try_hold(2, 0, 100)
        assert not pool.try_hold(3, 0, 100)

    def test_rehold_extends_window(self, pool):
        pool.try_hold(1, 0, 100)
        assert pool.try_hold(1, 50, 200)
        assert pool.service(150, 1) is not None

    def test_expired_entries_freed(self, pool):
        pool.try_hold(1, 0, 10)
        pool.try_hold(2, 0, 10)
        assert pool.try_hold(3, 20, 100)

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            SwapBufferPool(0, StatsRegistry())


class TestService:
    def test_service_within_window(self, pool):
        pool.try_hold(5, 10, 100)
        assert pool.service(50, 5) == 60

    def test_no_service_before_available(self, pool):
        pool.try_hold(5, 10, 100)
        assert pool.service(5, 5) is None

    def test_no_service_after_release(self, pool):
        pool.try_hold(5, 10, 100)
        assert pool.service(100, 5) is None

    def test_unknown_key(self, pool):
        assert pool.service(50, 99) is None

    def test_in_flight(self, pool):
        pool.try_hold(5, 10, 100)
        assert pool.in_flight(50, 5)
        assert not pool.in_flight(150, 5)
        assert not pool.in_flight(50, 6)


class TestRelease:
    def test_release_frees_slot(self, pool):
        pool.try_hold(1, 0, 1000)
        pool.try_hold(2, 0, 1000)
        pool.release(1)
        assert pool.try_hold(3, 0, 1000)

    def test_release_absent_is_noop(self, pool):
        pool.release(42)

    def test_occupancy(self, pool):
        assert pool.occupancy == 0
        pool.try_hold(1, 0, 100)
        assert pool.occupancy == 1
