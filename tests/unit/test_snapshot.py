"""Units for the checkpoint/restore machinery (``repro.snapshot``)."""

import json
import pickle
import random
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CheckpointError, CheckpointInterrupt
from repro.common.stats import StatsRegistry
from repro.snapshot import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpointer,
    ReplayStream,
    SignalGuard,
    load_checkpoint,
    read_checkpoint_header,
    save_checkpoint,
    register_codec,
)
from repro.snapshot import codec
from repro.snapshot.checkpoint import MAGIC
from repro.workloads import workload_by_name


# -- codec: stats handles -----------------------------------------------------


class TestStatsHandleCodec:
    def test_counter_handle_rebinds_into_shared_registry(self):
        """The regression the snapshot design hinges on: a handle created
        BEFORE the checkpoint must record into the restored registry that
        every other component shares, not into a private copy."""
        registry = StatsRegistry()
        handle = registry.counter("hmc/hits")
        handle(3)
        blob = codec.dumps({"registry": registry, "handle": handle})
        restored = codec.loads(blob)
        assert restored["registry"].get("hmc/hits") == 3
        restored["handle"](2)
        assert restored["registry"].get("hmc/hits") == 5

    def test_observer_handle_rebinds_into_shared_registry(self):
        registry = StatsRegistry()
        observe = registry.observer("lat")
        observe(10.0)
        restored = codec.loads(codec.dumps({"r": registry, "o": observe}))
        restored["o"](30.0)
        assert restored["r"].mean("lat") == 20.0
        assert restored["r"].maximum("lat") == 30.0

    def test_many_handles_share_one_restored_registry(self):
        registry = StatsRegistry()
        handles = [registry.counter(f"c{i}") for i in range(10)]
        restored = codec.loads(codec.dumps((registry, handles)))
        reg, new_handles = restored
        for handle in new_handles:
            handle()
        assert all(reg.get(f"c{i}") == 1 for i in range(10))

    def test_handles_survive_reset_then_checkpoint(self):
        """reset() clears the backing dicts in place; a handle snapshot
        taken after a reset must still rebind correctly."""
        registry = StatsRegistry()
        handle = registry.counter("x")
        handle(5)
        registry.reset()
        restored = codec.loads(codec.dumps((registry, handle)))
        restored[1](7)
        assert restored[0].get("x") == 7


# -- codec: rejection and registration ---------------------------------------


class _WithSocketish:
    """Stand-in for a class holding something with no stable pickle form."""

    def __init__(self):
        self.callback = lambda: None


class _CodecRegistered:
    def __init__(self, value):
        self.value = value
        self.derived = value * 2


register_codec(
    _CodecRegistered,
    encode=lambda obj: obj.value,
    decode=lambda value: _CodecRegistered(value),
)


class TestCodecDispatch:
    def test_stray_lambda_fails_with_named_object(self):
        with pytest.raises(CheckpointError, match="lambda|<lambda>"):
            codec.dumps(_WithSocketish())

    def test_live_generator_fails_with_replaystream_hint(self):
        def gen():
            yield 1

        with pytest.raises(CheckpointError, match="ReplayStream"):
            codec.dumps(gen())

    def test_module_level_functions_pickle_by_reference(self):
        blob = codec.dumps(workload_by_name)
        assert codec.loads(blob) is workload_by_name

    def test_registered_codec_roundtrip(self):
        obj = _CodecRegistered(21)
        restored = codec.loads(codec.dumps(obj))
        assert isinstance(restored, _CodecRegistered)
        assert restored.value == 21
        assert restored.derived == 42

    def test_unpickler_rejects_disallowed_modules(self):
        payload = pickle.dumps(pickle.Unpickler)  # pickle module: not allowed
        with pytest.raises(CheckpointError, match="disallowed"):
            codec.loads(payload)

    def test_random_state_roundtrips_exactly(self):
        rng = random.Random(1234)
        rng.random()
        restored = codec.loads(codec.dumps(rng))
        assert restored.random() == rng.random()


# -- replay streams -----------------------------------------------------------


class TestReplayStream:
    def test_replays_to_identical_position(self):
        workload = workload_by_name("lbmx4")
        stream = ReplayStream(workload, core_id=1, seed=3, scale=1024)
        consumed = [next(stream) for _ in range(257)]
        assert stream.consumed == 257

        restored = codec.loads(codec.dumps(stream))
        assert restored.consumed == 257
        for _ in range(100):
            assert next(restored) == next(stream)

    @settings(max_examples=25, deadline=None)
    @given(
        core_id=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31),
        consumed=st.integers(min_value=0, max_value=400),
    )
    def test_restore_roundtrips_rng_streams_exactly(self, core_id, seed, consumed):
        """Property: for any (core, seed, position), checkpoint+restore
        lands the stream's internal RNG in the identical state — the next
        ops match op-for-op."""
        workload = workload_by_name("streamx4")
        stream = ReplayStream(workload, core_id=core_id, seed=seed, scale=1024)
        for _ in range(consumed):
            next(stream)
        restored = codec.loads(codec.dumps(stream))
        assert [next(stream) for _ in range(16)] == [
            next(restored) for _ in range(16)
        ]


# -- checkpoint files ---------------------------------------------------------


def _tiny_system():
    from repro.sim.system import build_system

    return build_system("pageseer", workload_by_name("lbmx4"), scale=1024, seed=0)


class TestCheckpointFiles:
    def test_roundtrip_preserves_progress(self, tmp_path):
        system = _tiny_system()
        system.run_ops(50)
        path = save_checkpoint(system, tmp_path / "a.ckpt")
        restored = load_checkpoint(path)
        assert restored.steps_total == system.steps_total
        assert [core.ops_executed for core in restored.cores] == [
            core.ops_executed for core in system.cores
        ]
        assert restored.stats.snapshot() == system.stats.snapshot()

    def test_header_readable_without_unpickling(self, tmp_path):
        system = _tiny_system()
        system.run_ops(10)
        path = save_checkpoint(system, tmp_path / "a.ckpt")
        header = read_checkpoint_header(path)
        assert header["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert header["scheme"] == "pageseer"
        assert header["workload"] == "lbmx4"
        assert header["steps_total"] == 40  # 10 ops x 4 cores

    def test_no_temp_file_left_behind(self, tmp_path):
        save_checkpoint(_tiny_system(), tmp_path / "a.ckpt")
        assert [p.name for p in tmp_path.iterdir()] == ["a.ckpt"]

    def test_bad_magic_is_a_clear_error(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path)

    def test_version_skew_is_a_clear_error(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_bytes(b"REPRO-CKPT v999\n{}\npayload")
        with pytest.raises(CheckpointError, match="v999"):
            load_checkpoint(path)

    def test_truncation_detected(self, tmp_path):
        path = save_checkpoint(_tiny_system(), tmp_path / "a.ckpt")
        raw = path.read_bytes()
        path.write_bytes(raw[:-20])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_corruption_detected_by_checksum(self, tmp_path):
        path = save_checkpoint(_tiny_system(), tmp_path / "a.ckpt")
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_header_json_version_matches_magic(self, tmp_path):
        path = save_checkpoint(_tiny_system(), tmp_path / "a.ckpt")
        raw = path.read_bytes()
        assert raw.startswith(MAGIC)
        header = json.loads(raw[len(MAGIC):].split(b"\n", 1)[0])
        assert header["format_version"] == CHECKPOINT_FORMAT_VERSION

    def test_checkpointed_checker_still_works_after_restore(self, tmp_path):
        from repro.common.config import CheckConfig
        from repro.sim.system import build_system

        system = build_system(
            "pageseer", workload_by_name("lbmx4"), scale=1024, seed=0,
            check=CheckConfig(level="full"),
        )
        system.run_ops(50)
        restored = load_checkpoint(save_checkpoint(system, tmp_path / "a.ckpt"))
        assert restored.checker is not None
        # The wrapper closure was rebuilt: accesses keep being observed.
        before = restored.checker.accesses
        restored.run_ops(10)
        assert restored.checker.accesses > before
        # And the original system was reattached too (detach is transient).
        original_before = system.checker.accesses
        system.run_ops(10)
        assert system.checker.accesses > original_before


# -- run-loop hooks -----------------------------------------------------------


class TestCheckpointer:
    def test_periodic_rolling_checkpoint(self, tmp_path):
        system = _tiny_system()
        ck = Checkpointer(tmp_path, every_ops=100)
        ck.arm(system)
        system.run_ops(100)  # 400 steps -> due at 100, 200, 300, 400
        assert len(ck.written) == 4
        assert (tmp_path / "latest.ckpt").exists()

    def test_cut_points_write_distinct_files(self, tmp_path):
        system = _tiny_system()
        ck = Checkpointer(tmp_path, cut_points=[60, 150])
        ck.arm(system)
        system.run_ops(50)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["cut_150.ckpt", "cut_60.ckpt"]
        assert read_checkpoint_header(tmp_path / "cut_60.ckpt")["steps_total"] == 60

    def test_pending_signal_writes_exactly_one_final_checkpoint(self, tmp_path):
        system = _tiny_system()
        guard = SignalGuard()
        guard.pending, guard.signum = True, signal.SIGTERM
        ck = Checkpointer(tmp_path, every_ops=100, signals=guard)
        ck.arm(system)
        with pytest.raises(CheckpointInterrupt) as info:
            system.run_ops(100)
        assert info.value.signum == signal.SIGTERM
        assert info.value.path == tmp_path / "latest.ckpt"
        assert len(ck.written) == 1
        # The interrupted run is resumable.
        restored = load_checkpoint(info.value.path)
        restored.run_ops(25)


# -- signal guard -------------------------------------------------------------


class TestSignalGuard:
    def test_first_signal_sets_flag_second_force_quits(self):
        exits = []
        guard = SignalGuard(force_exit=exits.append)
        guard._handle(signal.SIGINT, None)
        assert guard.pending and guard.signum == signal.SIGINT
        assert exits == []
        guard._handle(signal.SIGTERM, None)
        assert exits == [128 + signal.SIGTERM]

    def test_handlers_installed_and_restored(self):
        previous_int = signal.getsignal(signal.SIGINT)
        previous_term = signal.getsignal(signal.SIGTERM)
        with SignalGuard() as guard:
            assert guard.installed
            assert signal.getsignal(signal.SIGINT) == guard._handle
            assert signal.getsignal(signal.SIGTERM) == guard._handle
        assert signal.getsignal(signal.SIGINT) == previous_int
        assert signal.getsignal(signal.SIGTERM) == previous_term
