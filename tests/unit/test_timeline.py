"""Unit tests for resource timelines (repro.common.timeline)."""

import pytest

from repro.common.timeline import BankedTimeline, Timeline


class TestTimeline:
    def test_idle_reserve_starts_now(self):
        t = Timeline()
        start, end = t.reserve(100, 10)
        assert (start, end) == (100, 110)

    def test_back_to_back_queues(self):
        t = Timeline()
        t.reserve(100, 10)
        start, end = t.reserve(100, 10)
        assert (start, end) == (110, 120)

    def test_gap_is_respected(self):
        t = Timeline()
        t.reserve(0, 10)
        start, _ = t.reserve(50, 5)
        assert start == 50

    def test_next_free(self):
        t = Timeline()
        t.reserve(0, 10)
        assert t.next_free(5) == 10
        assert t.next_free(20) == 20

    def test_utilization(self):
        t = Timeline()
        t.reserve(0, 50)
        assert t.utilization(100) == 0.5

    def test_utilization_capped(self):
        t = Timeline()
        t.reserve(0, 500)
        assert t.utilization(100) == 1.0

    def test_utilization_zero_elapsed(self):
        assert Timeline().utilization(0) == 0.0


class TestBankedTimeline:
    def test_requires_positive_count(self):
        with pytest.raises(ValueError):
            BankedTimeline(0)

    def test_len(self):
        assert len(BankedTimeline(4)) == 4

    def test_independent_banks(self):
        banks = BankedTimeline(2)
        banks.reserve(0, 0, 100)
        start, _ = banks.reserve(1, 0, 10)
        assert start == 0

    def test_least_loaded(self):
        banks = BankedTimeline(3)
        banks.reserve(0, 0, 100)
        banks.reserve(1, 0, 50)
        assert banks.least_loaded(0) == 2

    def test_least_loaded_after_reservations(self):
        banks = BankedTimeline(2)
        banks.reserve(0, 0, 10)
        banks.reserve(1, 0, 100)
        assert banks.least_loaded(0) == 0

    def test_least_loaded_early_exit_picks_first_idle_bank(self):
        banks = BankedTimeline(4)
        banks.reserve(0, 0, 100)
        banks.reserve(1, 0, 100)
        # Banks 2 and 3 are both idle at now; the scan stops at the first.
        assert banks.least_loaded(0) == 2

    def test_least_loaded_first_bank_idle_returns_immediately(self):
        banks = BankedTimeline(3)
        banks.reserve(1, 0, 50)
        assert banks.least_loaded(0) == 0

    def test_least_loaded_matches_full_scan(self):
        """Early exit must pick exactly what the full min-scan picks."""
        banks = BankedTimeline(5)
        for index, now, duration in [
            (0, 0, 30), (1, 0, 80), (2, 5, 10), (3, 5, 200), (4, 7, 1),
        ]:
            banks.reserve(index, now, duration)
        for now in range(0, 220, 7):
            expected = min(
                range(len(banks)),
                key=lambda i: (banks[i].next_free(now), i),
            )
            assert banks.least_loaded(now) == expected

    def test_mean_utilization(self):
        banks = BankedTimeline(2)
        banks.reserve(0, 0, 100)
        assert banks.utilization(100) == pytest.approx(0.5)
