"""Framing, chaos filtering, and addressing for the sweep service."""

import pytest

from repro.common.errors import SweepdError
from repro.common.rng import DeterministicRng
from repro.faults.chaos import ChaosConfig
from repro.sweepd.protocol import (
    FrameBuffer,
    apply_chaos,
    default_address,
    encode_frame,
    format_address,
    parse_address,
)


class TestFraming:
    def test_round_trip_single_frame(self):
        message = {"type": "lease", "worker": "w0", "seq": 7}
        out = FrameBuffer().feed(encode_frame(message))
        assert out == [message]

    def test_reassembles_across_arbitrary_segmentation(self):
        messages = [{"type": "heartbeat", "steps": i} for i in range(5)]
        wire = b"".join(encode_frame(m) for m in messages)
        buffer = FrameBuffer()
        seen = []
        # Feed one byte at a time: worst-case TCP segmentation.
        for index in range(len(wire)):
            seen.extend(buffer.feed(wire[index:index + 1]))
        assert seen == messages

    def test_multiple_frames_in_one_read(self):
        messages = [{"a": 1}, {"b": 2}, {"c": 3}]
        wire = b"".join(encode_frame(m) for m in messages)
        assert FrameBuffer().feed(wire) == messages

    def test_oversize_claim_raises(self):
        buffer = FrameBuffer()
        with pytest.raises(SweepdError, match="stream corrupt"):
            buffer.feed(b"\xff\xff\xff\xff")

    def test_undecodable_body_raises(self):
        import struct

        body = b"\x00not json"
        with pytest.raises(SweepdError, match="undecodable"):
            FrameBuffer().feed(struct.pack(">I", len(body)) + body)

    def test_non_object_payload_rejected(self):
        import struct

        body = b"[1, 2]"
        with pytest.raises(SweepdError, match="expected object"):
            FrameBuffer().feed(struct.pack(">I", len(body)) + body)


class TestChaos:
    def test_inactive_chaos_is_identity(self):
        frames = [{"i": i} for i in range(4)]
        rng = DeterministicRng("chaos/recv", 0)
        assert apply_chaos(frames, rng, None) == frames
        off = ChaosConfig(enabled=False, drop_rate=1.0)
        assert apply_chaos(frames, rng, off) == frames

    def test_drop_everything(self):
        chaos = ChaosConfig(enabled=True, drop_rate=1.0)
        rng = DeterministicRng("chaos/recv", 0)
        assert apply_chaos([{"i": 1}, {"i": 2}], rng, chaos) == []

    def test_duplicate_everything(self):
        chaos = ChaosConfig(enabled=True, duplicate_rate=1.0)
        rng = DeterministicRng("chaos/recv", 0)
        out = apply_chaos([{"i": 1}, {"i": 2}], rng, chaos)
        assert out == [{"i": 1}, {"i": 1}, {"i": 2}, {"i": 2}]

    def test_reorder_swaps_adjacent_pairs(self):
        chaos = ChaosConfig(enabled=True, reorder_rate=1.0)
        rng = DeterministicRng("chaos/recv", 0)
        out = apply_chaos([{"i": 1}, {"i": 2}, {"i": 3}], rng, chaos)
        assert out == [{"i": 2}, {"i": 1}, {"i": 3}]

    def test_schedule_is_deterministic_in_the_seed(self):
        chaos = ChaosConfig(
            enabled=True, drop_rate=0.3, duplicate_rate=0.3, reorder_rate=0.3
        )
        batches = [[{"i": i, "b": b} for i in range(6)] for b in range(10)]

        def mangle(seed):
            rng = DeterministicRng("chaos/recv", seed)
            return [apply_chaos(batch, rng, chaos) for batch in batches]

        assert mangle(42) == mangle(42)
        assert mangle(42) != mangle(43)

    def test_rates_validated(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            ChaosConfig(drop_rate=1.5)
        with pytest.raises(ConfigError):
            ChaosConfig(stall_seconds=-1.0)


class TestAddressing:
    def test_tcp_round_trip(self):
        assert parse_address("tcp:127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert format_address(("127.0.0.1", 9000)) == "tcp:127.0.0.1:9000"

    def test_unix_round_trip(self):
        assert parse_address("unix:/tmp/x.sock") == "/tmp/x.sock"
        assert format_address("/tmp/x.sock") == "unix:/tmp/x.sock"

    def test_bad_spec_raises(self):
        with pytest.raises(SweepdError, match="bad address"):
            parse_address("nonsense")

    def test_default_address_prefers_unix(self, tmp_path):
        spec = default_address(tmp_path)
        assert spec.startswith("unix:")

    def test_default_address_falls_back_to_tcp_for_deep_roots(self, tmp_path):
        deep = tmp_path / ("x" * 120)
        assert default_address(deep) == "tcp:127.0.0.1:0"
