"""Unit tests for the static reference configs (repro.baselines.static)."""

from repro.baselines.static import all_dram_config, all_nvm_config
from repro.common.config import default_system_config


class TestAllDram:
    def test_nvm_timing_becomes_dram(self):
        config = all_dram_config(default_system_config(scale=1024))
        assert config.memory.nvm.t_rcd == config.memory.dram.t_rcd
        assert config.memory.nvm.t_wr == config.memory.dram.t_wr

    def test_capacity_unchanged(self):
        base = default_system_config(scale=1024)
        config = all_dram_config(base)
        assert config.memory.nvm.capacity_bytes == base.memory.nvm.capacity_bytes

    def test_channels_match(self):
        config = all_dram_config(default_system_config(scale=1024))
        assert config.memory.nvm.channels == config.memory.dram.channels


class TestAllNvm:
    def test_dram_timing_becomes_nvm(self):
        config = all_nvm_config(default_system_config(scale=1024))
        assert config.memory.dram.t_rcd == config.memory.nvm.t_rcd
        assert config.memory.dram.t_wr == config.memory.nvm.t_wr

    def test_dram_capacity_unchanged(self):
        base = default_system_config(scale=1024)
        config = all_nvm_config(base)
        assert config.memory.dram.capacity_bytes == base.memory.dram.capacity_bytes
