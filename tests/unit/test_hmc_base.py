"""Unit tests for the shared controller machinery (repro.sim.hmc_base)."""

import pytest

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.sim.hmc_base import HmcBase, NoSwapHmc, RequestKind
from repro.vm.os_model import OsModel


def make_base(cls=NoSwapHmc):
    config = default_system_config(scale=1024, cores=1)
    stats = StatsRegistry()
    os_model = OsModel(config.memory)
    return cls(config, os_model, stats), config, stats


class TestMetadataRegion:
    def test_access_requires_reservation(self):
        hmc, _, _ = make_base()
        with pytest.raises(RuntimeError):
            hmc.metadata_access(0, 0)

    def test_reserved_pages_are_dram(self):
        hmc, config, _ = make_base()
        hmc.reserve_metadata(2)
        finish = hmc.metadata_access(0, 5)
        assert finish > 0
        # Metadata lives in the low (reserved) DRAM pages.
        assert all(
            line < config.memory.dram_pages * LINES_PER_PAGE
            for line in hmc._metadata_lines
        )

    def test_keys_wrap(self):
        hmc, _, _ = make_base()
        hmc.reserve_metadata(1)
        # Any key must map to a valid line (no IndexError).
        for key in (0, 63, 64, 10**9):
            hmc.metadata_access(0, key)

    def test_metadata_accesses_counted(self):
        hmc, _, stats = make_base()
        hmc.reserve_metadata(1)
        hmc.metadata_access(0, 0)
        assert stats.get("hmc/metadata_accesses") == 1


class TestAccountingClassification:
    @pytest.mark.parametrize(
        "home_dram,serviced,expected",
        [
            (False, "dram", "positive"),
            (False, "buffer", "positive"),
            (False, "nvm", "neutral"),
            (True, "dram", "neutral"),
            (True, "buffer", "neutral"),
            (True, "nvm", "negative"),
        ],
    )
    def test_positive_negative_neutral(self, home_dram, serviced, expected):
        hmc, config, stats = make_base()
        page = 0 if home_dram else config.memory.dram_pages
        hmc.account_service(0, 100, page, serviced, RequestKind.DEMAND)
        assert stats.get(f"hmc/{expected}_accesses") == 1

    def test_ammat_excludes_writebacks(self):
        hmc, config, stats = make_base()
        hmc.account_service(0, 100, 0, "dram", RequestKind.WRITEBACK)
        assert stats.count("hmc/ammat") == 0
        hmc.account_service(0, 100, 0, "dram", RequestKind.DEMAND)
        assert stats.count("hmc/ammat") == 1

    def test_ammat_includes_pte(self):
        hmc, _, stats = make_base()
        hmc.account_service(0, 100, 0, "dram", RequestKind.PTE)
        assert stats.count("hmc/ammat") == 1

    def test_request_kinds_counted(self):
        hmc, _, stats = make_base()
        for kind in RequestKind:
            hmc.account_service(0, 10, 0, "dram", kind)
        for kind in RequestKind:
            assert stats.get(f"hmc/requests_{kind.value}") == 1


class TestDramShareGuard:
    def test_zero_before_min_samples(self):
        hmc, _, _ = make_base()
        for _ in range(hmc.bandwidth_heuristic_min_samples - 1):
            hmc.account_service(0, 10, 0, "dram", RequestKind.DEMAND)
        assert hmc.dram_service_share == 0.0

    def test_share_after_min_samples(self):
        hmc, _, _ = make_base()
        for _ in range(hmc.bandwidth_heuristic_min_samples):
            hmc.account_service(0, 10, 0, "dram", RequestKind.DEMAND)
        assert hmc.dram_service_share == 1.0

    def test_share_fraction(self):
        hmc, config, _ = make_base()
        n = hmc.bandwidth_heuristic_min_samples
        for k in range(n):
            serviced = "dram" if k % 2 == 0 else "nvm"
            page = 0 if serviced == "dram" else config.memory.dram_pages
            hmc.account_service(0, 10, page, serviced, RequestKind.DEMAND)
        assert hmc.dram_service_share == pytest.approx(0.5)


class TestRemapWait:
    def test_positive_wait_recorded(self):
        hmc, _, stats = make_base()
        hmc.record_remap_wait(50)
        assert stats.get("hmc/remap_wait_cycles") == 50
        assert stats.get("hmc/remap_misses") == 1

    def test_zero_wait_ignored(self):
        hmc, _, stats = make_base()
        hmc.record_remap_wait(0)
        assert stats.get("hmc/remap_misses") == 0


class TestBaseInterface:
    def test_handle_request_abstract(self):
        hmc, _, _ = make_base(cls=HmcBase)
        with pytest.raises(NotImplementedError):
            hmc.handle_request(0, 0, False, 1)

    def test_mmu_hint_noop(self):
        hmc, _, _ = make_base()
        hmc.mmu_hint(0, 0, 1, 0, 0)  # must not raise

    def test_finalize_noop(self):
        hmc, _, _ = make_base()
        hmc.finalize(0)
