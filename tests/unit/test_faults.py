"""Unit tests for fault injection & recovery (repro.faults)."""

import pickle

import pytest

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import (
    FaultConfig,
    HybridMemoryConfig,
    PageSeerConfig,
    dram_timing_table1,
    nvm_timing_table1,
)
from repro.common.errors import (
    ConfigError,
    FaultError,
    SweepError,
    TransientFaultError,
    UnrecoverableFaultError,
    WorkerFaultError,
)
from repro.common.stats import StatsRegistry
from repro.core.hpt import HotPageTable
from repro.core.prt import PageRemapTable
from repro.core.swap_driver import SwapDriver, TRIGGER_REGULAR
from repro.faults import FAULT_PROFILES, FaultInjector, FaultRecovery, resolve_profile
from repro.mem.device import AccessResult
from repro.mem.main_memory import MainMemory
from repro.mem.swap_buffer import SwapBufferPool

DRAM_PAGES = 64
NVM_PAGES = 256
TOTAL = DRAM_PAGES + NVM_PAGES


def make_memory(stats):
    return MainMemory(
        HybridMemoryConfig(
            dram=dram_timing_table1(DRAM_PAGES * 4096),
            nvm=nvm_timing_table1(NVM_PAGES * 4096),
        ),
        stats,
    )


class TestFaultConfig:
    def test_defaults_are_disabled_and_free(self):
        config = FaultConfig()
        assert not config.enabled
        assert config.nvm_uncorrectable_rate == 0.0
        assert config.transient_rate == 0.0
        assert config.transfer_fault_rate == 0.0

    @pytest.mark.parametrize("field", [
        "nvm_uncorrectable_rate", "transient_rate", "transfer_fault_rate",
        "worker_crash_rate", "worker_stall_rate",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ConfigError):
            FaultConfig(**{field: 1.5})
        with pytest.raises(ConfigError):
            FaultConfig(**{field: -0.1})

    def test_retry_and_cycle_bounds(self):
        with pytest.raises(ConfigError):
            FaultConfig(max_retries=-1)
        with pytest.raises(ConfigError):
            FaultConfig(retry_backoff_cycles=0)
        with pytest.raises(ConfigError):
            FaultConfig(recovery_read_cycles=0)
        with pytest.raises(ConfigError):
            FaultConfig(worker_stall_seconds=-1.0)


class TestProfiles:
    def test_off_resolves_to_none(self):
        assert resolve_profile("off") is None
        assert resolve_profile("off", fault_seed=9) is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            resolve_profile("meteor-strike")

    def test_seed_is_threaded_through(self):
        config = resolve_profile("storm", fault_seed=42)
        assert config.enabled
        assert config.fault_seed == 42

    def test_every_profile_is_valid(self):
        for name in FAULT_PROFILES:
            config = resolve_profile(name, fault_seed=1)
            assert config is None or config.enabled


class TestFaultErrors:
    def test_site_rendering(self):
        exc = TransientFaultError("boom", device="nvm", line=12, cycle=99)
        assert "device=nvm" in str(exc)
        assert "line=12" in str(exc)
        assert "cycle=99" in str(exc)
        assert exc.device == "nvm"

    def test_hierarchy(self):
        assert issubclass(TransientFaultError, FaultError)
        assert issubclass(UnrecoverableFaultError, FaultError)
        assert issubclass(WorkerFaultError, FaultError)

    def test_pickle_roundtrip_preserves_type(self):
        # Pool workers ship exceptions back to the parent by pickle; the
        # retry policy dispatches on the reconstructed type.
        exc = WorkerFaultError("crashed", device="worker")
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, WorkerFaultError)
        assert "crashed" in str(clone)

    def test_sweep_error_distinguishes_retry_exhaustion(self):
        request_a = ("pageseer", "lbmx4", "default")
        request_b = ("pom", "lbmx4", "default")
        exc = SweepError(
            [(request_a, ValueError("x")), (request_b, WorkerFaultError("y"))],
            attempts={request_a: 1, request_b: 3},
        )
        message = str(exc)
        assert "failed on first attempt, not retried" in message
        assert "failed on all 3 attempts, retries exhausted" in message


class TestInjector:
    def make(self, **overrides):
        stats = StatsRegistry()
        config = FaultConfig(enabled=True, **overrides)
        return FaultInjector(config, stats), stats

    def replay(self, injector, accesses):
        """Run an access schedule; return the indices that faulted."""
        fired = []
        for index, (device, line, is_write) in enumerate(accesses):
            try:
                injector.check_access(device, index, line, is_write)
            except FaultError:
                fired.append(index)
        return fired

    def test_same_seed_same_schedule(self):
        schedule = [("nvm", i % 97, i % 3 == 0) for i in range(400)]
        a, _ = self.make(transient_rate=0.05, fault_seed=11)
        b, _ = self.make(transient_rate=0.05, fault_seed=11)
        assert self.replay(a, schedule) == self.replay(b, schedule)

    def test_different_seed_different_schedule(self):
        schedule = [("nvm", i % 97, False) for i in range(400)]
        a, _ = self.make(transient_rate=0.05, fault_seed=1)
        b, _ = self.make(transient_rate=0.05, fault_seed=2)
        assert self.replay(a, schedule) != self.replay(b, schedule)

    def test_bad_pages_are_sticky(self):
        injector, stats = self.make()
        injector.mark_bad(3)
        assert injector.is_bad_page(3)
        assert injector.bad_pages == [3]
        # Every unsuppressed read of the bad page fails, deterministically.
        for _ in range(3):
            with pytest.raises(UnrecoverableFaultError):
                injector.check_access("nvm", 0, 3 * LINES_PER_PAGE, False)
        assert stats.get("faults/uncorrectable_reads") == 3
        assert stats.get("faults/bad_pages") == 1

    def test_writes_to_bad_pages_do_not_fault(self):
        injector, _ = self.make()
        injector.mark_bad(3)
        injector.check_access("nvm", 0, 3 * LINES_PER_PAGE, True)

    def test_dram_never_uncorrectable(self):
        injector, _ = self.make(nvm_uncorrectable_rate=1.0)
        injector.check_access("dram", 0, 0, False)
        with pytest.raises(UnrecoverableFaultError):
            injector.check_access("nvm", 0, 0, False)

    def test_suppression_masks_everything(self):
        injector, _ = self.make(
            transient_rate=1.0, nvm_uncorrectable_rate=1.0
        )
        injector.mark_bad(0)
        with injector.suppressed():
            assert not injector.active
            injector.check_access("nvm", 0, 0, False)
            assert injector.check_transfer("nvm", 0, 0, LINES_PER_PAGE, False) is None
            with injector.suppressed():
                injector.check_access("nvm", 0, 0, False)
            injector.check_access("nvm", 0, 0, False)
        assert injector.active
        with pytest.raises(UnrecoverableFaultError):
            injector.check_access("nvm", 0, 0, False)

    def test_transfer_budget_is_partial(self):
        injector, stats = self.make(transfer_fault_rate=1.0)
        budget = injector.check_transfer("dram", 0, 0, LINES_PER_PAGE, False)
        assert budget is not None
        assert 0 <= budget < LINES_PER_PAGE
        assert stats.get("faults/transfer_dram") == 1

    def test_bulk_read_over_bad_page_is_uncorrectable(self):
        injector, _ = self.make()
        injector.mark_bad(2)
        with pytest.raises(UnrecoverableFaultError):
            injector.check_transfer(
                "nvm", 0, 2 * LINES_PER_PAGE, LINES_PER_PAGE, False
            )
        # A bulk *write* to the same page is fine (it rewrites the cells).
        assert injector.check_transfer(
            "nvm", 0, 2 * LINES_PER_PAGE, LINES_PER_PAGE, True
        ) is None


class _ScriptedMemory:
    """A MainMemory stand-in that fails a scripted number of times."""

    def __init__(self, failures, exc_factory):
        self.failures = failures
        self.exc_factory = exc_factory
        self.issue_times = []

    def access(self, now, line_spa, is_write, bulk=False):
        self.issue_times.append(now)
        if self.failures > 0:
            self.failures -= 1
            raise self.exc_factory()
        return AccessResult(start=now, finish=now + 50, row_hit=True, queue_delay=0)


class TestRecovery:
    def make(self, memory, **overrides):
        stats = StatsRegistry()
        config = FaultConfig(
            enabled=True, max_retries=3, retry_backoff_cycles=200,
            recovery_read_cycles=2000, **overrides,
        )
        injector = FaultInjector(config, stats)
        return FaultRecovery(config, injector, memory, stats), stats

    def test_backoff_schedule_is_exponential(self):
        memory = _ScriptedMemory(2, lambda: TransientFaultError("flaky"))
        recovery, stats = self.make(memory)
        result = recovery.access(1000, 7, False)
        # Issue times: 1000, +200, +400 — then the third attempt succeeds.
        assert memory.issue_times == [1000, 1200, 1600]
        assert result.finish == 1650
        assert result.start == 1000
        assert stats.get("faults/retries") == 2
        assert stats.get("faults/retry_backoff_cycles") == 600
        assert stats.get("faults/degraded_services") == 0

    def test_exhausted_retries_degrade(self):
        memory = _ScriptedMemory(99, lambda: TransientFaultError("flaky"))
        recovery, stats = self.make(memory)
        result = recovery.access(0, 7, False)
        # max_retries=3 allows 4 issues (original + 3 retries).
        assert len(memory.issue_times) == 4
        assert result.finish == memory.issue_times[-1] + 2000
        assert stats.get("faults/retries_exhausted") == 1
        assert stats.get("faults/degraded_services") == 1

    def test_uncorrectable_calls_hook_and_degrades(self):
        memory = _ScriptedMemory(
            99, lambda: UnrecoverableFaultError("dead cells")
        )
        recovery, stats = self.make(memory)
        seen = []
        recovery.on_uncorrectable = lambda now, line: seen.append((now, line))
        result = recovery.access(500, 42, False)
        assert seen == [(500, 42)]
        assert len(memory.issue_times) == 1  # never retried
        assert result.finish == 500 + 2000
        assert stats.get("faults/uncorrectable_services") == 1
        assert stats.get("faults/degraded_services") == 1


class FaultyHarness:
    """A SwapDriver wired to a real memory with a real injector."""

    def __init__(self, fault_config, quarantined=()):
        self.stats = StatsRegistry()
        self.memory = make_memory(self.stats)
        self.injector = FaultInjector(fault_config, self.stats)
        self.memory.attach_injector(self.injector)
        self.prt = PageRemapTable(DRAM_PAGES, TOTAL, 4)
        self.quarantined = set(quarantined)
        self.driver = SwapDriver(
            PageSeerConfig(),
            self.memory,
            self.prt,
            HotPageTable(64, 63, 100_000),
            SwapBufferPool(24, self.stats),
            self.stats,
            is_protected_frame=lambda frame: False,
            faults=fault_config,
            injector=self.injector,
            is_quarantined=lambda page: page in self.quarantined,
        )


class TestSwapDriverFaults:
    def test_abort_leaves_no_trace(self):
        config = FaultConfig(
            enabled=True, transfer_fault_rate=1.0, max_retries=0
        )
        h = FaultyHarness(config)
        page = DRAM_PAGES  # colour 0
        assert not h.driver.request_swap(0, page, TRIGGER_REGULAR, 0.0)
        assert h.stats.get("swap_driver/aborted_swaps") == 1
        assert h.prt.active_pairs == 0
        assert not h.driver.active_swaps()
        assert h.driver.records == []
        assert h.stats.get("swap_driver/swaps") == 0

    def test_transient_transfer_faults_are_retried(self):
        # With a moderate rate and a deep retry budget, the swap lands
        # eventually — and the retries are visible in the stats.
        config = FaultConfig(
            enabled=True, transfer_fault_rate=0.3, max_retries=8, fault_seed=4
        )
        h = FaultyHarness(config)
        page = DRAM_PAGES
        assert h.driver.request_swap(0, page, TRIGGER_REGULAR, 0.0)
        assert h.prt.is_swapped(page)
        assert h.stats.get("swap_driver/swap_retries") > 0
        # The commit time reflects the backoff: start moved past `now`.
        assert h.driver.records[-1].start > 0

    def test_uncorrectable_page_cannot_be_swapped_normally(self):
        config = FaultConfig(enabled=True, max_retries=4)
        h = FaultyHarness(config)
        page = DRAM_PAGES
        h.injector.mark_bad(page - DRAM_PAGES)
        assert not h.driver.request_swap(0, page, TRIGGER_REGULAR, 0.0)
        assert h.stats.get("swap_driver/aborted_swaps") == 1
        assert not h.prt.is_swapped(page)

    def test_rescue_swap_suppresses_injection(self):
        config = FaultConfig(enabled=True, max_retries=0)
        h = FaultyHarness(config)
        page = DRAM_PAGES
        h.injector.mark_bad(page - DRAM_PAGES)
        h.quarantined.add(page)
        assert h.driver.rescue_swap(0, page)
        assert h.prt.is_swapped(page)
        assert h.driver.swaps_by_trigger()["rescue"] == 1
        assert h.stats.get("swap_driver/swaps_rescue") == 1

    def test_quarantined_page_declined_by_request_swap(self):
        config = FaultConfig(enabled=True)
        h = FaultyHarness(config, quarantined={DRAM_PAGES})
        assert not h.driver.request_swap(0, DRAM_PAGES, TRIGGER_REGULAR, 0.0)
        assert h.stats.get("swap_driver/declined_quarantined") == 1

    def test_rescued_page_is_pinned_in_dram(self):
        config = FaultConfig(enabled=True)
        h = FaultyHarness(config)
        colours = 16  # 64 frames / 4 ways
        bad_page = DRAM_PAGES  # colour 0
        h.injector.mark_bad(bad_page - DRAM_PAGES)
        h.quarantined.add(bad_page)
        assert h.driver.rescue_swap(0, bad_page)
        frame = h.prt.dram_frame_holding(bad_page)
        # Swap in more colour-0 pages than there are remaining colour-0
        # frames; the quarantined page's frame must never be the victim.
        for index in range(1, 6):
            h.driver.request_swap(
                10_000 * index, DRAM_PAGES + index * colours,
                TRIGGER_REGULAR, 0.0,
            )
        assert h.prt.dram_frame_holding(bad_page) == frame
