"""Unit tests for the MMU Driver (repro.core.mmu_driver)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.stats import StatsRegistry
from repro.core.mmu_driver import MmuDriver


class FakeFetcher:
    def __init__(self, latency=200):
        self.latency = latency
        self.fetches = []

    def __call__(self, now, line):
        self.fetches.append((now, line))
        return now + self.latency


def make_driver(capacity=4, latency=200):
    fetcher = FakeFetcher(latency)
    driver = MmuDriver(capacity, fetcher, StatsRegistry(), respond_latency_cycles=2)
    return driver, fetcher


class TestHints:
    def test_cold_hint_fetches(self):
        driver, fetcher = make_driver()
        ready = driver.on_hint(100, 55)
        assert fetcher.fetches == [(100, 55)]
        assert ready == 300

    def test_warm_hint_skips_fetch(self):
        driver, fetcher = make_driver()
        driver.on_hint(100, 55)
        ready = driver.on_hint(500, 55)
        assert len(fetcher.fetches) == 1
        assert ready == 500

    def test_warm_hint_before_data_ready(self):
        driver, _ = make_driver()
        driver.on_hint(100, 55)  # ready at 300
        ready = driver.on_hint(150, 55)
        assert ready == 300


class TestIntercept:
    def test_intercept_hit(self):
        driver, _ = make_driver()
        driver.on_hint(100, 55)
        finish = driver.intercept(400, 55)
        assert finish == 402

    def test_intercept_waits_for_fetch(self):
        driver, _ = make_driver()
        driver.on_hint(100, 55)  # ready at 300
        finish = driver.intercept(200, 55)
        assert finish == 302

    def test_intercept_miss(self):
        driver, _ = make_driver()
        assert driver.intercept(100, 99) is None

    def test_hit_rate(self):
        driver, _ = make_driver()
        driver.on_hint(0, 1)
        driver.intercept(500, 1)
        driver.intercept(500, 2)
        assert driver.intercept_hit_rate == 0.5


class TestCapacity:
    def test_lru_eviction(self):
        driver, _ = make_driver(capacity=2)
        driver.on_hint(0, 1)
        driver.on_hint(0, 2)
        driver.intercept(500, 1)  # refresh line 1
        driver.on_hint(600, 3)  # evicts line 2
        assert driver.intercept(700, 2) is None
        assert driver.intercept(700, 1) is not None

    def test_requires_capacity(self):
        with pytest.raises(ConfigError):
            MmuDriver(0, lambda now, line: now, StatsRegistry())

    def test_occupancy(self):
        driver, _ = make_driver(capacity=4)
        driver.on_hint(0, 1)
        driver.on_hint(0, 2)
        assert driver.occupancy == 2


class TestInvalidate:
    def test_invalidate_drops_line(self):
        driver, _ = make_driver()
        driver.on_hint(0, 1)
        driver.invalidate(1)
        assert driver.intercept(500, 1) is None

    def test_invalidate_absent_noop(self):
        driver, _ = make_driver()
        driver.invalidate(1)
