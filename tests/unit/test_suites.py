"""Unit tests for the Table III workload suite (repro.workloads.suites)."""

import itertools

import pytest

from repro.workloads import all_workloads, footprint_pages_for, workload_by_name
from repro.workloads.base import MIN_FOOTPRINT_PAGES
from repro.workloads.suites import (
    BENCHMARKS,
    INSTANCE_COUNTS,
    MIX_DEFINITIONS,
    MIX_WORKLOADS,
    UNIQUE_WORKLOADS,
)


class TestTableIII:
    def test_twenty_unique_workloads(self):
        assert len(UNIQUE_WORKLOADS) == 20

    def test_six_mixes(self):
        assert len(MIX_WORKLOADS) == 6

    def test_total_26(self):
        assert len(all_workloads()) == 26

    def test_suite_sizes_match_paper(self):
        suites = {}
        for spec in UNIQUE_WORKLOADS:
            suites.setdefault(spec.suite, []).append(spec)
        assert len(suites["spec"]) == 8
        assert len(suites["splash3"]) == 6
        assert len(suites["coral"]) == 6

    @pytest.mark.parametrize(
        "bench_name,cores",
        [("lbm", 4), ("mcf", 8), ("libquantum", 6), ("omnetpp", 8),
         ("leslie3d", 12), ("barnes", 8), ("stream", 4)],
    )
    def test_instance_counts(self, bench_name, cores):
        spec = workload_by_name(f"{bench_name}x{cores}")
        assert spec.cores == cores

    @pytest.mark.parametrize(
        "bench_name,mb",
        [("lbm", 422), ("milc", 380), ("GemsFDTD", 502), ("LULESH", 914),
         ("oceanCon", 887), ("leslie3d", 62), ("fft", 768)],
    )
    def test_footprints(self, bench_name, mb):
        assert BENCHMARKS[bench_name][1] == mb

    def test_mixes_have_four_parts(self):
        for spec in MIX_WORKLOADS:
            assert spec.cores == 4
            assert spec.is_mix

    def test_mix_members_match_paper(self):
        assert MIX_DEFINITIONS["mix1"] == ["lbm", "LULESH", "SNAP", "leslie3d"]
        assert MIX_DEFINITIONS["mix6"] == ["libquantum", "lbm", "mcf", "bwaves"]

    def test_all_mix_members_defined(self):
        for members in MIX_DEFINITIONS.values():
            for benchmark in members:
                assert benchmark in BENCHMARKS

    def test_lookup_by_name(self):
        assert workload_by_name("mix3").is_mix
        with pytest.raises(KeyError):
            workload_by_name("nonexistent")


class TestStreams:
    def test_unique_workload_cores_share_archetype(self):
        spec = workload_by_name("lbmx4")
        parts = {p.benchmark for p in spec.parts}
        assert parts == {"lbm"}

    def test_mix_cores_differ(self):
        spec = workload_by_name("mix1")
        assert len({p.benchmark for p in spec.parts}) == 4

    def test_streams_decorrelated_across_cores(self):
        spec = workload_by_name("lbmx4")
        a = list(itertools.islice(spec.make_stream(0, 0, 512), 100))
        b = list(itertools.islice(spec.make_stream(1, 0, 512), 100))
        assert a != b

    def test_streams_deterministic_per_seed(self):
        spec = workload_by_name("mix2")
        a = list(itertools.islice(spec.make_stream(2, 7, 512), 100))
        b = list(itertools.islice(spec.make_stream(2, 7, 512), 100))
        assert a == b

    def test_streams_vary_with_seed(self):
        spec = workload_by_name("milcx4")
        a = list(itertools.islice(spec.make_stream(0, 1, 512), 200))
        b = list(itertools.islice(spec.make_stream(0, 2, 512), 200))
        assert a != b


class TestFootprints:
    def test_scaling(self):
        # 422 MB at scale 512 -> ~211 pages.
        pages = footprint_pages_for(422, 512)
        assert pages == 422 * 1024 * 1024 // 512 // 4096

    def test_floor(self):
        assert footprint_pages_for(1, 100_000) == MIN_FOOTPRINT_PAGES

    def test_workload_total_footprint(self):
        spec = workload_by_name("lbmx4")
        assert spec.footprint_pages(512) == 4 * footprint_pages_for(422, 512)

    def test_ratios_preserved_above_floor(self):
        # Footprint ratios survive scaling for workloads above the
        # MIN_FOOTPRINT_PAGES floor.
        big = footprint_pages_for(914, 512)
        mid = footprint_pages_for(422, 512)
        assert big / mid == pytest.approx(914 / 422, rel=0.05)

    def test_small_footprints_clamped(self):
        # leslie3d (62 MB) scales below the floor and gets clamped.
        assert footprint_pages_for(62, 512) == MIN_FOOTPRINT_PAGES
