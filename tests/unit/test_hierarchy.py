"""Unit tests for the cache hierarchy (repro.cache.hierarchy)."""

import pytest

from repro.common.config import default_system_config
from repro.common.stats import StatsRegistry
from repro.cache.hierarchy import CacheHierarchy


@pytest.fixture
def hierarchy():
    config = default_system_config(scale=1024, cores=2)
    return CacheHierarchy(config, StatsRegistry())


class TestMissPath:
    def test_cold_access_is_llc_miss(self, hierarchy):
        outcome = hierarchy.access(0, 100, is_write=False)
        assert outcome.llc_miss
        assert outcome.hit_level is None

    def test_miss_latency_sums_all_levels(self, hierarchy):
        config = hierarchy.config
        outcome = hierarchy.access(0, 100, is_write=False)
        expected = (
            config.l1.latency_cycles
            + config.l2.latency_cycles
            + config.l3.latency_cycles
        )
        assert outcome.latency_cycles == expected

    def test_miss_installs_everywhere(self, hierarchy):
        hierarchy.access(0, 100, is_write=False)
        assert hierarchy.l1[0].contains(100)
        assert hierarchy.l2[0].contains(100)
        assert hierarchy.l3.contains(100)


class TestHitPath:
    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.access(0, 100, False)
        outcome = hierarchy.access(0, 100, False)
        assert outcome.hit_level == "l1"
        assert outcome.latency_cycles == hierarchy.config.l1.latency_cycles

    def test_other_core_hits_shared_l3(self, hierarchy):
        hierarchy.access(0, 100, False)
        outcome = hierarchy.access(1, 100, False)
        assert outcome.hit_level == "l3"

    def test_l3_hit_promotes_to_private_levels(self, hierarchy):
        hierarchy.access(0, 100, False)
        hierarchy.access(1, 100, False)
        outcome = hierarchy.access(1, 100, False)
        assert outcome.hit_level == "l1"


class TestPteBypass:
    """PTE lines are cacheable in L2/L3 but never in L1 (Section II-C)."""

    def test_uncacheable_l1_skips_l1(self, hierarchy):
        hierarchy.access(0, 200, False, cacheable_l1=False)
        assert not hierarchy.l1[0].contains(200)
        assert hierarchy.l2[0].contains(200)
        assert hierarchy.l3.contains(200)

    def test_uncacheable_l1_hit_in_l2(self, hierarchy):
        hierarchy.access(0, 200, False, cacheable_l1=False)
        outcome = hierarchy.access(0, 200, False, cacheable_l1=False)
        assert outcome.hit_level == "l2"

    def test_uncacheable_latency_excludes_l1(self, hierarchy):
        outcome = hierarchy.access(0, 200, False, cacheable_l1=False)
        expected = (
            hierarchy.config.l2.latency_cycles + hierarchy.config.l3.latency_cycles
        )
        assert outcome.latency_cycles == expected


class TestWritebacks:
    def test_dirty_eviction_surfaces(self, hierarchy):
        """Filling past L1 capacity with dirty lines must emit write-backs."""
        l1 = hierarchy.config.l1
        lines_that_alias = [
            100 + k * l1.num_sets for k in range(l1.ways + 2)
        ]
        writebacks = []
        for line in lines_that_alias:
            outcome = hierarchy.access(0, line, is_write=True)
            writebacks.extend(outcome.writebacks)
        assert writebacks, "expected at least one dirty write-back"

    def test_clean_evictions_silent(self, hierarchy):
        l1 = hierarchy.config.l1
        for k in range(l1.ways + 4):
            outcome = hierarchy.access(0, 100 + k * l1.num_sets, is_write=False)
            # reads evicted from L1 may still be dirty in no case here
            for wb in outcome.writebacks:
                # any write-back must come from a dirty line; none were written
                raise AssertionError("unexpected write-back of a clean line")


class TestStats:
    def test_llc_miss_counted(self, hierarchy):
        hierarchy.access(0, 100, False)
        assert hierarchy.stats.get("cache/llc_misses") == 1

    def test_hits_counted(self, hierarchy):
        hierarchy.access(0, 100, False)
        hierarchy.access(0, 100, False)
        assert hierarchy.stats.get("cache/l1_hits") == 1
