"""Unit tests for the Swap Driver (repro.core.swap_driver)."""

import pytest

from repro.common.config import (
    HybridMemoryConfig,
    PageSeerConfig,
    dram_timing_table1,
    nvm_timing_table1,
)
from repro.common.stats import StatsRegistry
from repro.core.hpt import HotPageTable
from repro.core.prt import PageRemapTable
from repro.core.swap_driver import (
    SwapDriver,
    TRIGGER_MMU,
    TRIGGER_PCT,
    TRIGGER_REGULAR,
    TRIGGER_RESCUE,
)
from repro.mem.main_memory import MainMemory
from repro.mem.swap_buffer import SwapBufferPool

DRAM_PAGES = 64
NVM_PAGES = 512
COLOURS = 16  # 64 / 4 ways


class Harness:
    def __init__(self, protected=(), swap_engines=3, bw_enabled=True):
        self.stats = StatsRegistry()
        self.config = PageSeerConfig(
            swap_engines=swap_engines, bandwidth_heuristic_enabled=bw_enabled
        )
        memory_config = HybridMemoryConfig(
            dram=dram_timing_table1(DRAM_PAGES * 4096),
            nvm=nvm_timing_table1(NVM_PAGES * 4096),
        )
        self.memory = MainMemory(memory_config, self.stats)
        self.prt = PageRemapTable(DRAM_PAGES, DRAM_PAGES + NVM_PAGES, 4)
        self.dram_hpt = HotPageTable(64, 63, 100_000)
        self.buffers = SwapBufferPool(24, self.stats)
        self.swapped_in = []
        self.swapped_out = []
        self.driver = SwapDriver(
            self.config,
            self.memory,
            self.prt,
            self.dram_hpt,
            self.buffers,
            self.stats,
            is_protected_frame=lambda f: f in protected,
            on_swap_in=lambda p, t, n: self.swapped_in.append((p, t)),
            on_swap_out=lambda p, n: self.swapped_out.append(p),
        )

    def nvm_page(self, colour=0, index=0):
        """An NVM page of the given colour."""
        page = DRAM_PAGES + colour + index * COLOURS
        assert self.prt.colour_of(page) == colour
        return page


class TestRequestSwap:
    def test_basic_swap_succeeds(self):
        h = Harness()
        page = h.nvm_page()
        assert h.driver.request_swap(0, page, TRIGGER_MMU, 0.0)
        assert h.prt.is_swapped(page)
        assert h.swapped_in == [(page, TRIGGER_MMU)]

    def test_swap_lands_in_matching_colour_frame(self):
        h = Harness()
        page = h.nvm_page(colour=3)
        h.driver.request_swap(0, page, TRIGGER_MMU, 0.0)
        frame = h.prt.dram_frame_holding(page)
        assert h.prt.colour_of(frame) == 3

    def test_dram_home_declined(self):
        h = Harness()
        assert not h.driver.request_swap(0, 5, TRIGGER_MMU, 0.0)
        assert h.stats.get("swap_driver/declined_dram_home") == 1

    def test_already_swapped_declined(self):
        h = Harness()
        page = h.nvm_page()
        h.driver.request_swap(0, page, TRIGGER_MMU, 0.0)
        assert not h.driver.request_swap(0, page, TRIGGER_MMU, 0.0)
        assert h.stats.get("swap_driver/declined_already_swapped") == 1

    def test_bandwidth_heuristic_declines(self):
        h = Harness()
        page = h.nvm_page()
        assert not h.driver.request_swap(0, page, TRIGGER_MMU, 0.96)
        assert h.stats.get("swap_driver/declined_bandwidth") == 1

    def test_bandwidth_heuristic_can_be_disabled(self):
        h = Harness(bw_enabled=False)
        page = h.nvm_page()
        assert h.driver.request_swap(0, page, TRIGGER_MMU, 0.99)

    def test_engine_cap(self):
        h = Harness(swap_engines=1)
        assert h.driver.request_swap(0, h.nvm_page(0), TRIGGER_MMU, 0.0)
        assert not h.driver.request_swap(0, h.nvm_page(1), TRIGGER_MMU, 0.0)
        assert h.stats.get("swap_driver/declined_engines_busy") == 1

    def test_engines_free_after_completion(self):
        h = Harness(swap_engines=1)
        h.driver.request_swap(0, h.nvm_page(0), TRIGGER_MMU, 0.0)
        end = h.driver.records[0].end
        assert h.driver.request_swap(end + 1, h.nvm_page(1), TRIGGER_MMU, 0.0)

    def test_hot_frames_locked(self):
        h = Harness()
        for frame in h.prt.dram_frames_of_colour(0):
            h.dram_hpt.record_miss(0, frame)
        assert not h.driver.request_swap(0, h.nvm_page(0), TRIGGER_MMU, 0.0)
        assert h.stats.get("swap_driver/declined_locked") == 1

    def test_protected_frames_skipped(self):
        h = Harness(protected=set(range(DRAM_PAGES)))
        assert not h.driver.request_swap(0, h.nvm_page(0), TRIGGER_MMU, 0.0)


class TestOptimizedSlowSwap:
    def fill_colour(self, h, colour=0):
        pages = []
        for index, _frame in enumerate(h.prt.dram_frames_of_colour(colour)):
            page = h.nvm_page(colour, index)
            end = 0 if not h.driver.records else h.driver.records[-1].end
            assert h.driver.request_swap(end + 1, page, TRIGGER_REGULAR, 0.0)
            pages.append(page)
        return pages

    def test_eviction_uses_optimized_slow_swap(self):
        h = Harness()
        pages = self.fill_colour(h)
        end = h.driver.records[-1].end
        newcomer = h.nvm_page(0, 10)
        assert h.driver.request_swap(end + 1, newcomer, TRIGGER_REGULAR, 0.0)
        record = h.driver.records[-1]
        assert record.optimized_slow
        assert record.reads == 3 and record.writes == 3

    def test_evicted_page_restored_home(self):
        h = Harness()
        pages = self.fill_colour(h)
        end = h.driver.records[-1].end
        newcomer = h.nvm_page(0, 10)
        h.driver.request_swap(end + 1, newcomer, TRIGGER_REGULAR, 0.0)
        evicted = h.swapped_out[0]
        assert evicted in pages
        assert h.prt.location_of(evicted) == evicted

    def test_simple_swap_is_2r2w(self):
        h = Harness()
        h.driver.request_swap(0, h.nvm_page(), TRIGGER_REGULAR, 0.0)
        record = h.driver.records[0]
        assert not record.optimized_slow
        assert record.reads == 2 and record.writes == 2

    def test_oldest_frame_evicted_first(self):
        h = Harness()
        pages = self.fill_colour(h)
        end = h.driver.records[-1].end
        h.driver.request_swap(end + 1, h.nvm_page(0, 10), TRIGGER_REGULAR, 0.0)
        # The first page swapped in (oldest frame) is the victim.
        assert h.swapped_out == [pages[0]]


class TestBufferServicing:
    def test_in_flight_served_from_buffer(self):
        h = Harness()
        page = h.nvm_page()
        h.driver.request_swap(100, page, TRIGGER_MMU, 0.0)
        record = h.driver.records[0]
        mid = (record.start + record.end) // 2
        finish = h.driver.service_if_swapping(mid, page)
        assert finish is not None
        assert finish <= mid + h.buffers.service_latency_cycles

    def test_not_swapping_returns_none(self):
        h = Harness()
        assert h.driver.service_if_swapping(0, h.nvm_page()) is None

    def test_after_completion_returns_none(self):
        h = Harness()
        page = h.nvm_page()
        h.driver.request_swap(100, page, TRIGGER_MMU, 0.0)
        end = h.driver.records[0].end
        assert h.driver.service_if_swapping(end + 1, page) is None

    def test_partner_frame_also_served(self):
        h = Harness()
        page = h.nvm_page()
        h.driver.request_swap(100, page, TRIGGER_MMU, 0.0)
        frame = h.prt.dram_frame_holding(page)
        record = h.driver.records[0]
        mid = (record.start + record.end) // 2
        assert h.driver.service_if_swapping(mid, frame) is not None


class TestAccounting:
    def test_trigger_counts(self):
        h = Harness()
        h.driver.request_swap(0, h.nvm_page(0), TRIGGER_MMU, 0.0)
        end = h.driver.records[-1].end
        h.driver.request_swap(end + 1, h.nvm_page(1), TRIGGER_PCT, 0.0)
        end = h.driver.records[-1].end
        h.driver.request_swap(end + 1, h.nvm_page(2), TRIGGER_REGULAR, 0.0)
        counts = h.driver.swaps_by_trigger()
        assert counts == {
            TRIGGER_MMU: 1,
            TRIGGER_PCT: 1,
            TRIGGER_REGULAR: 1,
            TRIGGER_RESCUE: 0,
        }
        assert h.driver.total_swaps == 3

    def test_swap_duration_positive(self):
        h = Harness()
        h.driver.request_swap(0, h.nvm_page(), TRIGGER_MMU, 0.0)
        record = h.driver.records[0]
        assert record.end > record.start
