"""Unit tests for the PCT, PCTc, and Filter (repro.core.pct)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.pct import (
    CorrelationTrigger,
    FilterEntry,
    FilterTable,
    PageCorrelationTable,
    PctCache,
    PctEntry,
)

THRESHOLD = 14
COUNTER_MAX = 63


def make_filter(entries=8):
    return FilterTable(entries, COUNTER_MAX, THRESHOLD)


class TestPageCorrelationTable:
    def test_default_entry(self):
        pct = PageCorrelationTable()
        entry = pct.read(42)
        assert entry == PctEntry(0, None, 0)

    def test_write_read(self):
        pct = PageCorrelationTable()
        pct.write(42, PctEntry(10, 43, 5))
        assert pct.read(42) == PctEntry(10, 43, 5)
        assert len(pct) == 1


class TestPctCache:
    def test_requires_full_set(self):
        with pytest.raises(ConfigError):
            PctCache(entries=2, ways=4, latency_cycles=1)

    def test_miss_then_hit(self):
        cache = PctCache(8, 4, 1)
        assert cache.lookup(1) is None
        cache.fill(1, PctEntry(5, None, 0))
        assert cache.lookup(1).count == 5

    def test_eviction_returns_change_bit(self):
        cache = PctCache(2, 1, 1)
        cache.fill(1, PctEntry(1, None, 0))
        cache.update(1, PctEntry(20, None, 0), effective_change=True)
        cache.fill(2, PctEntry(2, None, 0))
        victim = cache.fill(3, PctEntry(3, None, 0))
        victim_page, victim_entry, changed = victim
        assert victim_page == 1
        assert victim_entry.count == 20
        assert changed

    def test_unchanged_eviction(self):
        cache = PctCache(1, 1, 1)
        cache.fill(1, PctEntry(1, None, 0))
        victim = cache.fill(2, PctEntry(2, None, 0))
        assert victim[2] is False

    def test_update_nonresident_fills(self):
        cache = PctCache(4, 1, 1)
        cache.update(9, PctEntry(3, None, 0), effective_change=False)
        assert cache.lookup(9).count == 3

    def test_hit_rate(self):
        cache = PctCache(4, 1, 1)
        cache.lookup(1)
        cache.fill(1, PctEntry(0, None, 0))
        cache.lookup(1)
        assert cache.hit_rate == 0.5


class TestMergedHistory:
    def test_count_blends_half_history(self):
        entry = FilterEntry(page=1, pid=0, base=PctEntry(20, None, 0), misses=10)
        merged = FilterTable.merged_history(entry, COUNTER_MAX)
        assert merged.count == 10 + 20 // 2

    def test_count_saturates(self):
        entry = FilterEntry(page=1, pid=0, base=PctEntry(60, None, 0), misses=60)
        merged = FilterTable.merged_history(entry, COUNTER_MAX)
        assert merged.count == COUNTER_MAX

    def test_keeps_old_follower_by_default(self):
        entry = FilterEntry(
            page=1, pid=0, base=PctEntry(5, 2, 8), misses=1, follower_misses=4
        )
        merged = FilterTable.merged_history(entry, COUNTER_MAX)
        assert merged.follower_ppn == 2
        assert merged.follower_count == 4 + 8 // 2

    def test_new_follower_wins_when_observed_more(self):
        entry = FilterEntry(
            page=1,
            pid=0,
            base=PctEntry(5, 2, 8),
            follower_misses=2,
            new_follower_ppn=3,
            new_follower_misses=9,
        )
        merged = FilterTable.merged_history(entry, COUNTER_MAX)
        assert merged.follower_ppn == 3

    def test_new_follower_fills_empty_slot(self):
        entry = FilterEntry(
            page=1,
            pid=0,
            base=PctEntry(5, None, 0),
            new_follower_ppn=3,
            new_follower_misses=1,
        )
        merged = FilterTable.merged_history(entry, COUNTER_MAX)
        assert merged.follower_ppn == 3


class TestFilterFlurries:
    def test_first_miss_opens_flurry(self):
        filt = make_filter()
        triggers, evicted = filt.observe_miss(1, 100, PctEntry())
        assert filt.current_leader(1) == 100
        assert not evicted
        assert list(triggers) == []

    def test_repeat_misses_accumulate(self):
        filt = make_filter()
        filt.observe_miss(1, 100, PctEntry())
        for _ in range(5):
            filt.observe_miss(1, 100, PctEntry())
        assert filt.entry_for(100).misses == 6

    def test_leader_change(self):
        filt = make_filter()
        filt.observe_miss(1, 100, PctEntry())
        filt.observe_miss(1, 200, PctEntry())
        assert filt.current_leader(1) == 200

    def test_new_follower_learned(self):
        filt = make_filter()
        filt.observe_miss(1, 100, PctEntry())
        filt.observe_miss(1, 200, PctEntry())
        assert filt.entry_for(100).new_follower_ppn == 200

    def test_known_follower_counts_misses(self):
        filt = make_filter()
        filt.observe_miss(1, 100, PctEntry(20, 200, 20))
        for _ in range(3):
            filt.observe_miss(1, 200, PctEntry())
        assert filt.entry_for(100).follower_misses == 3

    def test_pid_isolation(self):
        filt = make_filter()
        filt.observe_miss(1, 100, PctEntry())
        filt.observe_miss(2, 200, PctEntry())
        # Different PID: page 200 must not be recorded as 100's follower.
        assert filt.entry_for(100).new_follower_ppn is None
        assert filt.current_leader(1) == 100
        assert filt.current_leader(2) == 200


class TestFilterTriggers:
    def test_hot_history_triggers(self):
        filt = make_filter()
        triggers, _ = filt.observe_miss(1, 100, PctEntry(THRESHOLD, None, 0))
        assert CorrelationTrigger(100, False) in triggers

    def test_cold_history_no_trigger(self):
        filt = make_filter()
        triggers, _ = filt.observe_miss(1, 100, PctEntry(THRESHOLD - 1, None, 0))
        assert list(triggers) == []

    def test_follower_trigger(self):
        filt = make_filter()
        triggers, _ = filt.observe_miss(
            1, 100, PctEntry(THRESHOLD, 200, THRESHOLD)
        )
        assert CorrelationTrigger(200, True) in triggers

    def test_cold_follower_no_trigger(self):
        filt = make_filter()
        triggers, _ = filt.observe_miss(
            1, 100, PctEntry(THRESHOLD, 200, THRESHOLD - 1)
        )
        assert triggers == [CorrelationTrigger(100, False)]

    def test_trigger_only_on_first_miss(self):
        filt = make_filter()
        filt.observe_miss(1, 100, PctEntry(THRESHOLD, None, 0))
        triggers, _ = filt.observe_miss(1, 100, PctEntry(THRESHOLD, None, 0))
        assert list(triggers) == []


class TestFilterEviction:
    def test_capacity_enforced(self):
        filt = make_filter(entries=2)
        filt.observe_miss(1, 100, PctEntry())
        filt.observe_miss(1, 200, PctEntry())
        _, evicted = filt.observe_miss(1, 300, PctEntry())
        assert [e.page for e in evicted] == [100]

    def test_requires_two_entries(self):
        with pytest.raises(ConfigError):
            FilterTable(1, COUNTER_MAX, THRESHOLD)

    def test_drain_returns_everything(self):
        filt = make_filter()
        filt.observe_miss(1, 100, PctEntry())
        filt.observe_miss(1, 200, PctEntry())
        drained = filt.drain()
        assert {e.page for e in drained} == {100, 200}
        assert filt.occupancy == 0
        assert filt.current_leader(1) is None
