"""Unit tests for the throughput bench harness (repro.bench)."""

import json

from repro.bench import compare_documents, measure_config
from repro.cli import main

#: A tiny grid so the whole module runs in seconds.
FAST = [
    "--schemes", "noswap",
    "--ops", "200",
    "--warmup-ops", "100",
    "--repeats", "1",
]


def run_bench_cli(tmp_path, *extra):
    argv = ["bench", *FAST, "--out-dir", str(tmp_path), *extra]
    return main(argv)


class TestBenchJson:
    def test_writes_valid_document(self, tmp_path):
        assert run_bench_cli(tmp_path, "--label", "unit") == 0
        document = json.loads((tmp_path / "BENCH_unit.json").read_text())
        assert document["label"] == "unit"
        assert set(document["params"]) == {
            "scale", "warmup_ops", "measure_ops", "seed", "repeats", "engines"
        }
        entry = document["results"]["noswap/milcx4"]
        assert entry["ops_per_sec"] > 0
        assert entry["ops"] == 200 * 4  # milcx4 runs four cores
        assert entry["wall_seconds_best"] <= entry["wall_seconds_total"]
        assert len(entry["stats_digest"]) == 16
        assert entry["engine"] == "batched"
        assert isinstance(document["git_rev"], str)

    def test_both_engines_benched_with_identical_digests(self, tmp_path):
        """The default grid covers both engines; the scalar row carries
        the @scalar key suffix and must agree bit-for-bit with batched."""
        assert run_bench_cli(tmp_path, "--label", "eng") == 0
        document = json.loads((tmp_path / "BENCH_eng.json").read_text())
        batched = document["results"]["noswap/milcx4"]
        scalar = document["results"]["noswap/milcx4@scalar"]
        assert scalar["engine"] == "scalar"
        assert scalar["stats_digest"] == batched["stats_digest"]

    def test_single_engine_selection(self, tmp_path):
        assert run_bench_cli(tmp_path, "--label", "solo",
                             "--engines", "batched") == 0
        document = json.loads((tmp_path / "BENCH_solo.json").read_text())
        assert list(document["results"]) == ["noswap/milcx4"]

    def test_quick_flag_recorded(self, tmp_path):
        assert run_bench_cli(tmp_path, "--quick", "--label", "q") == 0
        document = json.loads((tmp_path / "BENCH_q.json").read_text())
        assert document["quick"] is True

    def test_unknown_scheme_rejected(self, tmp_path):
        assert main(["bench", "--schemes", "bogus",
                     "--out-dir", str(tmp_path)]) == 2

    def test_stats_digest_is_deterministic(self):
        kwargs = dict(scale=1024, warmup_ops=100, measure_ops=200,
                      seed=0, repeats=1)
        a = measure_config("noswap", "milcx4", **kwargs)
        b = measure_config("noswap", "milcx4", **kwargs)
        assert a["stats_digest"] == b["stats_digest"]


class TestCompareGate:
    @staticmethod
    def doc(rate):
        return {"results": {"noswap/milcx4": {"ops_per_sec": rate}}}

    def test_within_tolerance_passes(self):
        problems = compare_documents(self.doc(80.0), self.doc(100.0), 0.30)
        assert problems == []

    def test_beyond_tolerance_fails(self):
        problems = compare_documents(self.doc(60.0), self.doc(100.0), 0.30)
        assert len(problems) == 1
        assert "noswap/milcx4" in problems[0]

    def test_improvement_passes(self):
        assert compare_documents(self.doc(250.0), self.doc(100.0), 0.30) == []

    def test_configs_missing_from_current_are_ignored(self):
        current = {"results": {}}
        assert compare_documents(current, self.doc(100.0), 0.30) == []

    def test_cli_gate_fails_on_regression(self, tmp_path, capsys):
        assert run_bench_cli(tmp_path, "--label", "base") == 0
        baseline_path = tmp_path / "BENCH_base.json"
        baseline = json.loads(baseline_path.read_text())
        baseline["results"]["noswap/milcx4"]["ops_per_sec"] *= 1000
        # Hand-edited documents must drop the integrity stamp (the
        # checksummed reader would otherwise — correctly — reject them).
        baseline.pop("__persist__", None)
        inflated = tmp_path / "inflated.json"
        inflated.write_text(json.dumps(baseline))
        assert run_bench_cli(
            tmp_path, "--label", "gate", "--compare", str(inflated)
        ) == 1
        assert "regression" in capsys.readouterr().out

    def test_cli_gate_passes_against_own_output(self, tmp_path):
        assert run_bench_cli(tmp_path, "--label", "base") == 0
        assert run_bench_cli(
            tmp_path, "--label", "again",
            "--compare", str(tmp_path / "BENCH_base.json"),
            "--max-regression", "0.95",
        ) == 0
