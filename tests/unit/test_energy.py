"""Unit tests for the energy/area accounting (repro.core.energy)."""

import pytest

from repro.core.energy import (
    CPU_HZ,
    TABLE2_COSTS,
    EnergyReport,
    StructureEnergy,
    energy_report,
)

from tests.conftest import make_system


class TestTable2Constants:
    def test_all_structures_present(self):
        assert set(TABLE2_COSTS) == {"prtc", "pctc", "hpt", "filter"}

    @pytest.mark.parametrize(
        "name,area,leak,read,write",
        [
            ("prtc", 54.9e-3, 11.4, 14.8, 14.4),
            ("pctc", 36.8e-3, 11.4, 14.7, 16.7),
            ("hpt", 23.7e-3, 9.1, 1.8, 2.6),
            ("filter", 7.7e-3, 2.3, 1.4, 2.7),
        ],
    )
    def test_values_match_paper(self, name, area, leak, read, write):
        costs = TABLE2_COSTS[name]
        assert costs.area_mm2 == pytest.approx(area)
        assert costs.leakage_mw == pytest.approx(leak)
        assert costs.read_pj == pytest.approx(read)
        assert costs.write_pj == pytest.approx(write)

    def test_total_area_matches_paper_sum(self):
        total = sum(c.area_mm2 for c in TABLE2_COSTS.values())
        assert total == pytest.approx(123.1e-3, rel=0.01)


class TestEnergyMath:
    def test_dynamic_energy_formula(self):
        report = EnergyReport(
            structures={
                "prtc": StructureEnergy("prtc", reads=100, writes=10,
                                        dynamic_pj=100 * 14.8 + 10 * 14.4,
                                        leakage_uj=0.0)
            },
            elapsed_cycles=0,
        )
        assert report.total_dynamic_pj == pytest.approx(1624.0)

    def test_leakage_scales_with_time(self):
        system = make_system("pageseer", "milcx4")
        system.run_ops(300)
        short = energy_report(system.hmc, 1_000_000)
        long = energy_report(system.hmc, 2_000_000)
        assert long.total_leakage_uj == pytest.approx(2 * short.total_leakage_uj)

    def test_leakage_unit_conversion(self):
        # 11.4 mW for one second = 11.4 mJ = 11400 uJ.
        system = make_system("pageseer", "milcx4")
        report = energy_report(system.hmc, CPU_HZ)  # one second
        prtc = report.structures["prtc"]
        assert prtc.leakage_uj == pytest.approx(11.4 * 1000)


class TestReportFromRun:
    def test_counts_flow_from_structures(self):
        system = make_system("pageseer", "milcx4")
        system.run_ops(500)
        report = energy_report(system.hmc, max(c.clock for c in system.cores))
        prtc = report.structures["prtc"]
        assert prtc.reads == system.hmc.prtc.hits + system.hmc.prtc.misses
        assert prtc.reads > 0
        assert report.total_dynamic_pj > 0

    def test_render_contains_all_structures(self):
        system = make_system("pageseer", "milcx4")
        system.run_ops(200)
        text = energy_report(system.hmc, 10_000).render()
        for name in TABLE2_COSTS:
            assert name in text
        assert "TOTAL" in text
