"""RL005: hot-path hygiene findings (and their absence on clean code)."""

from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.rules.hot_path import HotPathRule


def findings_for(tmp_path: Path, text: str, relpath: str = "sim/core.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    report = lint_paths(["."], root=tmp_path, rules=[HotPathRule()])
    return report.findings


DATACLASS_IN_HOT = """\
from dataclasses import dataclass

@dataclass
class Record:
    value: int

# repro-hot
def step(value):
    return Record(value)
"""


CROSS_FILE_DATACLASS = """\
from other import Record

# repro-hot
def step(value):
    return Record(value)
"""


class TestDataclassConstruction:
    def test_dataclass_in_hot_function_flagged(self, tmp_path):
        (finding,) = findings_for(tmp_path, DATACLASS_IN_HOT)
        assert finding.rule == "RL005"
        assert "Record" in finding.message
        assert "__slots__" in finding.message

    def test_dataclass_defined_in_another_file_flagged(self, tmp_path):
        (tmp_path / "other.py").write_text(
            "from dataclasses import dataclass\n"
            "@dataclass\nclass Record:\n    value: int\n"
        )
        (finding,) = findings_for(tmp_path, CROSS_FILE_DATACLASS)
        assert "other.py" in finding.message

    def test_unmarked_function_is_not_checked(self, tmp_path):
        text = DATACLASS_IN_HOT.replace("# repro-hot\n", "")
        assert findings_for(tmp_path, text) == []

    def test_slots_class_in_hot_function_is_clean(self, tmp_path):
        text = (
            "class Record:\n"
            "    __slots__ = ('value',)\n"
            "    def __init__(self, value):\n"
            "        self.value = value\n"
            "\n"
            "# repro-hot\n"
            "def step(value):\n"
            "    return Record(value)\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_marker_above_decorator_is_recognised(self, tmp_path):
        text = (
            "from dataclasses import dataclass\n"
            "import functools\n"
            "@dataclass\n"
            "class Record:\n"
            "    value: int\n"
            "\n"
            "# repro-hot\n"
            "@functools.lru_cache()\n"
            "def step(value):\n"
            "    return Record(value)\n"
        )
        assert findings_for(tmp_path, text)


class TestDynamicStatsKeys:
    def test_fstring_key_in_hot_function_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(stats, level):\n"
            "    stats.add(f'cache/l{level}_hits')\n"
        )
        (finding,) = findings_for(tmp_path, text)
        assert "dynamically-built stats key" in finding.message

    def test_concatenated_key_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(stats, name):\n"
            "    stats.observe('walk/' + name, 1.0)\n"
        )
        assert findings_for(tmp_path, text)

    def test_format_key_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(stats, name):\n"
            "    stats.add('walk/{}'.format(name))\n"
        )
        assert findings_for(tmp_path, text)

    def test_literal_key_is_clean(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(stats):\n"
            "    stats.add('cache/l1_hits')\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_literal_table_key_is_clean(self, tmp_path):
        text = (
            "_KEYS = ('cache/l1_hits', 'cache/l2_hits')\n"
            "# repro-hot\n"
            "def step(stats, level):\n"
            "    stats.add(_KEYS[level])\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_fstring_outside_hot_function_not_flagged_by_rl005(self, tmp_path):
        text = (
            "def summary(stats, level):\n"
            "    stats.add(f'cache/l{level}_hits')\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_non_stats_receiver_is_clean(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(queue, name):\n"
            "    queue.add(f'job/{name}')\n"
        )
        assert findings_for(tmp_path, text) == []


class TestMarkerScope:
    def test_marker_applies_outside_sim_packages(self, tmp_path):
        assert findings_for(
            tmp_path, DATACLASS_IN_HOT, relpath="common/timeline.py"
        )

    def test_pragma_suppression_works(self, tmp_path):
        text = DATACLASS_IN_HOT.replace(
            "    return Record(value)",
            "    return Record(value)  # repro-lint: disable=RL005",
        )
        assert findings_for(tmp_path, text) == []
