"""RL005: hot-path hygiene findings (and their absence on clean code)."""

from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.rules.hot_path import HotPathRule


def findings_for(tmp_path: Path, text: str, relpath: str = "sim/core.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    report = lint_paths(["."], root=tmp_path, rules=[HotPathRule()])
    return report.findings


DATACLASS_IN_HOT = """\
from dataclasses import dataclass

@dataclass
class Record:
    value: int

# repro-hot
def step(value):
    return Record(value)
"""


CROSS_FILE_DATACLASS = """\
from other import Record

# repro-hot
def step(value):
    return Record(value)
"""


class TestDataclassConstruction:
    def test_dataclass_in_hot_function_flagged(self, tmp_path):
        (finding,) = findings_for(tmp_path, DATACLASS_IN_HOT)
        assert finding.rule == "RL005"
        assert "Record" in finding.message
        assert "__slots__" in finding.message

    def test_dataclass_defined_in_another_file_flagged(self, tmp_path):
        (tmp_path / "other.py").write_text(
            "from dataclasses import dataclass\n"
            "@dataclass\nclass Record:\n    value: int\n"
        )
        (finding,) = findings_for(tmp_path, CROSS_FILE_DATACLASS)
        assert "other.py" in finding.message

    def test_unmarked_function_is_not_checked(self, tmp_path):
        text = DATACLASS_IN_HOT.replace("# repro-hot\n", "")
        assert findings_for(tmp_path, text) == []

    def test_slots_class_in_hot_function_is_clean(self, tmp_path):
        text = (
            "class Record:\n"
            "    __slots__ = ('value',)\n"
            "    def __init__(self, value):\n"
            "        self.value = value\n"
            "\n"
            "# repro-hot\n"
            "def step(value):\n"
            "    return Record(value)\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_marker_above_decorator_is_recognised(self, tmp_path):
        text = (
            "from dataclasses import dataclass\n"
            "import functools\n"
            "@dataclass\n"
            "class Record:\n"
            "    value: int\n"
            "\n"
            "# repro-hot\n"
            "@functools.lru_cache()\n"
            "def step(value):\n"
            "    return Record(value)\n"
        )
        assert findings_for(tmp_path, text)


class TestDynamicStatsKeys:
    def test_fstring_key_in_hot_function_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(stats, level):\n"
            "    stats.add(f'cache/l{level}_hits')\n"
        )
        (finding,) = findings_for(tmp_path, text)
        assert "dynamically-built stats key" in finding.message

    def test_concatenated_key_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(stats, name):\n"
            "    stats.observe('walk/' + name, 1.0)\n"
        )
        assert findings_for(tmp_path, text)

    def test_format_key_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(stats, name):\n"
            "    stats.add('walk/{}'.format(name))\n"
        )
        assert findings_for(tmp_path, text)

    def test_literal_key_is_clean(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(stats):\n"
            "    stats.add('cache/l1_hits')\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_literal_table_key_is_clean(self, tmp_path):
        text = (
            "_KEYS = ('cache/l1_hits', 'cache/l2_hits')\n"
            "# repro-hot\n"
            "def step(stats, level):\n"
            "    stats.add(_KEYS[level])\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_fstring_outside_hot_function_not_flagged_by_rl005(self, tmp_path):
        text = (
            "def summary(stats, level):\n"
            "    stats.add(f'cache/l{level}_hits')\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_non_stats_receiver_is_clean(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def step(queue, name):\n"
            "    queue.add(f'job/{name}')\n"
        )
        assert findings_for(tmp_path, text) == []


class TestMarkerScope:
    def test_marker_applies_outside_sim_packages(self, tmp_path):
        assert findings_for(
            tmp_path, DATACLASS_IN_HOT, relpath="common/timeline.py"
        )

    def test_pragma_suppression_works(self, tmp_path):
        text = DATACLASS_IN_HOT.replace(
            "    return Record(value)",
            "    return Record(value)  # repro-lint: disable=RL005",
        )
        assert findings_for(tmp_path, text) == []


class TestNumpyLoops:
    """PR-6: per-element Python loops over numpy arrays in batch kernels."""

    def test_loop_over_numpy_local_flagged(self, tmp_path):
        text = (
            "import numpy as np\n"
            "# repro-hot\n"
            "def kernel(n):\n"
            "    ends = np.zeros(n, dtype=np.int64)\n"
            "    total = 0\n"
            "    for end in ends:\n"
            "        total += int(end)\n"
            "    return total\n"
        )
        (finding,) = findings_for(tmp_path, text)
        assert "per-element Python loop over numpy array 'ends'" in finding.message
        assert "kernel()" in finding.message

    def test_range_len_over_numpy_local_flagged(self, tmp_path):
        text = (
            "import numpy as np\n"
            "# repro-hot\n"
            "def kernel(n):\n"
            "    ends = np.zeros(n)\n"
            "    for i in range(len(ends)):\n"
            "        ends[i] += i\n"
        )
        assert findings_for(tmp_path, text)

    def test_enumerate_and_tolist_flagged(self, tmp_path):
        text = (
            "import numpy as np\n"
            "# repro-hot\n"
            "def kernel(n):\n"
            "    ends = np.arange(n)\n"
            "    for i, end in enumerate(ends):\n"
            "        pass\n"
            "    for end in ends.tolist():\n"
            "        pass\n"
        )
        assert len(findings_for(tmp_path, text)) == 2

    def test_guarded_import_alias_recognised(self, tmp_path):
        text = (
            "try:\n"
            "    import numpy as _np\n"
            "except ImportError:\n"
            "    _np = None\n"
            "# repro-hot\n"
            "def kernel(values):\n"
            "    arr = _np.asarray(values)\n"
            "    for value in arr:\n"
            "        pass\n"
        )
        assert findings_for(tmp_path, text)

    def test_numpy_attribute_flagged_cross_file(self, tmp_path):
        """An attribute assigned from numpy in one file flags a loop over
        that attribute in a hot function in another file."""
        (tmp_path / "soa.py").write_text(
            "import numpy as np\n"
            "class Soa:\n"
            "    def __init__(self, count):\n"
            "        self.busy_until = np.zeros(count)\n"
        )
        text = (
            "# repro-hot\n"
            "def drain(soa):\n"
            "    for t in soa.busy_until:\n"
            "        pass\n"
        )
        (finding,) = findings_for(tmp_path, text)
        assert ".busy_until" in finding.message

    def test_loop_over_plain_list_is_clean(self, tmp_path):
        text = (
            "import numpy as np\n"
            "# repro-hot\n"
            "def kernel(n):\n"
            "    demands = [0] * n\n"
            "    for demand in demands:\n"
            "        pass\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_vectorized_kernel_is_clean(self, tmp_path):
        text = (
            "import numpy as np\n"
            "# repro-hot\n"
            "def kernel(indices, now, duration):\n"
            "    order = np.argsort(indices, kind='stable')\n"
            "    ends = now + duration * (1 + np.arange(len(indices)))\n"
            "    return ends[order]\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_loop_in_unmarked_function_is_clean(self, tmp_path):
        text = (
            "import numpy as np\n"
            "def cold(n):\n"
            "    ends = np.zeros(n)\n"
            "    for end in ends:\n"
            "        pass\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_same_name_in_other_function_does_not_poison(self, tmp_path):
        """Array names are function-scoped: a numpy 'ends' in one function
        must not flag a plain-list 'ends' in another hot function."""
        text = (
            "import numpy as np\n"
            "def build(n):\n"
            "    ends = np.zeros(n)\n"
            "    return ends\n"
            "# repro-hot\n"
            "def kernel(n):\n"
            "    ends = [0] * n\n"
            "    for end in ends:\n"
            "        pass\n"
        )
        assert findings_for(tmp_path, text) == []


class TestChunkColumnLoops:
    """PR-9: per-element Python loops over stream-chunk columns."""

    def test_loop_over_chunk_column_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def drain(chunk):\n"
            "    for vaddr in chunk.vaddrs:\n"
            "        pass\n"
        )
        (finding,) = findings_for(tmp_path, text)
        assert "stream-chunk column '.vaddrs'" in finding.message
        assert "drain()" in finding.message

    def test_zip_of_columns_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def drain(chunk):\n"
            "    for vaddr, write in zip(chunk.vaddrs, chunk.writes):\n"
            "        pass\n"
        )
        assert findings_for(tmp_path, text)

    def test_range_len_and_enumerate_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def drain(chunk):\n"
            "    for i in range(len(chunk.instr)):\n"
            "        pass\n"
            "    for i, w in enumerate(chunk.writes):\n"
            "        pass\n"
        )
        assert len(findings_for(tmp_path, text)) == 2

    def test_local_alias_of_column_flagged(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def drain(chunk):\n"
            "    vaddrs = chunk.vaddrs\n"
            "    for vaddr in vaddrs:\n"
            "        pass\n"
        )
        (finding,) = findings_for(tmp_path, text)
        assert "'vaddrs'" in finding.message

    def test_loop_in_unmarked_function_is_clean(self, tmp_path):
        text = (
            "def cold(chunk):\n"
            "    for vaddr in chunk.vaddrs:\n"
            "        pass\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_indexed_escape_is_clean(self, tmp_path):
        """Scalar indexing of single escapes is the sanctioned pattern."""
        text = (
            "# repro-hot\n"
            "def drain(chunk, i):\n"
            "    return chunk.vaddrs[i], chunk.writes[i]\n"
        )
        assert findings_for(tmp_path, text) == []

    def test_unrelated_attribute_loop_is_clean(self, tmp_path):
        text = (
            "# repro-hot\n"
            "def drain(queue):\n"
            "    for item in queue.pending:\n"
            "        pass\n"
        )
        assert findings_for(tmp_path, text) == []
