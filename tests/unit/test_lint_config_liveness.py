"""RL003: dead config knobs and undeclared-field reads."""

from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.rules.config_liveness import ConfigLivenessRule

CONFIG = """\
from dataclasses import dataclass


@dataclass
class PageSeerConfig:
    hot_threshold: int = 18
    unused_knob: int = 5


@dataclass
class SystemConfig:
    pageseer: "PageSeerConfig" = None

    @property
    def summary(self):
        return self.pageseer
"""


def run(tmp_path: Path, files: dict):
    for relpath, text in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return lint_paths(["."], root=tmp_path, rules=[ConfigLivenessRule()])


def messages(report):
    return [f.message for f in report.findings]


class TestDeadKnobs:
    def test_never_read_field_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "common/config.py": CONFIG,
                "sim/model.py": "def f(config):\n    return config.pageseer.hot_threshold\n",
            },
        )
        flagged = [m for m in messages(report) if "dead config knob" in m]
        assert ["PageSeerConfig.unused_knob" in m for m in flagged] == [True]

    def test_read_anywhere_keeps_knob_alive(self, tmp_path):
        report = run(
            tmp_path,
            {
                "common/config.py": CONFIG,
                "sim/model.py": (
                    "def f(config):\n"
                    "    return config.pageseer.hot_threshold + config.pageseer.unused_knob\n"
                ),
            },
        )
        assert not any("dead config knob" in m for m in messages(report))

    def test_properties_and_methods_are_not_knobs(self, tmp_path):
        report = run(
            tmp_path,
            {
                "common/config.py": CONFIG,
                "sim/model.py": (
                    "def f(config):\n"
                    "    return config.pageseer.hot_threshold, config.pageseer.unused_knob\n"
                ),
            },
        )
        assert not any("summary" in m for m in messages(report))


class TestUndeclaredReads:
    def test_typo_field_read_flagged(self, tmp_path):
        report = run(
            tmp_path,
            {
                "common/config.py": CONFIG,
                "sim/model.py": (
                    "def f(config):\n"
                    "    _ = config.pageseer.unused_knob\n"
                    "    return config.pageseer.hot_treshold\n"
                ),
            },
        )
        flagged = [m for m in messages(report) if "undeclared field" in m]
        assert flagged and "PageSeerConfig.hot_treshold" in flagged[0]

    def test_annotated_parameter_is_typed_receiver(self, tmp_path):
        report = run(
            tmp_path,
            {
                "common/config.py": CONFIG,
                "sim/model.py": (
                    "from common.config import PageSeerConfig\n"
                    "def f(ps: PageSeerConfig):\n"
                    "    _ = ps.unused_knob\n"
                    "    return ps.missing_field\n"
                ),
            },
        )
        assert any("PageSeerConfig.missing_field" in m for m in messages(report))

    def test_self_attribute_alias_chain_resolves(self, tmp_path):
        report = run(
            tmp_path,
            {
                "common/config.py": CONFIG,
                "sim/model.py": (
                    "class Driver:\n"
                    "    def __init__(self, config):\n"
                    "        self.ps = config.pageseer\n"
                    "    def tick(self):\n"
                    "        _ = self.ps.unused_knob\n"
                    "        return self.ps.not_a_field\n"
                ),
            },
        )
        assert any("PageSeerConfig.not_a_field" in m for m in messages(report))

    def test_declared_reads_are_clean(self, tmp_path):
        report = run(
            tmp_path,
            {
                "common/config.py": CONFIG,
                "sim/model.py": (
                    "def f(config):\n"
                    "    _ = config.pageseer.unused_knob\n"
                    "    return config.pageseer.hot_threshold, config.summary\n"
                ),
            },
        )
        assert not any("undeclared field" in m for m in messages(report))

    def test_untyped_receivers_are_ignored(self, tmp_path):
        report = run(
            tmp_path,
            {
                "common/config.py": CONFIG,
                "sim/model.py": (
                    "def f(config, other):\n"
                    "    _ = config.pageseer.unused_knob\n"
                    "    return other.anything_at_all\n"
                ),
            },
        )
        assert not any("anything_at_all" in m for m in messages(report))


class TestRepoWithoutConfigFile:
    def test_no_config_file_means_no_findings(self, tmp_path):
        report = run(
            tmp_path,
            {"sim/model.py": "def f(config):\n    return config.whatever\n"},
        )
        assert report.findings == []
