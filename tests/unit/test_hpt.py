"""Unit tests for the Hot Page Tables (repro.core.hpt)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.hpt import HotPageTable

INTERVAL = 1000


def make_hpt(entries=4, threshold=6):
    return HotPageTable(entries, 63, INTERVAL, swap_threshold=threshold)


class TestCounting:
    def test_first_miss_inserts(self):
        hpt = make_hpt()
        hpt.record_miss(0, 42)
        assert hpt.count_of(42) == 1
        assert hpt.is_hot(42)

    def test_counts_accumulate(self):
        hpt = make_hpt()
        for _ in range(4):
            hpt.record_miss(0, 42)
        assert hpt.count_of(42) == 4

    def test_saturates_at_counter_max(self):
        hpt = make_hpt(threshold=None)
        for _ in range(100):
            hpt.record_miss(0, 42)
        assert hpt.count_of(42) == 63

    def test_threshold_fires_exactly_once(self):
        hpt = make_hpt(threshold=3)
        fired = [hpt.record_miss(0, 42) for _ in range(5)]
        assert fired == [False, False, True, False, False]

    def test_no_threshold_table_never_fires(self):
        hpt = HotPageTable(4, 63, INTERVAL, swap_threshold=None)
        assert not any(hpt.record_miss(0, 42) for _ in range(20))


class TestDecay:
    def test_halving_after_interval(self):
        hpt = make_hpt()
        for _ in range(8):
            hpt.record_miss(0, 42)
        hpt.advance_time(INTERVAL)
        assert hpt.count_of(42) == 4

    def test_multiple_intervals(self):
        hpt = make_hpt()
        for _ in range(8):
            hpt.record_miss(0, 42)
        hpt.advance_time(3 * INTERVAL)
        assert hpt.count_of(42) == 1

    def test_zero_counter_removed(self):
        hpt = make_hpt()
        hpt.record_miss(0, 42)
        hpt.advance_time(INTERVAL)
        assert not hpt.is_hot(42)

    def test_decay_applied_lazily_on_record(self):
        hpt = make_hpt()
        for _ in range(8):
            hpt.record_miss(0, 42)
        hpt.record_miss(INTERVAL, 43)
        assert hpt.count_of(42) == 4

    def test_no_decay_before_interval(self):
        hpt = make_hpt()
        hpt.record_miss(0, 42)
        hpt.advance_time(INTERVAL - 1)
        assert hpt.count_of(42) == 1


class TestCapacity:
    def test_coldest_evicted(self):
        hpt = make_hpt(entries=2, threshold=None)
        for _ in range(5):
            hpt.record_miss(0, 1)
        hpt.record_miss(0, 2)
        hpt.record_miss(0, 3)  # evicts page 2 (count 1 < 5)
        assert hpt.is_hot(1)
        assert not hpt.is_hot(2)
        assert hpt.is_hot(3)

    def test_requires_capacity(self):
        with pytest.raises(ConfigError):
            HotPageTable(0, 63, INTERVAL)

    def test_occupancy(self):
        hpt = make_hpt()
        hpt.record_miss(0, 1)
        hpt.record_miss(0, 2)
        assert hpt.occupancy == 2
        assert set(hpt.pages()) == {1, 2}


class TestRemove:
    def test_remove_present(self):
        hpt = make_hpt()
        hpt.record_miss(0, 42)
        hpt.remove(42)
        assert not hpt.is_hot(42)

    def test_remove_absent_noop(self):
        hpt = make_hpt()
        hpt.remove(42)
