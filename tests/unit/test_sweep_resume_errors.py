"""``sweep --resume`` manifest validation and heartbeat-path dedup.

Satellites of the sweep-service PR: an incompatible manifest must fail
with one clear, versioned error (distinct exit code + remediation hint)
instead of an unpickling traceback, and two sweeps that differ only in
seed/sizing must never share per-request checkpoint or heartbeat
directories.
"""

import json
import pickle

import pytest

from repro.cli import EXIT_MANIFEST_VERSION, main
from repro.common.errors import CheckpointError, ManifestVersionError
from repro.experiments.jobcore import request_dirname, sizing_signature
from repro.experiments.runner import ExperimentRunner
from repro.experiments.supervisor import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    SweepSupervisor,
)


def _supervisor(tmp_path):
    runner = ExperimentRunner(
        scale=1024, measure_ops=400, warmup_ops=400, seed=0,
        worker_check_level="off", cache_dir=tmp_path / "cache",
    )
    return SweepSupervisor(runner, tmp_path / "sweep")


def _write_manifest(tmp_path, data, binary=False):
    root = tmp_path / "sweep"
    root.mkdir(parents=True, exist_ok=True)
    path = root / MANIFEST_NAME
    if binary:
        path.write_bytes(data)
    else:
        path.write_text(json.dumps(data))
    return root


class TestManifestValidation:
    def test_pickled_manifest_raises_versioned_error(self, tmp_path):
        _write_manifest(
            tmp_path, pickle.dumps({"requests": []}), binary=True
        )
        with pytest.raises(ManifestVersionError, match="pickled") as excinfo:
            _supervisor(tmp_path).read_manifest()
        assert excinfo.value.hint is not None
        assert "checkpoint-root" in excinfo.value.hint

    def test_version_skew_raises_versioned_error(self, tmp_path):
        _write_manifest(tmp_path, {
            "manifest_version": MANIFEST_VERSION + 1,
            "sizing": {}, "requests": [],
        })
        with pytest.raises(ManifestVersionError, match="unsupported"):
            _supervisor(tmp_path).read_manifest()

    def test_missing_sizing_fields_raise_versioned_error(self, tmp_path):
        _write_manifest(tmp_path, {
            "manifest_version": MANIFEST_VERSION,
            "sizing": {"scale": 1024},
            "requests": [],
        })
        with pytest.raises(ManifestVersionError, match="missing sizing"):
            _supervisor(tmp_path).read_manifest()

    def test_missing_request_list_raises_versioned_error(self, tmp_path):
        _write_manifest(tmp_path, {
            "manifest_version": MANIFEST_VERSION,
            "sizing": {
                "scale": 1024, "measure_ops": 400, "warmup_ops": 400,
                "seed": 0, "check_level": "off",
            },
        })
        with pytest.raises(ManifestVersionError, match="request list"):
            _supervisor(tmp_path).read_manifest()

    def test_absent_manifest_is_a_plain_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            _supervisor(tmp_path).read_manifest()

    def test_cli_resume_exits_with_distinct_code_and_hint(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        root = _write_manifest(
            tmp_path, pickle.dumps({"requests": []}), binary=True
        )
        code = main([
            "sweep", "--resume", "--checkpoint-root", str(root), "--quiet",
        ])
        captured = capsys.readouterr()
        assert code == EXIT_MANIFEST_VERSION
        assert "pickled" in captured.err
        assert "hint:" in captured.err
        assert "Traceback" not in captured.err


class TestHeartbeatPathDedup:
    def test_signature_distinguishes_seed_and_sizing(self):
        base = (1024, 400, 400, 0, "off")
        other_seed = (1024, 400, 400, 1, "off")
        other_scale = (512, 400, 400, 0, "off")
        assert sizing_signature(base, None) != sizing_signature(other_seed, None)
        assert sizing_signature(base, None) != sizing_signature(other_scale, None)
        assert sizing_signature(base, None) == sizing_signature(base, None)

    def test_request_dirname_carries_the_signature(self):
        request = ("pageseer", "lbmx4", "default")
        named = request_dirname(request, "abcd1234")
        assert named == "pageseer_lbmx4_default_abcd1234"
        assert request_dirname(request) == "pageseer_lbmx4_default"

    def test_same_config_different_seeds_use_disjoint_directories(self, tmp_path):
        """Two supervised sweeps differing only in seed share a root but
        must checkpoint/heartbeat into different request directories."""
        request = ("pageseer", "lbmx4", "default")
        root = tmp_path / "sweep"
        for seed in (0, 1):
            runner = ExperimentRunner(
                scale=1024, measure_ops=400, warmup_ops=400, seed=seed,
                worker_check_level="off", cache_dir=tmp_path / f"cache{seed}",
            )
            supervisor = SweepSupervisor(
                runner, root,
                checkpoint_every=300, heartbeat_seconds=0.1,
                stall_timeout=5.0, poll_seconds=0.05,
            )
            supervisor.run([request], jobs=1)
        dirs = sorted(p.name for p in (root / "requests").iterdir())
        assert len(dirs) == 2, dirs
        assert all(name.startswith("pageseer_lbmx4_default_") for name in dirs)
        assert dirs[0] != dirs[1]
