"""Unit tests for address arithmetic (repro.common.addr)."""

import pytest

from repro.common import addr


class TestConstants:
    def test_lines_per_page(self):
        assert addr.LINES_PER_PAGE == 64

    def test_page_is_4k(self):
        assert addr.PAGE_BYTES == 4096

    def test_line_is_64b(self):
        assert addr.CACHE_LINE_BYTES == 64

    def test_va_split_covers_48_bits(self):
        assert 4 * addr.LEVEL_BITS + 12 == addr.VA_BITS


class TestLineMath:
    def test_line_of_zero(self):
        assert addr.line_of(0) == 0

    def test_line_of_boundary(self):
        assert addr.line_of(63) == 0
        assert addr.line_of(64) == 1

    def test_line_base(self):
        assert addr.line_base(0x12345) == 0x12340

    def test_address_of_line_roundtrip(self):
        for line in (0, 1, 7, 123456):
            assert addr.line_of(addr.address_of_line(line)) == line

    def test_line_in_page_range(self):
        assert addr.line_in_page(0) == 0
        assert addr.line_in_page(4095) == 63
        assert addr.line_in_page(4096) == 0
        assert addr.line_in_page(4096 + 128) == 2


class TestPageMath:
    def test_page_of(self):
        assert addr.page_of(0) == 0
        assert addr.page_of(4095) == 0
        assert addr.page_of(4096) == 1

    def test_page_base(self):
        assert addr.page_base(0x1234) == 0x1000

    def test_page_offset(self):
        assert addr.page_offset(0x1234) == 0x234

    def test_address_of_page_roundtrip(self):
        for page in (0, 1, 99, 2**20):
            assert addr.page_of(addr.address_of_page(page)) == page


class TestVirtualAddressSplit:
    def test_zero(self):
        parts = addr.split_virtual_address(0)
        assert parts == (0, 0, 0, 0, 0)

    def test_offset_only(self):
        parts = addr.split_virtual_address(0xABC)
        assert parts.offset == 0xABC
        assert parts.pte_index == 0

    def test_pte_index(self):
        parts = addr.split_virtual_address(5 << 12)
        assert parts.pte_index == 5

    def test_pmd_index(self):
        parts = addr.split_virtual_address(3 << (12 + 9))
        assert parts.pmd_index == 3
        assert parts.pte_index == 0

    def test_pud_index(self):
        parts = addr.split_virtual_address(7 << (12 + 18))
        assert parts.pud_index == 7

    def test_pgd_index(self):
        parts = addr.split_virtual_address(9 << (12 + 27))
        assert parts.pgd_index == 9

    def test_indices_bounded(self):
        parts = addr.split_virtual_address((1 << 48) - 1)
        for index in parts[:4]:
            assert 0 <= index < 512
        assert parts.offset == 4095

    def test_high_bits_ignored(self):
        low = addr.split_virtual_address(0x1234_5678_9ABC)
        high = addr.split_virtual_address(0x1234_5678_9ABC | (0xFFFF << 48))
        assert low == high

    def test_join_is_inverse(self):
        for va in (0, 0x1000, 0xDEADBEEF000, (1 << 48) - 1, 0x7FFF_FFFF_F123):
            parts = addr.split_virtual_address(va)
            assert addr.join_virtual_address(parts) == va & ((1 << 48) - 1)
