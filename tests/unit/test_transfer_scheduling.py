"""Unit tests for the row-group transfer scheduler (device.transfer_page).

Page transfers are scheduled row-group-at-a-time for speed; these tests
pin the scheduler to the behaviour of the per-line path it replaced.
"""

import pytest

from repro.common.config import dram_timing_table1, nvm_timing_table1
from repro.common.stats import StatsRegistry
from repro.mem.device import MemoryDevice


def twin_devices(nvm=False):
    config = nvm_timing_table1(4 * 2**20) if nvm else dram_timing_table1(4 * 2**20)
    return (
        MemoryDevice(config, StatsRegistry()),
        MemoryDevice(config, StatsRegistry()),
    )


class TestEquivalence:
    @pytest.mark.parametrize("nvm", [False, True])
    @pytest.mark.parametrize("first,count", [(0, 64), (7, 64), (3, 17), (0, 1)])
    def test_same_lines_moved(self, nvm, first, count):
        grouped, per_line = twin_devices(nvm)
        grouped.transfer_page(0, first, count, is_write=False)
        for index in range(count):
            per_line.access(0, first + index, False)
        assert grouped.reads == per_line.reads == count

    @pytest.mark.parametrize("nvm", [False, True])
    def test_same_rows_opened(self, nvm):
        grouped, per_line = twin_devices(nvm)
        grouped.transfer_page(0, 0, 64, is_write=False)
        for index in range(64):
            per_line.access(0, index, False)
        assert grouped._open_rows == per_line._open_rows

    @pytest.mark.parametrize("nvm", [False, True])
    def test_grouped_not_slower_than_per_line(self, nvm):
        """Group scheduling pipelines bursts: never slower than per-line."""
        grouped, per_line = twin_devices(nvm)
        grouped_finish = grouped.transfer_page(0, 0, 64, is_write=False)
        per_line_finish = 0
        for index in range(64):
            result = per_line.access(0, index, False)
            per_line_finish = max(per_line_finish, result.finish)
        assert grouped_finish <= per_line_finish

    def test_bus_bound_lower_bound(self):
        """A transfer can never beat the channel data-bus time."""
        device, _ = twin_devices()
        finish = device.transfer_page(0, 0, 64, is_write=False)
        channels = device.config.channels
        per_channel = 64 // channels
        assert finish >= per_channel * device.config.line_transfer_cycles

    def test_write_recovery_owed_after_transfer(self):
        """A write transfer leaves the rows dirty: the next read pays t_WR."""
        device, _ = twin_devices(nvm=True)
        device.transfer_page(0, 0, 64, is_write=True)
        result = device.access(100_000, 0, False)
        base_hit = device.config.t_cas * 2 + device.config.line_transfer_cycles
        assert result.finish - result.start == base_hit + device.config.write_recovery_cycles()


class TestBulkPriorityInTransfers:
    def test_bulk_transfer_yields_to_demand(self):
        device, _ = twin_devices()
        demand = device.access(0, 0, False)
        finish = device.transfer_page(0, 0, 64, is_write=False, bulk=True)
        assert finish >= demand.finish

    def test_demand_transfer_priority(self):
        """Demand-priority transfers preempt queued bulk work."""
        device, _ = twin_devices()
        device.transfer_page(0, 0, 64, is_write=False, bulk=True)
        finish = device.transfer_page(0, 64, 64, is_write=False, bulk=False)
        bulk_backlog = device.transfer_page(0, 128, 64, is_write=False, bulk=True)
        assert finish <= bulk_backlog
