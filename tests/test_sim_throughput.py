"""Hot-path guard: the sanitizer at level "off" must cost nothing.

The zero-overhead contract is structural, not statistical: at the default
``off`` level no CheckManager is built and ``handle_request`` is the
plain class method — no per-access Python callback exists to pay for.
The timing bound is deliberately generous (CI machines vary wildly); the
structural assertions are the real guard.
"""

import time

from repro.common.config import CheckConfig
from repro.sim.system import build_system
from repro.workloads import workload_by_name


def make(check=None):
    return build_system(
        "pageseer", workload_by_name("lbmx4"), scale=1024, check=check
    )


class TestZeroOverheadOff:
    def test_no_checker_constructed(self):
        system = make()
        assert system.checker is None

    def test_handle_request_is_unwrapped(self):
        """No instance-level wrapper: the hot path dispatches straight to
        the class method, exactly as before the sanitizer existed."""
        system = make()
        assert "handle_request" not in vars(system.hmc)
        assert system.hmc.handle_request.__func__ is type(
            system.hmc
        ).handle_request

    def test_enabled_level_does_wrap(self):
        """Sanity check of the guard itself: when checking is on, the
        wrapper *is* installed — so the off-level assertions above would
        catch a regression that left it installed unconditionally."""
        system = make(check=CheckConfig(level="invariants"))
        assert system.checker is not None
        assert "handle_request" in vars(system.hmc)


class TestZeroOverheadFaultsOff:
    """The same structural contract for fault injection (repro.faults)."""

    def test_no_recovery_or_injector_constructed(self):
        system = make()
        assert system.hmc.fault_recovery is None
        assert system.hmc.fault_injector is None
        assert system.hmc.memory.dram.injector is None
        assert system.hmc.memory.nvm.injector is None

    def test_mem_access_prebound_to_device_path(self):
        """With faults off, the per-line entry point is the MainMemory
        bound method itself — no per-access recovery indirection."""
        system = make()
        assert system.hmc.mem_access.__self__ is system.hmc.memory
        assert system.hmc.mem_access.__func__ is type(
            system.hmc.memory
        ).access

    def test_mem_access_prebound_to_recovery_when_faulting(self):
        from repro.common.config import FaultConfig

        system = build_system(
            "pageseer", workload_by_name("lbmx4"), scale=1024,
            faults=FaultConfig(enabled=True, transient_rate=0.01),
        )
        assert system.hmc.mem_access.__self__ is system.hmc.fault_recovery

    def test_enabled_faults_do_attach(self):
        """Sanity check of the guard: with injection on, the devices carry
        an injector and the HMC routes accesses through FaultRecovery."""
        from repro.common.config import FaultConfig

        system = build_system(
            "pageseer", workload_by_name("lbmx4"), scale=1024,
            faults=FaultConfig(enabled=True, transient_rate=0.01),
        )
        assert system.hmc.fault_recovery is not None
        assert system.hmc.memory.nvm.injector is system.hmc.fault_injector


class TestThroughputBound:
    def test_unchecked_run_stays_fast(self):
        """A small unchecked run finishes well inside a generous bound
        (~0.3 s on 2024 hardware; the bound allows a 50x slower CI box)."""
        system = make()
        start = time.perf_counter()
        system.run(400, 400)
        elapsed = time.perf_counter() - start
        assert elapsed < 15.0, f"unchecked small run took {elapsed:.1f}s"
