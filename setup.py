"""Setup shim for offline editable installs.

The execution environment has no network and no `wheel` package, so PEP
517 builds cannot run; this file lets ``pip install -e .`` fall back to
the legacy setuptools path (see pip.conf's ``no-use-pep517``).
"""

from setuptools import setup

setup()
