"""Figure 7: main-memory accesses serviced by DRAM / NVM / swap buffers.

Shape checks (paper): PageSeer sends the largest share of requests to DRAM
of the three schemes (88.5% in the paper), with a small but non-zero
swap-buffer slice (2.2%).
"""

from repro.experiments import fig7_access_breakdown
from repro.experiments.figures import arithmetic_mean

from benchmarks.conftest import record_figure


def test_fig7_access_breakdown(runner, benchmark):
    result = benchmark.pedantic(
        fig7_access_breakdown.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    averages = {
        row[1]: row for row in result.rows if row[0] == "AVERAGE"
    }
    pageseer_fast = averages["pageseer"][2] + averages["pageseer"][4]
    pom_fast = averages["pom"][2] + averages["pom"][4]
    mempod_fast = averages["mempod"][2] + averages["mempod"][4]

    # PageSeer serves the most requests from fast memory (DRAM + buffers).
    assert pageseer_fast > pom_fast
    assert pageseer_fast > mempod_fast
    # The swap-buffer slice exists but stays a minority share.
    assert 0.0 < averages["pageseer"][4] < 35.0
    # Baselines have no swap buffers.
    assert averages["pom"][4] == 0.0
    assert averages["mempod"][4] == 0.0
    # Sanity: percentages sum to 100.
    for row in averages.values():
        assert abs(row[2] + row[3] + row[4] - 100.0) < 0.1
