"""Simulator throughput microbenchmarks (not a paper figure).

These time the simulator itself — operations per second through the full
TLB/cache/HMC/memory stack — so performance regressions in the model are
visible in the benchmark history.  ``OPS`` is sized so the measured window
dominates ``build_system`` cost (construction is ~2-3 ms; 6000 ops per
core run ~50-200 ms depending on the scheme).

Alongside the timing, the determinism tests assert that back-to-back runs
of the benchmark configuration produce bit-identical stats digests — the
optimization work (heap scheduler, bound stats handles, ``__slots__``
records) must never trade reproducibility for speed.

Since PR-6 the grid covers both execution engines: ``batched`` (the
default relaxed-commuting scheduler) and ``scalar`` (the reference
in-order scheduler the differential harness compares against).  The
benchmark history therefore shows each engine's throughput separately,
and the cross-engine digest test keeps the bit-identity contract visible
right next to the numbers it justifies.
"""

import pytest

from repro.bench import stats_digest
from repro.common.config import ENGINES
from repro.sim.system import SCHEMES, build_system
from repro.workloads import workload_by_name

OPS = 6000
ALL_SCHEMES = sorted(SCHEMES)
ALL_ENGINES = list(ENGINES)


def run_slice(scheme, ops=OPS, engine="batched"):
    system = build_system(
        scheme, workload_by_name("milcx4"), scale=1024, engine=engine
    )
    system.run_ops(ops)
    return system


@pytest.mark.parametrize("engine", ALL_ENGINES)
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_simulation_throughput(benchmark, scheme, engine):
    system = benchmark.pedantic(
        run_slice, args=(scheme,), kwargs={"engine": engine},
        iterations=1, rounds=3,
    )
    total_ops = sum(core.ops_executed for core in system.cores)
    assert total_ops == OPS * len(system.cores)


@pytest.mark.parametrize("engine", ALL_ENGINES)
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_throughput_run_is_deterministic(scheme, engine):
    """Two back-to-back benchmark runs must agree bit-for-bit."""
    first = stats_digest(run_slice(scheme, ops=1000, engine=engine))
    second = stats_digest(run_slice(scheme, ops=1000, engine=engine))
    assert first == second


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_engines_agree_on_benchmark_config(scheme):
    """Both engines produce the same digest on the benchmark grid itself,
    so every pair of rows in the benchmark history is comparing equal
    work (the full equivalence proof lives in
    tests/integration/test_engine_equivalence.py)."""
    digests = {
        engine: stats_digest(run_slice(scheme, ops=1000, engine=engine))
        for engine in ALL_ENGINES
    }
    assert len(set(digests.values())) == 1, digests


def test_device_access_throughput(benchmark):
    from repro.common.config import nvm_timing_table1
    from repro.common.stats import StatsRegistry
    from repro.mem.device import MemoryDevice

    device = MemoryDevice(nvm_timing_table1(4 * 2**20), StatsRegistry())
    state = {"now": 0, "line": 0}

    def one_access():
        state["now"] += 10
        state["line"] = (state["line"] + 17) % 4096
        device.access(state["now"], state["line"], False)

    benchmark(one_access)


def test_page_walk_throughput(benchmark):
    system = build_system("pageseer", workload_by_name("lbmx4"), scale=1024)
    core = system.cores[0]
    table = core.process.page_table
    vpn_pool = 128  # bounded so physical frames are not exhausted
    for vpn in range(vpn_pool):
        table.ensure_mapped(0x400000 + vpn)
    state = {"vpn": 0, "now": 0}

    def one_walk():
        vpn = 0x400000 + (state["vpn"] % vpn_pool)
        state["vpn"] += 1
        state["now"] += 1000
        core.mmu.walker.walk(state["now"], table, vpn)

    benchmark(one_walk)
