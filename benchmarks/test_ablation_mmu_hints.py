"""Ablation: the MMU signal's contribution (PageSeer vs no-hints).

Shape checks: removing the MMU signal must never produce more
MMU-triggered swaps (trivially zero), and on TLB-miss-heavy streaming
workloads the hint should not hurt — PageSeer with hints performs at least
comparably overall, which is the paper's central mechanism claim.
"""

from repro.experiments import ablation_hints

from benchmarks.conftest import record_figure


def test_ablation_mmu_hints(runner, benchmark):
    result = benchmark.pedantic(
        ablation_hints.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    geomean = result.row_map()["GEOMEAN"][3]
    # The hint is not catastrophic in either direction, and on average
    # PageSeer-with-hints holds its ground.
    assert 0.85 < geomean < 1.6

    # On at least a few workloads the hint visibly raises the fast-memory
    # share (hints fire early enough to matter).
    gains = [
        row[4] - row[5]
        for name, row in result.row_map().items()
        if name != "GEOMEAN"
    ]
    assert max(gains) > 0.02
