"""Shared benchmark infrastructure.

Every figure bench consumes the same (scheme x workload x variant) matrix
through a session-scoped :class:`ExperimentRunner` whose results are cached
on disk (``.repro_cache``), so the expensive sweep happens once — the first
``pytest benchmarks/ --benchmark-only`` invocation — and later runs render
from the cache.

Environment knobs:

* ``REPRO_BENCH_SCALE``       system down-scaling factor (default 512)
* ``REPRO_BENCH_MEASURE_OPS`` measured ops per core (default 8000)
* ``REPRO_BENCH_WARMUP_OPS``  warm-up ops per core (default 12000)
* ``REPRO_BENCH_QUICK``       if set, restrict to a 4-workload subset
* ``REPRO_CACHE_DIR``         cache location (default .repro_cache)
"""

import os
from typing import List

import pytest

from repro.experiments import ExperimentRunner

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "512"))
BENCH_MEASURE_OPS = int(os.environ.get("REPRO_BENCH_MEASURE_OPS", "10000"))
BENCH_WARMUP_OPS = int(os.environ.get("REPRO_BENCH_WARMUP_OPS", "26000"))
QUICK_WORKLOADS = ["lbmx4", "milcx4", "mcfx8", "mix1"]

#: Rendered figures accumulated for the terminal summary.
_RENDERED: List[str] = []


def record_figure(result) -> None:
    """Register a rendered figure for the end-of-run report."""
    _RENDERED.append(result.render())


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    workloads = QUICK_WORKLOADS if os.environ.get("REPRO_BENCH_QUICK") else None
    instance = ExperimentRunner(
        scale=BENCH_SCALE,
        measure_ops=BENCH_MEASURE_OPS,
        warmup_ops=BENCH_WARMUP_OPS,
        workloads=workloads,
        verbose=True,
    )
    jobs = os.environ.get("REPRO_BENCH_PREWARM_JOBS")
    if jobs:
        # Populate the cache with a process pool before the figure benches
        # consume it serially (REPRO_BENCH_PREWARM_JOBS=0 -> cpu count).
        instance.prewarm(jobs=int(jobs) or None)
    return instance


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RENDERED:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for text in _RENDERED:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")
