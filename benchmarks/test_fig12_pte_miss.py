"""Figure 12: TLB-miss PTE requests that miss the caches.

Shape checks (paper): a modest fraction of PTE requests (14.5% average)
miss in L2/L3 and reach the HMC, and over 99% of those are then served by
the MMU Driver's 16-line PTE cache.
"""

from repro.experiments import fig12_pte_miss

from benchmarks.conftest import record_figure


def test_fig12_pte_miss(runner, benchmark):
    result = benchmark.pedantic(
        fig12_pte_miss.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    rows = result.row_map()
    average_miss = rows["AVERAGE"][2]
    average_driver_hit = rows["AVERAGE"][3]

    # A minority-but-present fraction of PTE requests reaches the HMC.
    assert 0.0 < average_miss < 100.0
    # The MMU Driver catches nearly all of them (paper: >99%).
    assert average_driver_hit > 90.0
