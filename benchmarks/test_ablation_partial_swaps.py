"""Ablation: SILC-FM-style partial swaps (the Section VI extension).

Shape checks: the extension must be roughly performance-neutral or better
on the sparse/dense representative set — it saves swap bandwidth on
sparse pages at the cost of lazy residue migrations.
"""

from repro.experiments import ablation_partial

from benchmarks.conftest import record_figure


def test_ablation_partial_swaps(runner, benchmark):
    result = benchmark.pedantic(
        ablation_partial.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    geomean = result.row_map()["GEOMEAN"][3]
    # Near-neutral on average: the extension trades bandwidth for lazy
    # migrations; neither direction should be dramatic.
    assert 0.8 < geomean < 1.3
