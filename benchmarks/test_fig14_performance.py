"""Figure 14: IPC and AMMAT normalised to MemPod — the headline result.

Shape checks (paper): PageSeer's IPC is 28% above MemPod and 19% above PoM
on average; its AMMAT is 37% and 29% lower.  MemPod never beats PageSeer
on IPC; PoM does only on a couple of phase-changing workloads.
"""

from repro.experiments import fig14_performance

from benchmarks.conftest import record_figure


def test_fig14_performance(runner, benchmark):
    result = benchmark.pedantic(
        fig14_performance.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    geomean = result.row_map()["GEOMEAN"]
    ipc_pom, ipc_pageseer = geomean[1], geomean[2]
    ammat_pom, ammat_pageseer = geomean[3], geomean[4]

    # PageSeer beats MemPod (ratios are normalised to MemPod = 1.0).
    assert ipc_pageseer > 1.0
    assert ammat_pageseer < 1.0
    # PageSeer beats PoM.
    assert ipc_pageseer > ipc_pom
    assert ammat_pageseer < ammat_pom


def test_fig14_headline_ratios(runner, benchmark):
    ratios = benchmark.pedantic(
        fig14_performance.headline_ratios, args=(runner,), iterations=1, rounds=1
    )
    # Paper: 1.28x / 1.19x IPC, 0.63x / 0.71x AMMAT.  Check the directions
    # and that the magnitudes are in a sane band around those values.
    assert 1.0 < ratios["ipc_vs_mempod"] < 3.0
    assert 1.0 < ratios["ipc_vs_pom"] < 3.0
    assert 0.2 < ratios["ammat_vs_mempod"] < 1.0
    assert 0.2 < ratios["ammat_vs_pom"] < 1.0


def test_fig14_per_workload_wins(runner, benchmark):
    """MemPod should essentially never beat PageSeer on IPC (paper: never)."""
    result = benchmark.pedantic(
        fig14_performance.compute, args=(runner,), iterations=1, rounds=1
    )
    losses = [
        row[0]
        for row in result.rows
        if row[0] != "GEOMEAN" and row[2] < 0.95
    ]
    # Allow a small number of exceptions (the paper itself has two for PoM).
    assert len(losses) <= max(2, len(result.rows) // 5)
