"""Seed-stability bench: the headline must not depend on the seed."""

from repro.experiments import stability

from benchmarks.conftest import record_figure


def test_seed_stability(runner, benchmark):
    result = benchmark.pedantic(
        stability.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    # The winner never flips: PageSeer beats MemPod under every seed.
    for row in result.rows:
        if isinstance(row[1], int):  # a per-seed row
            assert row[4] > 1.0, f"seed {row[1]} flipped the winner on {row[0]}"

    # And the ratio is reasonably tight across seeds.
    for spread in stability.ratio_spreads(result):
        assert spread < 0.35
