"""Figure 8: positive / negative / neutral accesses.

Shape checks (paper): PageSeer attains the most positive accesses of the
three schemes (81.3% average; +16 points over PoM, +13 over MemPod).
"""

from repro.experiments import fig8_swap_effectiveness

from benchmarks.conftest import record_figure


def test_fig8_swap_effectiveness(runner, benchmark):
    result = benchmark.pedantic(
        fig8_swap_effectiveness.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    averages = {row[1]: row for row in result.rows if row[0] == "AVERAGE"}
    # PageSeer turns the most accesses positive.
    assert averages["pageseer"][2] > averages["pom"][2]
    assert averages["pageseer"][2] > averages["mempod"][2]
    # Positive + negative + neutral covers everything.
    for row in averages.values():
        assert abs(row[2] + row[3] + row[4] - 100.0) < 0.1
    # Negative accesses stay a clear minority for PageSeer.
    assert averages["pageseer"][3] < averages["pageseer"][2]
