"""Section V-C: correlation-prefetching ablation (PageSeer-NoCorr).

Shape checks (paper): PageSeer and PageSeer-NoCorr deliver similar average
performance — the MMU signal alone announces most future page accesses —
with per-workload variation in both directions.
"""

from repro.experiments import ablation_nocorr

from benchmarks.conftest import record_figure


def test_ablation_nocorr(runner, benchmark):
    result = benchmark.pedantic(
        ablation_nocorr.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    geomean = result.row_map()["GEOMEAN"][3]
    # Similar performance on average (paper finds near-parity).
    assert 0.75 < geomean < 1.35

    ratios = [
        row[3] for name, row in result.row_map().items()
        if name != "GEOMEAN" and row[3] > 0
    ]
    # Correlation must not be catastrophic anywhere.
    assert min(ratios) > 0.5
    assert max(ratios) < 2.0
