"""Figure 9: prefetch-swap accuracy.

Shape checks (paper): high average accuracy (86.7%), with phase-changing
workloads (GemsFDTD-style) well below the mean.
"""

from repro.experiments import fig9_prefetch_accuracy

from benchmarks.conftest import record_figure


def test_fig9_prefetch_accuracy(runner, benchmark):
    result = benchmark.pedantic(
        fig9_prefetch_accuracy.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    rows = result.row_map()
    average = rows["AVERAGE"][3]
    assert average > 50.0  # clearly better than chance

    # Workloads that prefetch a lot on stable patterns should be accurate.
    judged = {
        name: row for name, row in rows.items()
        if name != "AVERAGE" and isinstance(row[1], (int, float)) and row[1] > 20
    }
    if judged:
        best = max(row[3] for row in judged.values())
        assert best > 70.0
