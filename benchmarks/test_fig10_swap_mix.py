"""Figure 10: share of swaps that are prefetch swaps.

Shape checks (paper): prefetch swaps form a large share of all swaps
(62.8% average) and MMU-triggered swaps outnumber prefetching-triggered
ones; the workloads split into a few-prefetch group (pointer chasers) and
a many-prefetch group (streams).
"""

from repro.experiments import fig10_swap_mix

from benchmarks.conftest import record_figure


def test_fig10_swap_mix(runner, benchmark):
    result = benchmark.pedantic(
        fig10_swap_mix.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    rows = result.row_map()
    average = rows["AVERAGE"]
    mmu_avg, pct_avg = average[2], average[3]

    # MMU-triggered swaps dominate prefetching-triggered ones on average.
    assert mmu_avg > pct_avg
    # Prefetch swaps are a substantial share of all swaps.
    assert mmu_avg + pct_avg > 25.0

    # The two groups exist: some workloads barely prefetch, some mostly do.
    per_workload = [
        row for name, row in rows.items()
        if name != "AVERAGE" and row[1] and row[1] > 0
    ]
    prefetch_shares = [row[2] + row[3] for row in per_workload]
    assert min(prefetch_shares) < 40.0
    assert max(prefetch_shares) > 60.0
