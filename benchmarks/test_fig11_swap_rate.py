"""Figure 11: swap rate with and without the bandwidth heuristic.

Shape checks (paper): the Swap Driver heuristic reduces the average swap
rate (0.19 vs 0.35 swaps per kilo-instruction in the paper).
"""

from repro.experiments import fig11_swap_rate

from benchmarks.conftest import record_figure


def test_fig11_swap_rate(runner, benchmark):
    result = benchmark.pedantic(
        fig11_swap_rate.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    rows = result.row_map()
    with_bw, without_bw = rows["AVERAGE"][1], rows["AVERAGE"][2]

    # The heuristic can only remove swaps.
    assert with_bw <= without_bw * 1.05  # tolerance for timing feedback
    # Swap rates land in a plausible band around the paper's 0.19-0.35.
    assert 0.005 < with_bw < 5.0
    assert without_bw > 0.0
