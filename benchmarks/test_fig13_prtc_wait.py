"""Figure 13: reduction of remap-table waiting time versus PoM.

Shape checks (paper): PageSeer's MMU-hint-driven PRTc prefetching cuts the
total waiting time spent on remap-table fills — 61.8% average reduction.
"""

from repro.experiments import fig13_prtc_wait

from benchmarks.conftest import record_figure


def test_fig13_prtc_wait(runner, benchmark):
    result = benchmark.pedantic(
        fig13_prtc_wait.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    rows = result.row_map()
    average_reduction = rows["AVERAGE"][3]

    # PageSeer waits less on remap fills than PoM on average.
    assert average_reduction > 0.0
    # And on at least one workload the reduction is substantial.
    per_workload = [
        row[3] for name, row in rows.items()
        if name != "AVERAGE" and row[2] > 0
    ]
    assert max(per_workload) > 30.0
