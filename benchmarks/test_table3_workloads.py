"""Table III: regenerate the workload table and check it matches the paper."""

from repro.experiments import tables
from repro.workloads import all_workloads

from benchmarks.conftest import BENCH_SCALE, record_figure


def test_table3_workloads(benchmark):
    result = benchmark(tables.table3, BENCH_SCALE)
    record_figure(result)

    assert len(result.rows) == 26
    by_name = result.row_map()
    # Spot-check Table III footprints and instance counts.
    assert by_name["lbmx4"][3] == 422
    assert by_name["milcx4"][3] == 380
    assert by_name["LULESHx4"][3] == 914
    assert by_name["leslie3dx12"][2] == 12
    assert by_name["mcfx8"][2] == 8
    assert by_name["libquantumx6"][2] == 6
    assert by_name["mix6"][2] == 4


def test_table3_suite_composition(benchmark):
    def composition():
        suites = {}
        for spec in all_workloads():
            suites[spec.suite] = suites.get(spec.suite, 0) + 1
        return suites

    suites = benchmark(composition)
    assert suites == {"spec": 8, "splash3": 6, "coral": 6, "mix": 6}


def test_table3_consistency(benchmark):
    assert benchmark(tables.paper_table3_consistency)
