"""Micro-benchmark: whole-program analyzer cold vs warm runtime.

CI runs ``repro lint --program`` on every push, so the analyzer's cost
is a direct tax on iteration speed.  This bench pins two budgets:

* a **cold** run (parse + extract + propagate for the whole repo) must
  stay under the CI timing budget;
* a **warm** run (facts served from the content-hash cache) must beat
  the cold run — if it doesn't, the cache got broken or the
  whole-program propagation phase grew into the new bottleneck.

Budgets are deliberately loose (CI machines are slow and shared); the
reported numbers, not the thresholds, are the regression signal to watch
in the bench summary.
"""

import time
from pathlib import Path

from repro.lint.engine import LintEngine

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The CI timing budget for a cold whole-program run, in seconds.
COLD_BUDGET_S = 60.0


def _timed_program_run(cache_path):
    start = time.perf_counter()
    engine = LintEngine(root=REPO_ROOT, program=True, cache_path=cache_path)
    report = engine.run([REPO_ROOT / "src" / "repro"])
    elapsed = time.perf_counter() - start
    assert report.parse_errors == []
    return elapsed, engine.last_program_model


def test_analyzer_cold_vs_warm_runtime(tmp_path):
    cache_path = tmp_path / "lint-cache.json"
    cold_s, cold_model = _timed_program_run(cache_path)
    warm_s, warm_model = _timed_program_run(cache_path)

    assert cold_model.cache_hits == 0
    assert warm_model.cache_misses == 0, "cache missed on an unchanged tree"
    assert cold_s < COLD_BUDGET_S, (
        f"cold whole-program lint took {cold_s:.1f}s "
        f"(budget {COLD_BUDGET_S:.0f}s) — a rule or the extractor regressed"
    )
    # Warm must actually be warmer; 1.0x allows scheduler noise on tiny
    # absolute times but still catches a cache that silently stopped
    # working (which re-parses and re-extracts every file).
    assert warm_s < cold_s * 1.0, (
        f"warm run ({warm_s:.2f}s) is not faster than cold ({cold_s:.2f}s) "
        "— the facts cache is not being used"
    )
    print(
        f"\nlint --program: cold {cold_s:.2f}s, warm {warm_s:.2f}s "
        f"({cold_model.cache_misses} files, "
        f"{len(cold_model.table.functions)} functions, "
        f"{len(cold_model.graph.edges)} call edges)"
    )
