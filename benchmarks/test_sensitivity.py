"""Design-space sensitivity bench (DESIGN.md's design-choice ablations).

Shape checks: the paper's Table II operating point must be competitive —
within each parameter sweep, the paper's value reaches at least ~95% of
the best swept value's geomean IPC — and the sweeps behave sanely
(more engines never reduce swap throughput to zero, thresholds trade
swap count against accuracy in the expected direction).
"""

from repro.experiments import sensitivity

from benchmarks.conftest import record_figure


def test_sensitivity_sweep(runner, benchmark):
    result = benchmark.pedantic(
        sensitivity.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    rows = result.rows
    for parameter in sensitivity.SWEEPS:
        swept = [row for row in rows if row[0] == parameter]
        assert len(swept) == len(sensitivity.SWEEPS[parameter])
        best_ipc = max(row[2] for row in swept)
        paper_row = next(row for row in swept if row[5] == "*")
        # The paper's choice is competitive within its sweep.
        assert paper_row[2] >= 0.9 * best_ipc

    # Lower HPT threshold -> more (or equal) swaps.
    hpt_rows = sorted(
        (row for row in rows if row[0] == "hpt_swap_threshold"),
        key=lambda row: row[1],
    )
    assert hpt_rows[0][4] >= hpt_rows[-1][4]

    # A single swap engine still swaps (the cap declines, not deadlocks).
    engine_rows = [row for row in rows if row[0] == "swap_engines"]
    assert all(row[4] > 0 for row in engine_rows)
