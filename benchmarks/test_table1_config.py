"""Table I: regenerate the system-configuration table and check it."""

from repro.common.config import default_system_config
from repro.experiments import tables

from benchmarks.conftest import record_figure


def test_table1_config(benchmark):
    result = benchmark(tables.table1)
    record_figure(result)

    rows = {row[0]: row[1] for row in result.rows}
    # The exact Table I values.
    assert "512 MB" in rows["dram capacity"]
    assert "4096 MB" in rows["nvm capacity"]
    assert rows["dram channels"] == "4"
    assert rows["nvm channels"] == "2"
    assert rows["dram tCAS-tRCD-tRAS"] == "11-11-28"
    assert rows["nvm tCAS-tRCD-tRAS"] == "11-58-80"
    assert rows["dram tRP,tWR"] == "11,12"
    assert rows["nvm tRP,tWR"] == "11,180"
    assert "32KB 8-way" in rows["l1"]
    assert "256KB 8-way" in rows["l2"]
    assert "8192KB" in rows["l3"]
    assert "64 entries" in rows["l1 tlb"]
    assert "1024 entries" in rows["l2 tlb"]


def test_table1_scaled_consistency(benchmark):
    """Scaling preserves the DRAM:NVM capacity ratio of Table I."""

    def build():
        return default_system_config(scale=512)

    config = benchmark(build)
    ratio = config.memory.nvm.capacity_bytes / config.memory.dram.capacity_bytes
    assert ratio == 8.0
