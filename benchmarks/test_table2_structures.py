"""Table II: regenerate the PageSeer parameter table and check budgets."""

from repro.common.config import PageSeerConfig
from repro.experiments import tables
from repro.experiments.tables import ENTRY_BYTES

from benchmarks.conftest import record_figure


def test_table2_structures(benchmark):
    result = benchmark(tables.table2)
    record_figure(result)

    rows = {row[0]: row[1] for row in result.rows}
    assert rows["pctc prefetch swap threshold"] == "14"
    assert rows["hpt swap threshold"] == "6"
    assert rows["counters"].startswith("6 bits")
    assert rows["prt associativity"] == "4-way"
    assert "16 lines" in rows["mmu driver"]
    assert rows["swap size"].startswith("4 KB")


def test_table2_sram_budgets(benchmark):
    """Structure sizes must stay within Table II's SRAM budget (~72 KB)."""

    def total_kb():
        ps = PageSeerConfig()
        prtc = ps.prtc_entries * ENTRY_BYTES["prtc"]
        pctc = ps.pctc_entries * ENTRY_BYTES["pctc"]
        hpts = 2 * ps.hpt_entries * ENTRY_BYTES["hpt"]
        filt = ps.filter_entries * ENTRY_BYTES["filter"]
        driver = ps.mmu_driver_pte_lines * 64
        return (prtc + pctc + hpts + filt + driver) / 1024

    total = benchmark(total_kb)
    assert total <= 80.0  # paper: "less than 72KB" plus rounding slack


def test_table2_dram_resident_tables(benchmark):
    """PRT/PCT in DRAM stay near the paper's sizes at full scale."""

    def sizes():
        from repro.common.config import default_system_config

        config = default_system_config(scale=1)
        dram_pages = config.memory.dram_pages
        total_pages = config.memory.total_pages
        prt_kb = dram_pages * ENTRY_BYTES["prtc"] / 1024
        pct_mb = total_pages * ENTRY_BYTES["pctc"] / 1024 / 1024
        return prt_kb, pct_mb

    prt_kb, pct_mb = benchmark(sizes)
    # Paper: PRT 426 KB, PCT 7 MB (with follower).
    assert 350 <= prt_kb <= 520
    assert 6.0 <= pct_mb <= 13.0
