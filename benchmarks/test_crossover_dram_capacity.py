"""Crossover bench: PageSeer's benefit versus DRAM capacity.

Shape checks: the speedup over the no-swap reference is largest under the
Table I capacity pressure and trends toward parity as DRAM grows —
the capacity crossover that motivates hybrid-memory management.
"""

from repro.experiments import dram_capacity

from benchmarks.conftest import record_figure


def test_crossover_dram_capacity(runner, benchmark):
    result = benchmark.pedantic(
        dram_capacity.compute, args=(runner,), iterations=1, rounds=1
    )
    record_figure(result)

    speedups = dram_capacity.speedups(result)
    # Under Table I pressure, swapping clearly pays.
    assert speedups[0] > 1.05
    # With abundant DRAM the benefit has largely evaporated.
    assert speedups[-1] < speedups[0]
    assert speedups[-1] < 1.35
    # The no-swap reference itself improves as more pages get DRAM homes.
    noswap_ipcs = [row[2] for row in result.rows]
    assert noswap_ipcs[-1] > noswap_ipcs[0]
